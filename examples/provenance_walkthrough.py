"""Provenance: the paper's error-hunting story, step by step (Section 2.12).

"When a scientist notices a data element that he suspects is wrong, he
wants to track down the cause of the possible error ... then he wants to
rerun (a portion of) the derivation ... then the scientist needs to
ascertain how far downstream the errant data has propagated."

This walkthrough: build a derivation pipeline; plant a corrupted raw cell;
notice the bad downstream value; trace **backward** to the culprit; fix it
by re-deriving (never overwriting, Section 2.5); trace **forward** to find
everything the bad value touched.

Run:  python examples/provenance_walkthrough.py
"""

import numpy as np

from repro import SciArray, define_array
from repro.provenance import ProvenanceEngine, trace_backward, trace_forward


def main() -> None:
    engine = ProvenanceEngine()

    # -- ingest raw data with a planted corruption --------------------------------
    rng = np.random.default_rng(0)
    data = rng.normal(10.0, 0.5, size=(8, 8))
    data[2, 3] = 9999.0  # the corrupted sensor reading (cell (3, 4))
    schema = define_array("Raw", {"v": "float"}, ["x", "y"])
    engine.register_external(
        "raw",
        SciArray.from_numpy(schema, data, name="raw"),
        program="buoy_ingest.py",
        parameters={"cruise": "OC-2009-03", "instrument": "CTD-7"},
    )

    # -- the derivation pipeline ----------------------------------------------------
    engine.execute("filter", ["raw"], "valid",
                   predicate=lambda c: c.v > 0)
    engine.execute("regrid", ["valid"], "gridded", factors=[4, 4], agg="avg")
    engine.execute("aggregate", ["gridded"], "row_means",
                   group_dims=["x"], agg="avg")
    print("derivation log:")
    print(engine.log.describe())

    # -- the scientist notices a suspicious value ------------------------------------
    gridded = engine.get("gridded")
    suspect = max(
        ((c, cell.avg) for c, cell in gridded.cells()), key=lambda kv: kv[1]
    )
    print(f"\nsuspicious value: gridded{suspect[0]} = {suspect[1]:.1f} "
          "(neighbours are ~10)")

    # -- requirement 1: trace backward to the culprit -----------------------------------
    steps = trace_backward(engine, ("gridded", suspect[0]))
    print("\nbackward trace:")
    culprits = []
    for step in steps:
        print(f"  {step.command.describe()}")
        for name, coords in step.contributors:
            if name == "raw":
                value = engine.get("raw")[coords].v
                if value > 100:
                    culprits.append((coords, value))
    assert culprits, "trace must reach the corrupted raw cell"
    bad_coords, bad_value = culprits[0]
    print(f"culprit: raw{bad_coords} = {bad_value} — recorded external "
          f"derivation: {engine.repository.latest('raw').describe()}")

    # -- re-derive without overwriting ---------------------------------------------------
    fixed_raw = engine.get("raw").copy("raw_fixed")
    fixed_raw[bad_coords] = 10.0
    engine.register_external(
        "raw_fixed", fixed_raw, program="buoy_ingest.py",
        parameters={"cruise": "OC-2009-03", "recalibrated": True},
        inputs=["raw"],
    )
    engine.execute("filter", ["raw_fixed"], "valid_fixed",
                   predicate=lambda c: c.v > 0)
    engine.execute("regrid", ["valid_fixed"], "gridded_fixed",
                   factors=[4, 4], agg="avg")
    print(f"\nre-derived: gridded_fixed{suspect[0]} = "
          f"{engine.get('gridded_fixed')[suspect[0]].avg:.2f} "
          "(old gridded array retained for provenance)")

    # -- requirement 2: how far did the error spread? --------------------------------------
    affected = trace_forward(engine, ("raw", bad_coords))
    by_array: dict[str, list] = {}
    for name, coords in sorted(affected):
        by_array.setdefault(name, []).append(coords)
    print("\nforward trace — downstream items impacted by the bad cell:")
    for name, cells in by_array.items():
        print(f"  {name}: {cells}")
    assert ("row_means", (1,)) in affected

    print("\nprovenance walkthrough OK")


if __name__ == "__main__":
    main()
