"""Remote sensing: in-engine cooking, compositing, and a named-version
recook (Sections 2.10, 2.11).

The story the paper tells: satellite passes arrive as raw counts; the
default cooking algorithm composites them by picking, per ground cell, the
observation with the least cloud cover.  A scientist with a particular
study area wants a different algorithm — the observation taken when the
satellite was closest to directly overhead — *for part of the data*.  A
named version gives them exactly that at delta-only cost, and the
provenance log records how everything was derived.

Run:  python examples/remote_sensing_cooking.py
"""

from repro import define_array
from repro.cooking import (
    CookingPipeline,
    calibrate,
    composite_passes,
    decode_counts,
    recook_region,
)
from repro.history import UpdatableArray, VersionTree
from repro.provenance import ProvenanceEngine, trace_backward
from repro.workloads import SatelliteInstrument

SIDE = 32
STUDY_REGION = ((5, 5), (12, 12))


def main() -> None:
    instrument = SatelliteInstrument(width=SIDE, height=SIDE, seed=11)
    engine = ProvenanceEngine()

    # -- ingest + cook one raw frame inside the engine ------------------------
    engine.register_external(
        "raw_pass_1",
        instrument.acquire_raw_frame(1),
        program="satellite_downlink",
        parameters={"pass": 1, "band": "B4"},
    )
    cooked = CookingPipeline(
        engine,
        [decode_counts(gain=0.01, offset=100.0), calibrate(scale=1.02)],
    ).run("raw_pass_1", output_name="cooked_pass_1")
    print(f"cooked frame: {cooked}")
    print("provenance log so far:")
    print(engine.log.describe())

    # -- multi-pass compositing (default algorithm: least cloud) ----------------
    passes = [instrument.acquire_pass(k) for k in range(1, 4)]
    default = composite_passes(*passes, strategy="least_cloud",
                               name="composite_default")
    print(f"\ndefault composite ({default.count_present()} cells), "
          "strategy = least_cloud")

    # Store the composite as an updatable (time-travelled) base array.
    schema = define_array(
        "Composite",
        {"value": "float", "source_pass": "int32"},
        ["x", "y"],
        updatable=True,
    )
    base = UpdatableArray(schema, bounds=[SIDE, SIDE, "*"], name="composite")
    with base.begin() as txn:
        for coords, cell in default.cells(include_null=False):
            txn.set(coords, (cell.value, cell.source_pass))
    print(f"base array holds {base.delta_count()} deltas at history "
          f"{base.current_history}")

    # -- the dissenting scientist: recook the study region into a version --------
    tree = VersionTree(base)
    study = tree.create("overhead_study")
    written = recook_region(study, STUDY_REGION, passes,
                            strategy="most_overhead")
    print(f"\nnamed version 'overhead_study': recooked {written} cells "
          f"(delta = {study.delta_count()} cells; base untouched)")

    inside, outside = (8, 8), (20, 20)
    print(f"cell {inside}: base pass {base.get(*inside).source_pass} "
          f"-> version pass {study.get(*inside).source_pass}")
    print(f"cell {outside}: base pass {base.get(*outside).source_pass} "
          f"== version pass {study.get(*outside).source_pass} (unchanged)")
    assert study.get(*outside) == base.get(*outside)

    # -- backward provenance of a cooked value -------------------------------------
    steps = trace_backward(engine, ("cooked_pass_1", (3, 3)))
    print("\nbackward trace of cooked_pass_1[3, 3]:")
    for step in steps:
        print(" ", step.command.describe())
    origin = engine.repository.latest("raw_pass_1")
    print("terminates at external derivation:", origin.describe())

    print("\nremote sensing example OK")


if __name__ == "__main__":
    main()
