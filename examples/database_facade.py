"""The assembled system: one SciDB instance wiring every requirement.

Everything the other examples show piecemeal, through the single facade a
user would adopt: textual + fluent queries over one catalog, automatic
provenance, durable bucketed storage, in-situ attachment, no-overwrite
updatable arrays, and named versions.

Run:  python examples/database_facade.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SciDB, define_array
from repro.query import array, attr, dim, unparse


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="scidb_"))
    db = SciDB(root)
    print(f"instance: {db}")

    # -- textual binding ------------------------------------------------------
    db.execute("define array Remote (s1 = float, s2 = float) (I, J)")
    db.execute("create M as Remote [32, 32]")
    m = db.lookup("M")
    rng = np.random.default_rng(0)
    m.set_region((1, 1), {
        "s1": rng.normal(10, 2, (32, 32)),
        "s2": rng.normal(0, 1, (32, 32)),
    })

    coarse = db.query("select regrid(M, [8, 8], avg(s1)) into Coarse")
    print(f"regridded to {coarse.bounds}; "
          f"Coarse[1,1] = {coarse[1, 1].avg:.2f}")

    # -- fluent binding compiles to the same trees ------------------------------
    q = (
        array("M")
        .subsample((dim("I") >= 17) & (dim("J") >= 17))
        .filter(attr("s1") > 10)
        .into("HotCorner")
    )
    print(f"fluent query as text: {unparse(q)}")
    hot = db.query(q)
    print(f"hot corner: {hot.count_present()} of "
          f"{hot.count_occupied()} cells survive the filter")

    # -- provenance came free ----------------------------------------------------
    print("\nderivation log:")
    print(db.derivation_log())
    steps = db.trace_backward("Coarse", (1, 1))
    print(f"Coarse[1,1] derives from {len(steps[0].contributors)} cells of M")

    # -- durable storage ------------------------------------------------------------
    cells = db.persist("Coarse")
    del db.executor.arrays["Coarse"]
    restored = db.restore("Coarse")
    print(f"\npersisted + restored Coarse ({cells} cells) via bucket files "
          f"under {root / 'arrays'}")
    assert restored[1, 1].avg == coarse[1, 1].avg

    # -- in-situ attachment -------------------------------------------------------------
    np.save(root / "external.npy", rng.normal(size=(8, 8)))
    adaptor = db.attach(root / "external.npy")
    print(f"\nattached {adaptor.path.name} in-situ: "
          f"cell (3,3) = {adaptor.get(3, 3).value:.3f} "
          f"(services: recovery={adaptor.services['recovery']})")

    # -- updatable arrays + named versions --------------------------------------------------
    schema = define_array("Obs", {"v": "float"}, ["x"], updatable=True)
    obs = db.create_updatable(schema, bounds=[4, "*"], name="obs")
    with obs.begin() as t:
        for i in range(1, 5):
            t.set((i,), float(i))
    with obs.begin() as t:
        t.set((1,), 10.0)
    print(f"\nobs[1] latest = {obs.get(1).v}, as of history 1 = "
          f"{obs.get(1, as_of=1).v} (no overwrite)")

    v = db.create_version("obs", "recalibrated")
    with v.begin() as t:
        t.set((2,), -2.0)
    print(f"version 'recalibrated': obs[2] = {obs.get(2).v}, "
          f"version[2] = {v.get(2).v}, delta = {v.delta_count()} cell")

    print("\nfacade example OK")


if __name__ == "__main__":
    main()
