"""Quickstart: the paper's running example, end to end.

Walks Section 2.1's examples in order: define an array type, create an
instance, address cells ``A[7, 8]`` / ``A[I = 7, J = 8]`` / ``A[7, 8].x``,
enhance it with Scale10 and address through ``A{70, 80}``, run the
structural and content operators of Section 2.2 (including the three
figures), and store uncertain values (Section 2.13).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SciArray,
    UncertainValue,
    define_array,
    define_function,
    enhance,
)
from repro.core import ops


def main() -> None:
    # -- define / create (Section 2.1) -------------------------------------
    # define Remote (s1 = float, s2 = float, s3 = float) (I, J)
    remote = define_array(
        "Remote",
        values={"s1": "float", "s2": "float", "s3": "float"},
        dims=["I", "J"],
    )
    # create My_remote as Remote [1024, 1024]
    my_remote = remote.create("My_remote", [1024, 1024])
    print(f"created: {my_remote}")

    # -- cell addressing ----------------------------------------------------
    my_remote[7, 8] = (0.5, 1.5, 2.5)
    print("A[7, 8]            =", my_remote[7, 8])
    print("A[I = 7, J = 8]    =", my_remote[{"I": 7, "J": 8}])
    print("A[7, 8].s1         =", my_remote[7, 8].s1)
    print("Exists?[A, 7, 8]   =", my_remote.exists(7, 8))
    print("Exists?[A, 9, 9]   =", my_remote.exists(9, 9))

    # -- enhancement with Scale10 (Section 2.1) ------------------------------
    define_function(
        "Scale10",
        inputs=[("I", "integer"), ("J", "integer")],
        outputs=[("K", "integer"), ("L", "integer")],
        fn=lambda i, j: (10 * i, 10 * j),
        inverse=lambda k, l: (k // 10, l // 10),
        replace=True,
    )
    enhance(my_remote, "Scale10")
    print("A{70, 80}.s1       =", my_remote.mapped[70, 80].s1)

    # -- structural operators (Section 2.2.1) ---------------------------------
    f_schema = define_array("F", {"v": "float"}, ["X", "Y"])
    f = SciArray.from_numpy(
        f_schema, np.arange(1.0, 17.0).reshape(4, 4), name="F"
    )
    evens = ops.subsample(f, {"X": lambda x: x % 2 == 0})
    print("\nSubsample(F, even(X)) ->", evens.bounds, "cells:",
          [c.v for _, c in evens.cells()])

    g_schema = define_array("G", {"v": "float"}, ["X", "Y", "Z"])
    g = SciArray.from_numpy(
        g_schema, np.arange(24.0).reshape(2, 3, 4), name="G"
    )
    reshaped = ops.reshape(g, ["X", "Z", "Y"], [("U", 8), ("V", 3)])
    print("Reshape(G, [X,Z,Y], [U=1:8, V=1:3]) ->", reshaped.bounds)

    # -- Figure 1: Sjoin ------------------------------------------------------
    ab = define_array("AB", {"v": "float"}, ["x"])
    a = SciArray.from_numpy(ab, np.array([1.0, 2.0]), name="A")
    b = SciArray.from_numpy(ab, np.array([1.0, 2.0]), name="B")
    sj = ops.sjoin(a, b, on=[("x", "x")])
    print("\nFigure 1 Sjoin  : ", {c: tuple(cell) for c, cell in sj.cells()})

    # -- Figure 2: Aggregate ----------------------------------------------------
    h_schema = define_array("H", {"v": "float"}, ["x", "y"])
    h = SciArray.from_numpy(
        h_schema, np.array([[1.0, 3.0], [3.0, 4.0]]), name="H"
    )
    agg = ops.aggregate(h, ["y"], "sum")
    print("Figure 2 Aggregate(H, {y}, Sum(*)):",
          {c[0]: cell.sum for c, cell in agg.cells()})

    # -- Figure 3: Cjoin ----------------------------------------------------------
    cj = ops.cjoin(a, b, lambda l, r: l.v == r.v)
    print("Figure 3 Cjoin  : ",
          {c: (tuple(cell) if cell else None) for c, cell in cj.cells()})

    # -- uncertainty (Section 2.13) -------------------------------------------------
    u_schema = define_array("U", {"temp": "uncertain float"}, ["t"])
    u = u_schema.create("u", [3])
    u[1] = (20.0, 0.5)  # value with an error bar
    u[2] = (21.0, 0.5)
    total = u[1].temp + u[2].temp
    print(f"\nuncertain sum   : {total} "
          f"(sigma combines as sqrt(0.5^2 + 0.5^2))")
    assert isinstance(total, UncertainValue)

    print("\nquickstart OK")


if __name__ == "__main__":
    main()
