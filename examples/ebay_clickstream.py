"""eBay: clickstream analytics on the array model (Section 2.14).

"An eBay user can type a collection of keywords into the eBay search box,
for example 'pre-war Gibson banjo' ... the user might click on item 7, and
then ... item 9 ... their search strategy for pre-war Gibson banjos is
flawed, since the top 6 items were not of interest."

The session log is a 1-D time-series array whose search events embed the
surfaced result list as a *nested array*.  This example builds the log,
runs the paper's two analyses (click ranks / ignored content), and shows
the same flawed-engine diagnosis the paper describes.

Run:  python examples/ebay_clickstream.py
"""

from collections import Counter

from repro.workloads.clickstream import (
    ClickstreamGenerator,
    click_ranks,
    ignored_content,
    sessions_to_array,
    surfaced_counts,
)


def main() -> None:
    # A deliberately flawed search engine: user interest sits deep in the
    # ranking (high relevance_decay = clicks far from rank 1).
    flawed = ClickstreamGenerator(seed=8, relevance_decay=0.85,
                                  results_per_search=10)
    sessions = list(flawed.sessions(50))
    log = sessions_to_array(sessions)
    print(f"event log: {log.high_water('t')} events from {len(sessions)} "
          "sessions (1-D array, nested result arrays)")

    # Peek at one session's structure: search -> result list -> click tree.
    first = sessions[0].events
    head = first[1]
    print(f"\nfirst event: kind={head.kind!r} query={head.query!r}")
    print("embedded result array:",
          [cell.item for _, cell in head.results.cells(include_null=False)])

    # -- search quality: where in the ranking do users click? -------------------
    ranks = click_ranks(log)
    dist = Counter(ranks)
    mean_rank = sum(ranks) / len(ranks)
    print(f"\nclick-rank distribution over {len(ranks)} clicks:")
    for rank in sorted(dist):
        print(f"  rank {rank:2d}: {'#' * dist[rank]}")
    print(f"mean click rank = {mean_rank:.2f}")
    if mean_rank > 2.5:
        print("=> the ranking strategy is flawed: interest sits well below "
              "the top results (the pre-war-Gibson-banjo diagnosis)")

    # -- ignored content: surfaced but never clicked ------------------------------
    ignored = ignored_content(log)
    surfaced = surfaced_counts(log)
    most_ignored = sorted(ignored.items(), key=lambda kv: -kv[1])[:5]
    print(f"\n{len(ignored)} of {len(surfaced)} surfaced items were never "
          "clicked; most-surfaced ignored items:")
    for item, times in most_ignored:
        print(f"  item {item}: surfaced {times}x, clicked 0x")

    # -- contrast with a good engine -------------------------------------------------
    good = ClickstreamGenerator(seed=8, relevance_decay=0.3,
                                results_per_search=10)
    good_ranks = click_ranks(sessions_to_array(list(good.sessions(50))))
    print(f"\na good engine's mean click rank: "
          f"{sum(good_ranks) / len(good_ranks):.2f} "
          f"(vs {mean_rank:.2f} for the flawed one)")

    print("\nclickstream example OK")


if __name__ == "__main__":
    main()
