"""Astronomy: an LSST-style survey on the shared-nothing grid
(Sections 2.7, 2.13).

A synthetic sky survey streams epoch-by-epoch observations into a
4-node grid under fixed spatial partitioning (the right choice for
periodic full-sky scans).  Faint sources carry positional error, so
boundary observations are redundantly placed PanSTARRS-style; a reference
catalog is co-partitioned with the observations so the cross-match join
moves zero bytes.  Finally the automatic designer reviews the workload.

Run:  python examples/astronomy_survey.py
"""

from repro import PositionUncertainty, define_array
from repro.cluster import (
    AutomaticDesigner,
    BlockPartitioner,
    Grid,
    HashPartitioner,
    WorkloadQuery,
    copartition,
)
from repro.workloads import SkySurvey

import tempfile

SKY = 128
NODES = 4
EPOCHS = 3


def main() -> None:
    survey = SkySurvey(sky_size=SKY, n_objects=600, seed=3)
    tmp = tempfile.mkdtemp(prefix="scidb_survey_")
    grid = Grid(NODES, tmp)

    # -- co-partitioned observation + catalog arrays ---------------------------
    obs_schema = define_array(
        "Obs", {"flux": "float", "pos_error": "float"}, ["x", "y"]
    ).bind([SKY, SKY])
    cat_schema = define_array(
        "Catalog", {"ref_mag": "float", "unused": "float"}, ["x", "y"]
    ).bind([SKY, SKY])
    scheme = BlockPartitioner(NODES, bounds=[SKY, SKY], blocks=[2, 2])
    observations, catalog = copartition(
        grid, [("obs", obs_schema), ("catalog", cat_schema)], scheme
    )

    # -- load with positional uncertainty (boundary replication) ----------------
    pu = PositionUncertainty((0.8, 0.8))
    epoch_obs = list(survey.epoch_observations(1))
    # Keep one observation per cell for this example.
    by_cell = {}
    for o in epoch_obs:
        by_cell[(int(o.x), int(o.y))] = o
    loaded = observations.load_uncertain(
        [((o.x, o.y), (o.flux, o.pos_error)) for o in by_cell.values()], pu
    )
    catalog.load_uncertain(
        [((o.x, o.y), (o.flux * 0.9, 0.0)) for o in by_cell.values()], pu
    )
    replicated = grid.ledger.total_bytes("replication")
    print(f"loaded {loaded} observations; "
          f"{replicated} bytes of boundary replicas (PanSTARRS-style)")
    print("cells per node:", observations.cells_per_node(),
          f"imbalance = {observations.imbalance():.2f}")

    # -- zero-movement cross-match ------------------------------------------------
    grid.ledger.reset()
    match = observations.sjoin(catalog)
    print(f"\ncross-match: {match.count_occupied()} matches, "
          f"join shuffle = {grid.ledger.total_bytes('join_shuffle')} bytes "
          "(co-partitioned)")

    # -- a survey analytics query ---------------------------------------------------
    flux_by_column = observations.aggregate(["x"], "avg")
    busiest = max(
        (cell.avg, c[0]) for c, cell in flux_by_column.cells()
    )
    print(f"brightest mean-flux column: x = {busiest[1]} "
          f"(avg flux {busiest[0]:.1f})")

    # -- the automatic designer reviews the layout -------------------------------------
    cells = [(c[0], c[1]) for c, _ in observations.scan()]
    designer = AutomaticDesigner(
        cells,
        [scheme, HashPartitioner(NODES)],
    )
    workload = [
        WorkloadQuery("window", weight=5.0, window=((1, 1), (32, 32))),
        WorkloadQuery("join", weight=2.0, join_with="catalog"),
    ]
    verdict = designer.recommend(
        workload, current=scheme,
        partitioners_by_array={"catalog": scheme},
    )
    print("\ndesigner verdict:",
          "keep the fixed spatial partitioning" if verdict is None
          else f"switch to {verdict.partitioner!r}")

    print("\nastronomy example OK")


if __name__ == "__main__":
    main()
