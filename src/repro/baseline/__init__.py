"""The relational comparator (Section 2.1).

"The Sequoia 2000 project realized in the mid 1990s that ... simulating
arrays on top of tables was difficult and resulted in poor performance.  A
similar conclusion was reached in the ASAP prototype which found that the
performance penalty of simulating arrays on top of tables was around two
orders of magnitude."

To regenerate that comparison *within one codebase* (so the ratio, not the
absolute speed, is what's measured — see DESIGN.md §2), this package holds:

* :mod:`repro.baseline.tabledb` — a small but genuine relational engine:
  heap tables, hash indexes, scans, filters, hash joins, group-by;
* :mod:`repro.baseline.arraysim` — arrays simulated as
  ``(dim1, ..., dimk, val...)`` tables over it, exposing the same
  operations the native array engine provides (experiment E1).
"""

from .tabledb import HashIndex, Table, TableDB
from .arraysim import ArrayOnTable

__all__ = ["Table", "HashIndex", "TableDB", "ArrayOnTable"]
