"""A small relational engine: the comparator substrate (Section 2.1).

Deliberately a *real* (if minimal) row engine rather than a strawman:
heap-stored tuples, hash indexes with equality lookups, predicate scans,
hash joins, and grouped aggregation — the machinery a relational system
would actually use to host an array simulated as a table.  Everything is
pure Python, like the array engine's cell paths, so the E1 ratio compares
designs, not implementation languages.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..core.errors import SchemaError, StorageError

__all__ = ["HashIndex", "Table", "TableDB"]

Row = tuple


class HashIndex:
    """An equality index over one or more columns."""

    def __init__(self, table: "Table", columns: Sequence[str]) -> None:
        self.table = table
        self.columns = tuple(columns)
        self._positions = tuple(table.position(c) for c in columns)
        self._map: dict[tuple, list[int]] = {}
        for rid, row in enumerate(table._rows):
            if row is not None:
                self._insert(rid, row)

    def _key(self, row: Row) -> tuple:
        return tuple(row[p] for p in self._positions)

    def _insert(self, rid: int, row: Row) -> None:
        self._map.setdefault(self._key(row), []).append(rid)

    def _remove(self, rid: int, row: Row) -> None:
        ids = self._map.get(self._key(row))
        if ids and rid in ids:
            ids.remove(rid)

    def lookup(self, key: tuple) -> Iterator[Row]:
        for rid in self._map.get(tuple(key), ()):
            row = self.table._rows[rid]
            if row is not None:
                yield row

    def lookup_ids(self, key: tuple) -> list[int]:
        return [
            rid for rid in self._map.get(tuple(key), ())
            if self.table._rows[rid] is not None
        ]

    def __len__(self) -> int:
        return sum(len(v) for v in self._map.values())


class Table:
    """A heap table: named columns, tuple rows, optional hash indexes."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = tuple(columns)
        self._rows: list[Optional[Row]] = []
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        self.rows_scanned = 0  # work accounting for benchmarks

    # -- schema ------------------------------------------------------------------

    def position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise SchemaError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def create_index(self, columns: Sequence[str]) -> HashIndex:
        key = tuple(columns)
        if key in self._indexes:
            raise SchemaError(f"index on {key} already exists")
        idx = HashIndex(self, columns)
        self._indexes[key] = idx
        return idx

    def index_on(self, columns: Sequence[str]) -> Optional[HashIndex]:
        return self._indexes.get(tuple(columns))

    # -- modification -----------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        row = tuple(row)
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row width {len(row)} != table width {len(self.columns)}"
            )
        rid = len(self._rows)
        self._rows.append(row)
        for idx in self._indexes.values():
            idx._insert(rid, row)
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        n = 0
        for row in rows:
            self.insert(row)
            n += 1
        return n

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        deleted = 0
        for rid, row in enumerate(self._rows):
            if row is not None and predicate(row):
                for idx in self._indexes.values():
                    idx._remove(rid, row)
                self._rows[rid] = None
                deleted += 1
        return deleted

    def update_where(
        self, predicate: Callable[[Row], bool],
        updater: Callable[[Row], Row],
    ) -> int:
        changed = 0
        for rid, row in enumerate(self._rows):
            if row is not None and predicate(row):
                new_row = tuple(updater(row))
                for idx in self._indexes.values():
                    idx._remove(rid, row)
                    idx._insert(rid, new_row)
                self._rows[rid] = new_row
                changed += 1
        return changed

    # -- queries -------------------------------------------------------------------------

    def scan(self) -> Iterator[Row]:
        for row in self._rows:
            if row is not None:
                self.rows_scanned += 1
                yield row

    def __len__(self) -> int:
        return sum(1 for r in self._rows if r is not None)

    def select(
        self,
        predicate: Optional[Callable[[Row], bool]] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> list[Row]:
        positions = (
            [self.position(c) for c in columns] if columns is not None else None
        )
        out = []
        for row in self.scan():
            if predicate is None or predicate(row):
                out.append(
                    row if positions is None else tuple(row[p] for p in positions)
                )
        return out

    def lookup(self, columns: Sequence[str], key: tuple) -> list[Row]:
        """Equality lookup, via an index when one exists."""
        idx = self.index_on(columns)
        if idx is not None:
            return list(idx.lookup(key))
        positions = [self.position(c) for c in columns]
        return [
            row for row in self.scan()
            if tuple(row[p] for p in positions) == tuple(key)
        ]

    def group_by(
        self,
        group_columns: Sequence[str],
        agg_column: str,
        agg: str = "sum",
    ) -> dict[tuple, float]:
        """Grouped aggregation over a full scan."""
        gpos = [self.position(c) for c in group_columns]
        apos = self.position(agg_column)
        groups: dict[tuple, list[float]] = {}
        for row in self.scan():
            groups.setdefault(tuple(row[p] for p in gpos), []).append(row[apos])
        reducers: dict[str, Callable[[list], float]] = {
            "sum": sum,
            "count": len,
            "min": min,
            "max": max,
            "avg": lambda vs: sum(vs) / len(vs),
        }
        try:
            reduce = reducers[agg]
        except KeyError:
            raise SchemaError(f"unsupported table aggregate {agg!r}") from None
        return {k: reduce(vs) for k, vs in groups.items()}

    def hash_join(
        self,
        other: "Table",
        self_columns: Sequence[str],
        other_columns: Sequence[str],
    ) -> list[Row]:
        """Classic build/probe equi-join; output rows are concatenated."""
        if len(self_columns) != len(other_columns):
            raise SchemaError("join column lists must align")
        build_pos = [other.position(c) for c in other_columns]
        build: dict[tuple, list[Row]] = {}
        for row in other.scan():
            build.setdefault(tuple(row[p] for p in build_pos), []).append(row)
        probe_pos = [self.position(c) for c in self_columns]
        out = []
        for row in self.scan():
            key = tuple(row[p] for p in probe_pos)
            for match in build.get(key, ()):
                out.append(row + match)
        return out


class TableDB:
    """A named collection of tables (one 'database')."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        t = Table(name, columns)
        self._tables[name] = t
        return t

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def drop_table(self, name: str) -> None:
        self.table(name)
        del self._tables[name]

    def names(self) -> list[str]:
        return sorted(self._tables)
