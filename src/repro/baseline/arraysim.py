"""Arrays simulated on top of tables — the ASAP comparison (Section 2.1).

The classic relational encoding of an array: one row per cell,
``(dim_1, ..., dim_k, attr_1, ..., attr_m)``, with a hash index on the full
dimension key for point access.  Every array operation then becomes table
machinery:

* cell read — index lookup on the dimension key;
* subsample/slab — full scan with a row predicate (no spatial locality:
  the table has no notion that cells near in index space are near in
  storage);
* dimension aggregation — full scan + group-by;
* regrid — full scan + group-by on computed block keys;
* co-located join — hash join on the dimension columns.

:class:`ArrayOnTable` exposes the same operations the native engine
provides so experiment E1 can run identical workloads on both and report
the ratio the paper cites ("around two orders of magnitude").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from ..core.errors import BoundsError, SchemaError
from .tabledb import Table, TableDB

__all__ = ["ArrayOnTable"]

Coords = tuple[int, ...]


class ArrayOnTable:
    """A k-dimensional array stored as a (dims..., values...) table."""

    def __init__(
        self,
        db: TableDB,
        name: str,
        dims: Sequence[str],
        attrs: Sequence[str],
        index_dims: bool = True,
    ) -> None:
        if not dims or not attrs:
            raise SchemaError("an array table needs dimensions and attributes")
        self.db = db
        self.name = name
        self.dims = tuple(dims)
        self.attrs = tuple(attrs)
        self.table: Table = db.create_table(name, list(dims) + list(attrs))
        if index_dims:
            self.table.create_index(list(dims))

    @property
    def ndim(self) -> int:
        return len(self.dims)

    # -- writes ---------------------------------------------------------------------

    def set(self, coords: Coords, values: Sequence[Any]) -> None:
        if len(coords) != self.ndim or len(values) != len(self.attrs):
            raise SchemaError("coords/values width mismatch")
        # No-overwrite is not the point here; mimic a plain relational
        # upsert (delete + insert) as an application would.
        existing = self.table.lookup(self.dims, tuple(coords))
        if existing:
            self.table.delete_where(
                lambda row: row[: self.ndim] == tuple(coords)
            )
        self.table.insert(tuple(coords) + tuple(values))

    def load_dense(self, data: np.ndarray, attr_index: int = 0) -> int:
        """Bulk-load a dense numpy block (single attribute arrays)."""
        if len(self.attrs) != 1:
            raise SchemaError("load_dense supports single-attribute arrays")
        rows = (
            tuple(int(c) + 1 for c in idx) + (float(data[idx]),)
            for idx in np.ndindex(*data.shape)
        )
        return self.table.insert_many(rows)

    def load_cells(self, cells: Iterable[tuple[Coords, tuple]]) -> int:
        return self.table.insert_many(
            tuple(coords) + tuple(values) for coords, values in cells
        )

    # -- reads -----------------------------------------------------------------------

    def get(self, coords: Coords) -> tuple:
        rows = self.table.lookup(self.dims, tuple(coords))
        if not rows:
            raise BoundsError(f"cell {coords} not present in {self.name!r}")
        return rows[0][self.ndim :]

    def exists(self, coords: Coords) -> bool:
        return bool(self.table.lookup(self.dims, tuple(coords)))

    def subsample(self, box: tuple[Coords, Coords]) -> list[tuple]:
        """A rectangular slab: full scan + per-row bounds test."""
        lo, hi = box
        out = []
        for row in self.table.scan():
            coords = row[: self.ndim]
            if all(l <= c <= h for c, l, h in zip(coords, lo, hi)):
                out.append(row)
        return out

    def slice(self, dim: str, value: int) -> list[tuple]:
        """One hyperplane; index-assisted only when the key is complete,
        which for a partial key it is not — hence a scan."""
        pos = self.dims.index(dim)
        return [row for row in self.table.scan() if row[pos] == value]

    def aggregate(
        self, group_dims: Sequence[str], agg: str = "sum",
        attr: Optional[str] = None,
    ) -> dict[tuple, float]:
        return self.table.group_by(
            list(group_dims), attr or self.attrs[0], agg
        )

    def regrid(
        self, factors: Sequence[int], agg: str = "avg",
        attr: Optional[str] = None,
    ) -> dict[tuple, float]:
        """Block aggregation via computed group keys (scan + hash)."""
        if len(factors) != self.ndim:
            raise SchemaError("one factor per dimension")
        apos = self.table.position(attr or self.attrs[0])
        groups: dict[tuple, list[float]] = {}
        for row in self.table.scan():
            key = tuple(
                (c - 1) // f + 1 for c, f in zip(row[: self.ndim], factors)
            )
            groups.setdefault(key, []).append(row[apos])
        reducers: dict[str, Callable[[list], float]] = {
            "sum": sum, "count": len, "min": min, "max": max,
            "avg": lambda vs: sum(vs) / len(vs),
        }
        reduce = reducers[agg]
        return {k: reduce(vs) for k, vs in groups.items()}

    def join(self, other: "ArrayOnTable") -> list[tuple]:
        """Co-located join on the shared dimension key."""
        if self.dims != other.dims:
            raise SchemaError("join requires identical dimension columns")
        return self.table.hash_join(other.table, self.dims, other.dims)

    def count(self) -> int:
        return len(self.table)
