"""Chunk-skipping statistics: the planner's view of stored data.

Section 2.2.1 observes that structural operators "do not necessarily have
to read the data values to produce a result"; the MS-SQL array engine
(Dobos et al., arXiv:1110.1729) extends the same idea to *value* pruning
by keeping per-region min/max metadata.  This module supplies both halves
for the bucketed store of Section 2.8:

* :class:`BucketStats` — per-bucket min/max/null-count/cell-count per
  attribute, built by the storage manager when a bucket is written (the
  bucket is in memory at exactly that moment, so stats cost no extra I/O)
  plus a packed **occupancy footprint** of the bucket's non-empty cells.
* :class:`Interval` / :func:`attr_intervals` — conservative interval
  analysis over a filter's :class:`~repro.query.ast.PredicateConjunction`.
* :class:`ArrayStats` / :class:`ArrayDescription` — the aggregated view
  the planner's cost model estimates from.

The correctness contract for value pruning is subtle and worth stating:
``filter`` maps a failing cell to NULL, **not** to EMPTY.  A bucket whose
statistics prove no cell can satisfy the predicate therefore cannot simply
be skipped — its occupied coordinates must still surface as NULL cells.
The footprint makes that possible without touching the bucket file: the
scan yields ``(coords, None)`` for each footprint coordinate, and the
downstream filter operator (which never invokes the predicate on a NULL
cell) preserves them as NULL — byte-identical to the unpruned answer.
Missing or invalidated statistics simply degrade to a normal full read:
stale stats can cost speed, never correctness.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from .ast import AttrPredicate, PredicateConjunction

__all__ = [
    "Interval",
    "AttrStats",
    "BucketStats",
    "ArrayStats",
    "ArrayDescription",
    "attr_intervals",
    "intersect_ranges",
]

Coords = tuple[int, ...]


@dataclass(frozen=True)
class Interval:
    """A (possibly half-open, possibly unbounded) numeric interval."""

    lo: Optional[float] = None
    hi: Optional[float] = None
    lo_open: bool = False
    hi_open: bool = False

    def intersect(self, other: "Interval") -> "Interval":
        lo, lo_open = self.lo, self.lo_open
        if other.lo is not None and (lo is None or other.lo > lo):
            lo, lo_open = other.lo, other.lo_open
        elif other.lo is not None and other.lo == lo:
            lo_open = lo_open or other.lo_open
        hi, hi_open = self.hi, self.hi_open
        if other.hi is not None and (hi is None or other.hi < hi):
            hi, hi_open = other.hi, other.hi_open
        elif other.hi is not None and other.hi == hi:
            hi_open = hi_open or other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    @property
    def empty(self) -> bool:
        """No value at all satisfies this interval."""
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def excludes_range(self, vmin: float, vmax: float) -> bool:
        """True when **no** value in ``[vmin, vmax]`` can satisfy this
        interval — the bucket-pruning test.  Conservative by design:
        any doubt (including NaN comparisons) answers False."""
        if self.empty:
            return True
        try:
            if self.lo is not None and (
                vmax < self.lo or (self.lo_open and vmax <= self.lo)
            ):
                return True
            if self.hi is not None and (
                vmin > self.hi or (self.hi_open and vmin >= self.hi)
            ):
                return True
        except TypeError:  # incomparable types: never prune
            return False
        return False

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "+inf" if self.hi is None else f"{self.hi:g}"
        return ("(" if self.lo_open or self.lo is None else "[") + \
            f"{lo}, {hi}" + (")" if self.hi_open or self.hi is None else "]")


def attr_intervals(pred: PredicateConjunction) -> dict[str, Interval]:
    """Per-attribute value intervals implied by a conjunction.

    Only range-shaped terms contribute (``=``, ``<``, ``<=``, ``>``,
    ``>=`` with numeric values); ``!=`` and non-numeric comparisons are
    skipped, which is conservative — the derived interval is a superset
    of the true match set, so pruning against it never drops a match.
    """
    out: dict[str, Interval] = {}
    for term in pred.attr_terms:
        if not isinstance(term, AttrPredicate):
            continue
        b = term.bounds()
        if b is None:
            continue
        lo, hi, lo_open, hi_open = b
        iv = Interval(lo, hi, lo_open, hi_open)
        out[term.attr] = out[term.attr].intersect(iv) if term.attr in out else iv
    return out


def intersect_ranges(
    a: dict[str, Interval], b: dict[str, Interval]
) -> dict[str, Interval]:
    """Conjunction of two per-attribute range maps."""
    out = dict(a)
    for attr, iv in b.items():
        out[attr] = out[attr].intersect(iv) if attr in out else iv
    return out


@dataclass(frozen=True)
class AttrStats:
    """Min/max over one attribute's PRESENT cells in one bucket.

    ``lo is None`` means the bucket holds *no comparable value* for the
    attribute (no PRESENT cells, or every value NaN) — no range predicate
    can match, so such a bucket is always prunable on that attribute.
    """

    lo: Optional[float] = None
    hi: Optional[float] = None
    null_count: int = 0


# Cell-state codes, mirrored from core.cells.CellState to keep this module
# importable without the storage layer (EMPTY=0 is the invariant relied on).
_EMPTY = 0
_PRESENT = 1
_NULL = 2


class BucketStats:
    """Value statistics + occupancy footprint for one on-disk bucket.

    Built from the in-memory :class:`~repro.storage.bucket.Bucket` at
    write time; lives in the storage manager's catalog next to the
    R-tree entry and dies with the bucket file (merge deletion, drop).
    """

    __slots__ = (
        "bucket_id", "origin", "shape", "cell_count", "null_count",
        "attrs", "_footprint",
    )

    def __init__(
        self,
        bucket_id: int,
        origin: Coords,
        shape: tuple[int, ...],
        cell_count: int,
        null_count: int,
        attrs: dict[str, AttrStats],
        footprint: np.ndarray,
    ) -> None:
        self.bucket_id = bucket_id
        self.origin = origin
        self.shape = shape
        self.cell_count = cell_count
        self.null_count = null_count
        self.attrs = attrs
        self._footprint = footprint  # packed bits of (state != EMPTY)

    @classmethod
    def from_bucket(cls, bucket: Any, bucket_id: int) -> "BucketStats":
        state = np.asarray(bucket.state)
        occupied = state != _EMPTY
        present = state == _PRESENT
        null_count = int(np.count_nonzero(state == _NULL))
        attrs: dict[str, AttrStats] = {}
        for name, plane in bucket.data.items():
            plane = np.asarray(plane)
            if plane.dtype == object or plane.dtype.kind not in "iufb":
                continue  # no stats: never prunable on this attribute
            vals = plane[present]
            if vals.size == 0:
                attrs[name] = AttrStats(None, None, null_count)
                continue
            if plane.dtype.kind == "f":
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    lo = float(np.nanmin(vals))
                    hi = float(np.nanmax(vals))
                if np.isnan(lo) or np.isnan(hi):  # all-NaN plane
                    attrs[name] = AttrStats(None, None, null_count)
                    continue
                attrs[name] = AttrStats(lo, hi, null_count)
            else:
                attrs[name] = AttrStats(
                    float(vals.min()), float(vals.max()), null_count
                )
        return cls(
            bucket_id,
            tuple(int(c) for c in bucket.origin),
            tuple(int(s) for s in bucket.shape),
            int(np.count_nonzero(occupied)),
            null_count,
            attrs,
            np.packbits(occupied.ravel()),
        )

    def can_match(self, ranges: dict[str, Interval]) -> bool:
        """Could *any* cell of this bucket satisfy every range?

        Conservative: an attribute without statistics (object dtype,
        unknown name) cannot disprove a match.  An attribute whose stats
        say "no comparable value" (``lo is None``) *can*: range
        predicates are comparisons, and no cell here can pass one.
        """
        for attr, iv in ranges.items():
            st = self.attrs.get(attr)
            if st is None:
                continue
            if st.lo is None or st.hi is None:
                return False
            if iv.excludes_range(st.lo, st.hi):
                return False
        return True

    def occupied_coords(self) -> list[Coords]:
        """The bucket's non-empty cell addresses, decoded from the packed
        footprint — the NULL cells a value-pruned scan must still emit."""
        volume = 1
        for s in self.shape:
            volume *= s
        mask = np.unpackbits(self._footprint, count=volume).reshape(self.shape)
        offsets = np.argwhere(mask)
        origin = np.asarray(self.origin)
        return [tuple(c) for c in (offsets + origin).tolist()]

    @property
    def box(self) -> tuple[Coords, Coords]:
        hi = tuple(o + s - 1 for o, s in zip(self.origin, self.shape))
        return self.origin, hi

    def __repr__(self) -> str:
        return (
            f"<BucketStats #{self.bucket_id} origin={self.origin} "
            f"{self.cell_count} cells ({self.null_count} null), "
            f"{len(self.attrs)} attr ranges>"
        )


@dataclass
class ArrayStats:
    """Aggregated bucket statistics for one persistent array (or the
    merged view across one distributed array's partitions)."""

    buckets: list[BucketStats] = field(default_factory=list)
    buffered_cells: int = 0

    @property
    def cell_count(self) -> int:
        return sum(b.cell_count for b in self.buckets) + self.buffered_cells

    @property
    def chunk_count(self) -> int:
        return len(self.buckets)

    def attr_range(self, attr: str) -> Optional[AttrStats]:
        """Global min/max for one attribute across every bucket."""
        lo: Optional[float] = None
        hi: Optional[float] = None
        nulls = 0
        seen = False
        for b in self.buckets:
            st = b.attrs.get(attr)
            if st is None:
                continue
            seen = True
            nulls += st.null_count
            if st.lo is not None:
                lo = st.lo if lo is None else min(lo, st.lo)
                hi = st.hi if hi is None else max(hi, st.hi)
        return AttrStats(lo, hi, nulls) if seen else None

    def estimate_match(
        self, ranges: dict[str, Interval]
    ) -> tuple[int, int, int]:
        """``(matching_cells, matching_chunks, pruned_chunks)`` estimate.

        Buffered (not-yet-spilled) cells have no statistics and are
        counted as potentially matching.
        """
        cells = self.buffered_cells
        chunks = 0
        pruned = 0
        for b in self.buckets:
            if b.can_match(ranges):
                chunks += 1
                cells += b.cell_count
            else:
                pruned += 1
        return cells, chunks, pruned

    @staticmethod
    def merged(parts: Iterable["ArrayStats"]) -> "ArrayStats":
        out = ArrayStats()
        for part in parts:
            out.buckets.extend(part.buckets)
            out.buffered_cells += part.buffered_cells
        return out


@dataclass
class ArrayDescription:
    """What the planner knows about one catalog array.

    The executor builds these on demand (its catalog maps names to live
    arrays); the planner consumes them for strategy choice and
    estimation.  ``cells``/``chunks`` for a replicated distributed array
    are normalized to *logical* counts (stored totals divided by the
    replica factor), which is what one exactly-once read touches.
    """

    name: str
    kind: str  # "local" | "distributed"
    cells: int = 0
    chunks: int = 0
    nodes: int = 1
    replication: int = 1
    grid_id: Optional[int] = None
    partitioner: Optional[str] = None
    dims: tuple[tuple[str, Optional[int]], ...] = ()
    stats: Optional[ArrayStats] = None

    @property
    def distributed(self) -> bool:
        return self.kind == "distributed"
