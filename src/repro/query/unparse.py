"""Parse trees back to the textual language (the inverse binding).

Section 2.4 makes parse trees the common representation *between*
bindings; :func:`unparse` closes the loop by rendering any tree in the
textual binding's syntax.  Useful for logging (human-readable provenance),
debugging planner rewrites, and property-testing the parser
(``parse(unparse(t)) == t``).

Predicates built from Python callables (fluent ``filter(lambda ...)``,
``cjoin`` with a function) have no textual form; unparsing them raises
:class:`~repro.core.errors.PlanError` rather than inventing syntax.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import PlanError
from .ast import (
    ArrayRef,
    AttrPredicate,
    CreateNode,
    DefineNode,
    DimPredicate,
    EnhanceNode,
    Node,
    OpNode,
    PredicateConjunction,
    SelectNode,
)

__all__ = ["unparse"]


def unparse(node: Node) -> str:
    """Render a parse tree as one statement of the textual language."""
    if isinstance(node, DefineNode):
        kind = "define updatable array" if node.updatable else "define array"
        values = ", ".join(f"{n} = {t}" for n, t in node.values)
        dims = ", ".join(node.dims)
        return f"{kind} {node.name} ({values}) ({dims})"
    if isinstance(node, CreateNode):
        bounds = ", ".join("*" if b is None else str(b) for b in node.bounds)
        return f"create {node.instance} as {node.type_name} [{bounds}]"
    if isinstance(node, EnhanceNode):
        return f"enhance {node.array} with {node.function}"
    if isinstance(node, SelectNode):
        text = f"select {_expr(node.expr)}"
        if node.into:
            text += f" into {node.into}"
        return text
    if isinstance(node, (OpNode, ArrayRef)):
        return f"select {_expr(node)}"
    raise PlanError(f"cannot unparse node type {type(node).__name__}")


def _expr(node: Node) -> str:
    if isinstance(node, ArrayRef):
        return node.name
    if not isinstance(node, OpNode):
        raise PlanError(f"cannot unparse expression {type(node).__name__}")
    op = node.op
    if op == "subsample":
        return (
            f"subsample({_expr(node.args[0])}, "
            f"{_conjunction(node.option('predicate'))})"
        )
    if op == "filter":
        return (
            f"filter({_expr(node.args[0])}, "
            f"{_conjunction(node.option('predicate'))})"
        )
    if op == "aggregate":
        dims = ", ".join(node.option("group_dims"))
        return (
            f"aggregate({_expr(node.args[0])}, {{{dims}}}, "
            f"{_agg(node.option('agg'), node.option('attr'))})"
        )
    if op == "regrid":
        factors = ", ".join(str(f) for f in node.option("factors"))
        return (
            f"regrid({_expr(node.args[0])}, [{factors}], "
            f"{_agg(node.option('agg'), node.option('attr'))})"
        )
    if op == "sjoin":
        left, right = node.args
        pairs = " and ".join(
            f"{_ref_name(left)}.{l} = {_ref_name(right)}.{r}"
            for l, r in node.option("on")
        )
        return f"sjoin({_expr(left)}, {_expr(right)}, {pairs})"
    if op == "cjoin":
        pairs_opt = node.option("attr_pairs")
        if pairs_opt is None:
            raise PlanError(
                "cjoin with a Python predicate has no textual form"
            )
        left, right = node.args
        pairs = " and ".join(
            f"{_ref_name(left)}.{l} = {_ref_name(right)}.{r}"
            for l, r in pairs_opt
        )
        return f"cjoin({_expr(left)}, {_expr(right)}, {pairs})"
    if op == "project":
        attrs = ", ".join(node.option("attrs"))
        return f"project({_expr(node.args[0])}, {attrs})"
    if op == "transpose":
        order = ", ".join(node.option("order"))
        return f"transpose({_expr(node.args[0])}, [{order}])"
    if op == "reshape":
        order = ", ".join(node.option("order"))
        dims = ", ".join(f"{n} = 1:{s}" for n, s in node.option("new_dims"))
        return f"reshape({_expr(node.args[0])}, [{order}], [{dims}])"
    if op == "apply":
        udf = node.option("udf")
        if udf is None:
            raise PlanError("apply with a Python callable has no textual form")
        args = ", ".join(node.option("args"))
        return f"apply({_expr(node.args[0])}, {udf}({args}))"
    raise PlanError(f"cannot unparse operator {op!r}")


def _agg(agg: Any, attr: Any) -> str:
    return f"{agg}({attr if attr else '*'})"


def _ref_name(node: Node) -> str:
    if isinstance(node, ArrayRef):
        return node.name
    # Nested expressions have no qualifier name; the textual grammar only
    # qualifies join predicates by array name.
    raise PlanError("join operands must be array references to unparse")


def _conjunction(pred: Any) -> str:
    if not isinstance(pred, PredicateConjunction):
        raise PlanError(
            f"{type(pred).__name__} predicates have no textual form"
        )
    return " and ".join(_term(t) for t in pred.terms)


def _term(term: Node) -> str:
    if isinstance(term, DimPredicate):
        if term.op in ("even", "odd"):
            return f"{term.op}({term.dim})"
        return f"{term.dim} {term.op} {term.value}"
    if isinstance(term, AttrPredicate):
        return f"{term.attr} {term.op} {term.value}"
    raise PlanError(f"cannot unparse predicate term {type(term).__name__}")
