"""Parse-tree execution against a catalog (Section 2.4).

The executor is the single consumer of parse trees: every binding —
textual or Python — funnels through here.  It holds a schema catalog
(``define`` results) and an array catalog (``create`` results and query
outputs), plans each query through the :class:`~repro.query.planner.Planner`,
and dispatches operator nodes to the user-extendable operator catalog.

Pass a :class:`~repro.provenance.log.ProvenanceEngine` to have every
derivation logged (and its arrays registered) for lineage tracing; the
executor then satisfies both Section 2.4 and Section 2.12 at once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

import itertools

from ..cluster.resilience import check_deadline
from ..core.array import SciArray
from ..core.enhance import enhance as attach_enhancement
from ..core.errors import PlanError, SchemaError
from ..core.ops import get_operator
from ..core.schema import ArraySchema, define_array
from ..obs import tracing
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.recorder import QueryProfile, get_flight_recorder
from ..obs.slowlog import SlowQueryLog
from ..obs.tracing import SpanRecorder
from .ast import (
    ArrayRef,
    CreateNode,
    DefineNode,
    EnhanceNode,
    Node,
    OpNode,
    PredicateConjunction,
    SelectNode,
)
from .cost import CostModel
from .parser import parse_statement
from .planner import PhysicalOp, PlannedQuery, Planner, PlannerConfig


def _distributed_type():
    """The DistributedArray class, imported lazily (grid is optional)."""
    from ..cluster.grid import DistributedArray

    return DistributedArray

try:  # Provenance is optional wiring, not a hard dependency.
    from ..provenance.log import ProvenanceEngine
except ImportError:  # pragma: no cover
    ProvenanceEngine = None  # type: ignore[assignment]

__all__ = ["ExecutionResult", "Executor"]


@dataclass
class ExecutionResult:
    """The outcome of one statement."""

    value: Any
    rewrites: list[str] = field(default_factory=list)
    #: Cells the filter predicate actually examined (the E2 metric).
    cells_examined: int = 0
    #: The plan that ran — physical annotations included (PlannedQuery).
    planned: Optional[PlannedQuery] = None

    @property
    def array(self) -> SciArray:
        if not isinstance(self.value, SciArray):
            raise PlanError("statement did not produce an array")
        return self.value


class Executor:
    """Evaluates parse trees; the backend of every language binding."""

    def __init__(
        self,
        planner: Optional[Planner] = None,
        provenance: "Optional[ProvenanceEngine]" = None,
        slow_log: Optional[SlowQueryLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        if planner is None:
            planner = Planner(
                catalog=self._describe_for_planner,
                cost_model=self.cost_model,
            )
        else:
            # A caller-supplied planner keeps its own switches but gains
            # the executor's catalog/cost model unless it brought its own.
            if planner.catalog is None:
                planner.catalog = self._describe_for_planner
            if planner.cost_model is None:
                planner.cost_model = self.cost_model
        self.planner = planner
        self.provenance = provenance
        self.slow_log = slow_log
        self.metrics = metrics
        self.schemas: dict[str, ArraySchema] = {}
        self.arrays: dict[str, Any] = {}
        self._temp_counter = itertools.count()

    # -- catalog -----------------------------------------------------------------

    def register(self, name: str, array: Any) -> Any:
        """Enter an existing array into the catalog (e.g. a loaded file,
        or a grid-resident :class:`~repro.cluster.grid.DistributedArray`)."""
        self.arrays[name] = array
        if (
            self.provenance is not None
            and isinstance(array, SciArray)
            and name not in self.provenance.catalog
        ):
            self.provenance.register_external(
                name, array, program="executor.register"
            )
        return array

    def lookup(self, name: str) -> SciArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise PlanError(f"no array named {name!r} in the catalog") from None

    def _describe_for_planner(self, name: str):
        """Catalog callback the planner estimates from.

        For a grid-resident array the per-node bucket statistics are
        merged across alive nodes (an in-memory walk of stats catalogs —
        no bucket I/O, nothing metered) and the stored totals normalized
        by the replica factor to *logical* counts, which is what one
        exactly-once read touches.  Returns ``None`` for unknown names;
        any failure inside is swallowed by the planner (stats must never
        fail a query).
        """
        from .stats import ArrayDescription, ArrayStats

        arr = self.arrays.get(name)
        if arr is None:
            return None
        DistributedArray = _distributed_type()
        if isinstance(arr, DistributedArray):
            parts = []
            for node in arr.grid.nodes:
                if not node.alive or node.retired:
                    continue
                try:
                    parts.append(node.partition(arr.name).array_stats())
                except Exception:
                    continue  # no partition on this node / racing failure
            merged = ArrayStats.merged(parts)
            k = max(1, arr.replication)
            return ArrayDescription(
                name=name,
                kind="distributed",
                cells=merged.cell_count // k,
                chunks=-(-merged.chunk_count // k),
                nodes=len(arr.grid.nodes),
                replication=k,
                grid_id=id(arr.grid),
                partitioner=type(arr.partitioner).__name__,
                dims=tuple((d.name, d.size) for d in arr.schema.dimensions),
                stats=merged,
            )
        if isinstance(arr, SciArray):
            return ArrayDescription(
                name=name,
                kind="local",
                cells=arr.count_occupied(),
                chunks=arr.chunk_count(),
                dims=tuple((d.name, d.size) for d in arr.schema.dimensions),
            )
        return None

    # -- entry points ---------------------------------------------------------------

    def run(
        self,
        statement: "str | Node",
        config: Optional[PlannerConfig] = None,
    ) -> ExecutionResult:
        """Execute one statement (text or a parse tree).

        *config* overrides the planner's switches for this query only —
        e.g. ``PlannerConfig(enable_pruning=False)`` forces full scans.
        """
        text = statement if isinstance(statement, str) else None
        with tracing.span("query"):
            with tracing.span("parse"):
                node = (
                    parse_statement(statement)
                    if isinstance(statement, str)
                    else statement
                )
            with tracing.span("plan") as sp:
                planned = self.planner.plan(node, config=config)
                sp.add("rewrites", len(planned.rewrites))
            return self.run_planned(planned, statement_text=text)

    def run_planned(
        self,
        planned: PlannedQuery,
        statement_text: Optional[str] = None,
    ) -> ExecutionResult:
        """Execute an already-planned query.

        EXPLAIN uses this to run the *exact* planned tree it will later
        annotate (operator spans are matched to plan nodes by identity,
        and re-planning would rebuild the nodes).

        When the process :class:`~repro.obs.recorder.FlightRecorder` is
        capturing profiles (the default), the statement runs under a
        span recorder (reusing an already-active one — e.g. EXPLAIN's —
        rather than stacking a second) and its operator tree is retained
        as a :class:`~repro.obs.recorder.QueryProfile`, correlated to
        the slow-query log by ``query_id``.  With the recorder disabled
        this costs one global read and one attribute check.
        """
        flight = get_flight_recorder()
        capture = flight.enabled and flight.capture_profiles
        text = statement_text or f"<{type(planned.node).__name__}>"
        query_id: Optional[str] = None
        span_recorder = None
        previous = None
        if capture:
            query_id = flight.next_query_id()
            active = tracing.get_recorder()
            if active.enabled:
                span_recorder = active  # EXPLAIN (or a test) already records
            else:
                span_recorder = SpanRecorder()
                previous = tracing.set_recorder(span_recorder)
        started_at = time.time()
        t0 = time.perf_counter()
        result = ExecutionResult(
            None, rewrites=list(planned.rewrites), planned=planned
        )
        error: Optional[str] = None
        try:
            with tracing.span("execute"):
                result.value = self._execute(planned.node, result)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            if previous is not None:
                tracing.set_recorder(previous)
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            registry = (
                self.metrics if self.metrics is not None else get_registry()
            )
            registry.counter("query.statements").inc()
            registry.histogram("query.latency_ms").observe(elapsed_ms)
            if self.slow_log is not None:
                self.slow_log.observe(
                    text,
                    elapsed_ms,
                    {"cells_examined": result.cells_examined},
                    query_id=query_id,
                )
            if capture and span_recorder is not None:
                # Imported here: obs.explain imports the AST module, so a
                # module-level import would close a cycle through
                # query.__init__ while obs.__init__ is still loading.
                from ..obs.explain import build_report

                report = build_report(
                    planned.node, list(planned.rewrites),
                    span_recorder.roots, text, elapsed_ms,
                    planned=planned,
                )
                # Close the calibration loop: measured per-operator times
                # feed the cost model that estimated them.
                if error is None and self.cost_model is not None:
                    self.cost_model.observe(report.root)
                flight.record_profile(
                    QueryProfile(
                        query_id=query_id or "",
                        statement=text,
                        started_at=started_at,
                        total_ms=elapsed_ms,
                        rewrites=list(planned.rewrites),
                        root=report.root,
                        cells_examined=result.cells_examined,
                        error=error,
                        estimated=_estimated_summary(planned.physical),
                    )
                )
        return result

    def run_script(
        self, text: str, config: "Optional[PlannerConfig]" = None
    ) -> list[ExecutionResult]:
        from .parser import parse

        return [self.run(node, config=config) for node in parse(text)]

    # -- statement dispatch ------------------------------------------------------------

    def _execute(self, node: Node, result: ExecutionResult) -> Any:
        if isinstance(node, DefineNode):
            schema = define_array(
                node.name,
                values=list(node.values),
                dims=list(node.dims),
                updatable=node.updatable,
            )
            self.schemas[node.name] = schema
            return schema
        if isinstance(node, CreateNode):
            schema = self.schemas.get(node.type_name)
            if schema is None:
                raise PlanError(f"no array type named {node.type_name!r}")
            bounds = ["*" if b is None else b for b in node.bounds]
            array = schema.create(node.instance, bounds)
            self.register(node.instance, array)
            return array
        if isinstance(node, EnhanceNode):
            array = self.lookup(node.array)
            return attach_enhancement(array, node.function)
        if isinstance(node, SelectNode):
            value = self._eval(node.expr, result, output_name=node.into)
            if node.into is not None:
                if isinstance(value, SciArray):
                    value.name = node.into
                self.arrays[node.into] = value
            return value
        if isinstance(node, (OpNode, ArrayRef)):
            return self._eval(node, result)
        raise PlanError(f"cannot execute node type {type(node).__name__}")

    # -- expression evaluation -----------------------------------------------------------

    def _eval(
        self,
        node: Node,
        result: ExecutionResult,
        output_name: Optional[str] = None,
    ) -> Any:
        if isinstance(node, ArrayRef):
            return self.lookup(node.name)
        if not isinstance(node, OpNode):
            raise PlanError(f"cannot evaluate node type {type(node).__name__}")
        kwargs = self._translate_options(node, result)
        if self.provenance is not None and not self._has_distributed_args(node):
            # Resolve inputs BEFORE opening this operator's span: nested
            # expressions execute under their own spans, keeping every
            # span's time and counters exclusive to its operator.
            input_names = [self._name_of(a, result) for a in node.args]
            output = output_name or f"__q{next(self._temp_counter)}"
            # Operator boundary: cooperative cancellation under a deadline.
            check_deadline(f"operator {node.op}")
            with tracing.span("op:" + node.op, op=node.op, node_id=id(node)) as sp:
                value = self.provenance.execute(
                    node.op, input_names, output, **kwargs
                )
                self._annotate_local(
                    sp, [self.provenance.catalog[n] for n in input_names], value
                )
            return value
        args = [self._eval(a, result) for a in node.args]
        check_deadline(f"operator {node.op}")
        with tracing.span("op:" + node.op, op=node.op, node_id=id(node)) as sp:
            value = self._apply_op(node, args, kwargs, sp, self._scan_spec(node, result))
            self._annotate_local(sp, args, value)
        return value

    def _scan_spec(self, node: Node, result: ExecutionResult):
        """The pruning directive the planner attached to *node*, if any.

        Looked up by node identity in the executed plan — `run_planned`
        executes the exact tree the planner annotated, so the ids line
        up.  Returns ``None`` (no pruning) for nodes planned without a
        spec or trees that never went through :meth:`Planner.plan`.
        """
        planned = result.planned
        if planned is None:
            return None
        phys = planned.physical_for(node)
        return phys.scan if phys is not None else None

    def _name_of(self, node: Node, result: ExecutionResult) -> str:
        """Resolve an argument to a provenance catalog name."""
        if isinstance(node, ArrayRef):
            if node.name not in self.provenance.catalog:
                self.provenance.register_external(
                    node.name, self.lookup(node.name), program="executor.catalog"
                )
            return node.name
        # Nested expression: evaluate through provenance under a temp name.
        kwargs = self._translate_options(node, result)
        input_names = [self._name_of(a, result) for a in node.args]
        output = f"__q{next(self._temp_counter)}"
        with tracing.span("op:" + node.op, op=node.op, node_id=id(node)) as sp:
            self.provenance.execute(node.op, input_names, output, **kwargs)
            self._annotate_local(
                sp,
                [self.provenance.catalog[n] for n in input_names],
                self.provenance.catalog[output],
            )
        return output

    # -- distributed dispatch ----------------------------------------------------

    def _has_distributed_args(self, node: OpNode) -> bool:
        """Whether any ArrayRef in the subtree is grid-resident.

        Checked over the whole subtree, not just direct arguments: a
        nested tree like ``filter(subsample(D))`` (which the planner's
        pushdown rewrite produces routinely) must reach the distributed
        dispatch for its inner scan, and the provenance engine only
        understands local :class:`~repro.core.array.SciArray` inputs.
        """
        DistributedArray = _distributed_type()
        stack = list(node.args)
        while stack:
            a = stack.pop()
            if isinstance(a, OpNode):
                stack.extend(a.args)
            elif isinstance(a, ArrayRef) and isinstance(
                self.arrays.get(a.name), DistributedArray
            ):
                return True
        return False

    def _apply_op(
        self, node: OpNode, args: list, kwargs: dict, sp, scan_spec=None
    ) -> Any:
        DistributedArray = _distributed_type()
        if any(isinstance(a, DistributedArray) for a in args):
            return self._dispatch_distributed(node, args, kwargs, sp, scan_spec)
        return get_operator(node.op)(*args, **kwargs)

    def _dispatch_distributed(
        self, node: OpNode, args: list, kwargs: dict, sp, scan_spec=None
    ) -> Any:
        """Run an operator over grid-resident inputs.

        Operators with a native distributed implementation (window
        subsample, algebraic aggregate/regrid, co-partitioned sjoin) run
        in place on the grid; anything else gathers the operands to the
        coordinator (metered as movement) and runs the local operator.

        *scan_spec* is the planner's chunk-skipping directive for this
        node (a :class:`~repro.query.planner.ScanSpec`): when the read
        feeding this operator is a direct grid scan of the spec's array,
        the per-attribute value intervals are forwarded so every node's
        storage manager can skip buckets whose statistics rule them out.
        """
        DistributedArray = _distributed_type()
        op = node.op
        sp.annotate(distributed=True)
        first = args[0] if isinstance(args[0], DistributedArray) else None
        grid_arg = next(
            (a for a in args if isinstance(a, DistributedArray)), None
        )
        if grid_arg is not None:
            # The scheduler re-annotates on entry, but a fallback gather
            # path never enters it — record the configured fan-out either
            # way so explain shows per-op parallelism consistently.
            sp.annotate(parallelism=grid_arg.grid.parallelism)
        def ranges_for(darr) -> Optional[dict]:
            if scan_spec is None or scan_spec.array != darr.name:
                return None
            return scan_spec.attr_ranges or None

        try:
            if op == "subsample" and first is not None and len(args) == 1:
                window = self._predicate_window(
                    node.option("predicate"), first
                )
                if window is not None:
                    # The window is a pruned (R-tree), metered gather of
                    # just the slab; the local operator then applies the
                    # exact Subsample semantics (rebasing, source_index).
                    slab = first.subsample(
                        window, attr_ranges=ranges_for(first)
                    )
                    return get_operator(op)(slab, **kwargs)
            elif op == "aggregate" and first is not None and len(args) == 1:
                return first.aggregate(
                    kwargs["group_dims"], kwargs["agg"], kwargs["attr"]
                )
            elif op == "regrid" and first is not None and len(args) == 1:
                return first.regrid(
                    kwargs["factors"], kwargs["agg"], kwargs["attr"]
                )
            elif (
                op == "sjoin"
                and len(args) == 2
                and first is not None
                and isinstance(args[1], DistributedArray)
                and args[0].grid is args[1].grid
            ):
                return args[0].sjoin(args[1], on=kwargs.get("on"))
        except SchemaError:
            # Holistic aggregate / incompatible partitioning: fall back
            # to a metered gather plus the local operator.
            pass
        local = [
            a.materialize(attr_ranges=ranges_for(a))
            if isinstance(a, DistributedArray)
            else a
            for a in args
        ]
        return get_operator(op)(*local, **kwargs)

    def _predicate_window(
        self, pred: Any, darr: Any
    ) -> Optional[tuple[tuple, tuple]]:
        """Compile a pure-range dimension predicate to a scan window.

        Returns ``None`` when the predicate needs per-cell evaluation
        (even/odd/!=, attribute terms, callables) or the window cannot
        be closed (an unbounded dimension with no upper constraint).
        """
        if not isinstance(pred, PredicateConjunction):
            return None
        if pred.attr_terms:
            return None
        dims = list(darr.schema.dimensions)
        names = [d.name for d in dims]
        lo: dict[str, int] = {}
        hi: dict[str, int] = {}
        for term in pred.dim_terms:
            if term.dim not in names:
                raise PlanError(
                    f"array {darr.name!r} has no dimension {term.dim!r} "
                    f"(dimensions: {', '.join(names)})"
                )
            if term.op in ("even", "odd", "!="):
                return None
            value = term.value
            if term.op == "=":
                lo[term.dim] = max(lo.get(term.dim, value), value)
                hi[term.dim] = min(hi.get(term.dim, value), value)
            elif term.op == "<":
                hi[term.dim] = min(hi.get(term.dim, value - 1), value - 1)
            elif term.op == "<=":
                hi[term.dim] = min(hi.get(term.dim, value), value)
            elif term.op == ">":
                lo[term.dim] = max(lo.get(term.dim, value + 1), value + 1)
            elif term.op == ">=":
                lo[term.dim] = max(lo.get(term.dim, value), value)
        lo_coords, hi_coords = [], []
        for d in dims:
            lo_coords.append(lo.get(d.name, 1))
            upper = hi.get(d.name, d.size)
            if upper is None:  # unbounded dim, no upper constraint
                return None
            hi_coords.append(upper)
        return tuple(lo_coords), tuple(hi_coords)

    # -- span annotation ---------------------------------------------------------

    def _annotate_local(self, sp, args: list, value: Any) -> None:
        """Attach input/output sizes to an operator span.

        Guarded on :func:`tracing.enabled` because the counts themselves
        walk chunk maps — with tracing off this must cost nothing.
        Grid-resident inputs are skipped: their scans/transfers accrue
        through the grid's own instrumentation inside this span.
        """
        if not tracing.enabled():
            return
        for a in args:
            if isinstance(a, SciArray):
                sp.add("cells_scanned", a.count_occupied())
                sp.add("chunks_touched", a.chunk_count())
        if isinstance(value, SciArray):
            sp.add("cells_out", value.count_occupied())

    def _translate_options(self, node: OpNode, result: ExecutionResult) -> dict:
        """Map AST options to the operator functions' keyword arguments."""
        op = node.op
        if op == "subsample":
            pred = node.option("predicate")
            return {"predicate": _as_dim_mapping(pred)}
        if op == "filter":
            pred = node.option("predicate")
            fn = _as_cell_callable(pred)

            def counting(cell, _fn=fn, _res=result):
                _res.cells_examined += 1
                return _fn(cell)

            return {"predicate": counting}
        if op == "aggregate":
            return {
                "group_dims": list(node.option("group_dims")),
                "agg": node.option("agg"),
                "attr": node.option("attr"),
            }
        if op == "regrid":
            return {
                "factors": list(node.option("factors")),
                "agg": node.option("agg"),
                "attr": node.option("attr"),
            }
        if op == "sjoin":
            return {"on": list(node.option("on"))}
        if op == "cjoin":
            pairs = node.option("attr_pairs")
            if pairs is not None:
                def predicate(l, r, _pairs=pairs):
                    return all(
                        getattr(l, la) == getattr(r, ra) for la, ra in _pairs
                    )
                return {"predicate": predicate}
            return {"predicate": node.option("predicate")}
        if op == "project":
            return {"attrs": list(node.option("attrs"))}
        if op == "transpose":
            return {"order": list(node.option("order"))}
        if op == "reshape":
            return {
                "order": list(node.option("order")),
                "new_dims": list(node.option("new_dims")),
            }
        if op == "apply":
            udf_name = node.option("udf")
            if udf_name is not None:
                # Textual form: apply(A, Fn(attr, ...)) over a registered UDF.
                from ..core.udf import get_function

                fn = get_function(udf_name)
                args = list(node.option("args"))

                def cell_fn(cell, _fn=fn, _args=args):
                    return _fn(*(getattr(cell, a) for a in _args))

                output = [(n, t) for n, t in fn.outputs]
                return {"fn": cell_fn, "output": output}
            return {"fn": node.option("fn"), "output": list(node.option("output"))}
        # Unknown (user-registered) operator: pass options through verbatim.
        return dict(node.options)


def _estimated_summary(physical: Optional[PhysicalOp]) -> Optional[dict]:
    """Fold a physical plan into the flat dict a QueryProfile retains.

    This is the slot PR 8 reserved (``estimated=None``): enough to
    compare against the profile's actuals after the fact — predicted
    cells/ms at the root, total chunks the scans expected to touch, and
    how many of those the planner expected to prune — without keeping
    the whole plan object alive in the profile ring.
    """
    if physical is None:
        return None
    out: dict[str, Any] = {}
    if physical.est_cells is not None:
        out["cells"] = int(physical.est_cells)
    if physical.est_ms is not None:
        out["ms"] = round(float(physical.est_ms), 3)
    chunks = 0
    pruned = 0
    have_chunks = False
    for p in physical.walk():
        if p.op == "scan" and p.est_chunks is not None:
            have_chunks = True
            chunks += p.est_chunks
            pruned += p.est_chunks_pruned or 0
    if have_chunks:
        out["chunks"] = chunks
        out["chunks_pruned"] = pruned
    strategies = {
        p.op: p.strategy for p in physical.walk() if p.strategy
    }
    if strategies:
        out["strategies"] = strategies
    return out or None


def _as_dim_mapping(pred: Any) -> dict:
    if isinstance(pred, PredicateConjunction):
        return pred.dims_condition()
    if isinstance(pred, dict):
        return pred
    raise PlanError(f"cannot use {type(pred).__name__} as a subsample predicate")


def _as_cell_callable(pred: Any):
    if isinstance(pred, PredicateConjunction):
        return pred.attrs_callable()
    if callable(pred):
        return pred
    raise PlanError(f"cannot use {type(pred).__name__} as a filter predicate")
