"""Parse-tree execution against a catalog (Section 2.4).

The executor is the single consumer of parse trees: every binding —
textual or Python — funnels through here.  It holds a schema catalog
(``define`` results) and an array catalog (``create`` results and query
outputs), plans each query through the :class:`~repro.query.planner.Planner`,
and dispatches operator nodes to the user-extendable operator catalog.

Pass a :class:`~repro.provenance.log.ProvenanceEngine` to have every
derivation logged (and its arrays registered) for lineage tracing; the
executor then satisfies both Section 2.4 and Section 2.12 at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import itertools

from ..core.array import SciArray
from ..core.enhance import enhance as attach_enhancement
from ..core.errors import PlanError
from ..core.ops import get_operator
from ..core.schema import ArraySchema, define_array
from .ast import (
    ArrayRef,
    CreateNode,
    DefineNode,
    EnhanceNode,
    Node,
    OpNode,
    PredicateConjunction,
    SelectNode,
)
from .parser import parse_statement
from .planner import Planner

try:  # Provenance is optional wiring, not a hard dependency.
    from ..provenance.log import ProvenanceEngine
except ImportError:  # pragma: no cover
    ProvenanceEngine = None  # type: ignore[assignment]

__all__ = ["ExecutionResult", "Executor"]


@dataclass
class ExecutionResult:
    """The outcome of one statement."""

    value: Any
    rewrites: list[str] = field(default_factory=list)
    #: Cells the filter predicate actually examined (the E2 metric).
    cells_examined: int = 0

    @property
    def array(self) -> SciArray:
        if not isinstance(self.value, SciArray):
            raise PlanError("statement did not produce an array")
        return self.value


class Executor:
    """Evaluates parse trees; the backend of every language binding."""

    def __init__(
        self,
        planner: Optional[Planner] = None,
        provenance: "Optional[ProvenanceEngine]" = None,
    ) -> None:
        self.planner = planner or Planner()
        self.provenance = provenance
        self.schemas: dict[str, ArraySchema] = {}
        self.arrays: dict[str, SciArray] = {}
        self._temp_counter = itertools.count()

    # -- catalog -----------------------------------------------------------------

    def register(self, name: str, array: SciArray) -> SciArray:
        """Enter an existing array into the catalog (e.g. a loaded file)."""
        self.arrays[name] = array
        if self.provenance is not None and name not in self.provenance.catalog:
            self.provenance.register_external(
                name, array, program="executor.register"
            )
        return array

    def lookup(self, name: str) -> SciArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise PlanError(f"no array named {name!r} in the catalog") from None

    # -- entry points ---------------------------------------------------------------

    def run(self, statement: "str | Node") -> ExecutionResult:
        """Execute one statement (text or a parse tree)."""
        node = (
            parse_statement(statement) if isinstance(statement, str) else statement
        )
        planned = self.planner.plan(node)
        result = ExecutionResult(None, rewrites=list(planned.rewrites))
        result.value = self._execute(planned.node, result)
        return result

    def run_script(self, text: str) -> list[ExecutionResult]:
        from .parser import parse

        return [self.run(node) for node in parse(text)]

    # -- statement dispatch ------------------------------------------------------------

    def _execute(self, node: Node, result: ExecutionResult) -> Any:
        if isinstance(node, DefineNode):
            schema = define_array(
                node.name,
                values=list(node.values),
                dims=list(node.dims),
                updatable=node.updatable,
            )
            self.schemas[node.name] = schema
            return schema
        if isinstance(node, CreateNode):
            schema = self.schemas.get(node.type_name)
            if schema is None:
                raise PlanError(f"no array type named {node.type_name!r}")
            bounds = ["*" if b is None else b for b in node.bounds]
            array = schema.create(node.instance, bounds)
            self.register(node.instance, array)
            return array
        if isinstance(node, EnhanceNode):
            array = self.lookup(node.array)
            return attach_enhancement(array, node.function)
        if isinstance(node, SelectNode):
            value = self._eval(node.expr, result, output_name=node.into)
            if node.into is not None:
                if isinstance(value, SciArray):
                    value.name = node.into
                self.arrays[node.into] = value
            return value
        if isinstance(node, (OpNode, ArrayRef)):
            return self._eval(node, result)
        raise PlanError(f"cannot execute node type {type(node).__name__}")

    # -- expression evaluation -----------------------------------------------------------

    def _eval(
        self,
        node: Node,
        result: ExecutionResult,
        output_name: Optional[str] = None,
    ) -> Any:
        if isinstance(node, ArrayRef):
            return self.lookup(node.name)
        if not isinstance(node, OpNode):
            raise PlanError(f"cannot evaluate node type {type(node).__name__}")
        kwargs = self._translate_options(node, result)
        if self.provenance is not None:
            input_names = [self._name_of(a, result) for a in node.args]
            output = output_name or f"__q{next(self._temp_counter)}"
            return self.provenance.execute(node.op, input_names, output, **kwargs)
        args = [self._eval(a, result) for a in node.args]
        return get_operator(node.op)(*args, **kwargs)

    def _name_of(self, node: Node, result: ExecutionResult) -> str:
        """Resolve an argument to a provenance catalog name."""
        if isinstance(node, ArrayRef):
            if node.name not in self.provenance.catalog:
                self.provenance.register_external(
                    node.name, self.lookup(node.name), program="executor.catalog"
                )
            return node.name
        # Nested expression: evaluate through provenance under a temp name.
        kwargs = self._translate_options(node, result)
        input_names = [self._name_of(a, result) for a in node.args]
        output = f"__q{next(self._temp_counter)}"
        self.provenance.execute(node.op, input_names, output, **kwargs)
        return output

    def _translate_options(self, node: OpNode, result: ExecutionResult) -> dict:
        """Map AST options to the operator functions' keyword arguments."""
        op = node.op
        if op == "subsample":
            pred = node.option("predicate")
            return {"predicate": _as_dim_mapping(pred)}
        if op == "filter":
            pred = node.option("predicate")
            fn = _as_cell_callable(pred)

            def counting(cell, _fn=fn, _res=result):
                _res.cells_examined += 1
                return _fn(cell)

            return {"predicate": counting}
        if op == "aggregate":
            return {
                "group_dims": list(node.option("group_dims")),
                "agg": node.option("agg"),
                "attr": node.option("attr"),
            }
        if op == "regrid":
            return {
                "factors": list(node.option("factors")),
                "agg": node.option("agg"),
                "attr": node.option("attr"),
            }
        if op == "sjoin":
            return {"on": list(node.option("on"))}
        if op == "cjoin":
            pairs = node.option("attr_pairs")
            if pairs is not None:
                def predicate(l, r, _pairs=pairs):
                    return all(
                        getattr(l, la) == getattr(r, ra) for la, ra in _pairs
                    )
                return {"predicate": predicate}
            return {"predicate": node.option("predicate")}
        if op == "project":
            return {"attrs": list(node.option("attrs"))}
        if op == "transpose":
            return {"order": list(node.option("order"))}
        if op == "reshape":
            return {
                "order": list(node.option("order")),
                "new_dims": list(node.option("new_dims")),
            }
        if op == "apply":
            udf_name = node.option("udf")
            if udf_name is not None:
                # Textual form: apply(A, Fn(attr, ...)) over a registered UDF.
                from ..core.udf import get_function

                fn = get_function(udf_name)
                args = list(node.option("args"))

                def cell_fn(cell, _fn=fn, _args=args):
                    return _fn(*(getattr(cell, a) for a in _args))

                output = [(n, t) for n, t in fn.outputs]
                return {"fn": cell_fn, "output": output}
            return {"fn": node.option("fn"), "output": list(node.option("output"))}
        # Unknown (user-registered) operator: pass options through verbatim.
        return dict(node.options)


def _as_dim_mapping(pred: Any) -> dict:
    if isinstance(pred, PredicateConjunction):
        return pred.dims_condition()
    if isinstance(pred, dict):
        return pred
    raise PlanError(f"cannot use {type(pred).__name__} as a subsample predicate")


def _as_cell_callable(pred: Any):
    if isinstance(pred, PredicateConjunction):
        return pred.attrs_callable()
    if callable(pred):
        return pred
    raise PlanError(f"cannot use {type(pred).__name__} as a filter predicate")
