"""The Python language binding (Section 2.4).

"In the style of Ruby-on-Rails, LINQ and Hibernate, these language
bindings will attempt to fit large array manipulation cleanly into the
target language using the control structures of the language in question.
... the data-sublanguage approach epitomized by ODBC and JDBC has been a
huge mistake."

So: no SQL strings from Python.  Expressions compose with Python operators
and method chaining, and compile to the *same* parse trees the textual
binding produces::

    from repro.query import array, dim, attr, Executor

    q = (
        array("My_remote")
        .subsample((dim("I") >= 2) & (dim("J") <= 3))
        .filter(attr("s1") > 3.5)
        .aggregate(["J"], "sum", "s1")
    )
    result = Executor().run(q.node)

Because the output is an AST, the planner's pushdown rewrites apply to
fluent queries exactly as to textual ones.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from ..core.errors import PlanError
from .ast import (
    ArrayRef,
    AttrPredicate,
    DimPredicate,
    Node,
    OpNode,
    PredicateConjunction,
    SelectNode,
)

__all__ = ["array", "dim", "attr", "QueryExpr", "DimExpr", "AttrExpr"]


class _PredicateBuilder:
    """Shared machinery: comparison operators build predicate nodes."""

    def _make(self, op: str, value: Any) -> "PredicateExpr":
        raise NotImplementedError

    def __eq__(self, value):  # type: ignore[override]
        return self._make("=", value)

    def __ne__(self, value):  # type: ignore[override]
        return self._make("!=", value)

    def __lt__(self, value):
        return self._make("<", value)

    def __le__(self, value):
        return self._make("<=", value)

    def __gt__(self, value):
        return self._make(">", value)

    def __ge__(self, value):
        return self._make(">=", value)

    def __hash__(self):  # keep usable as dict keys despite __eq__
        return id(self)


class DimExpr(_PredicateBuilder):
    """A dimension name awaiting a comparison: ``dim("I") >= 2``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _make(self, op: str, value: Any) -> "PredicateExpr":
        return PredicateExpr((DimPredicate(self.name, op, int(value)),))

    def even(self) -> "PredicateExpr":
        """The paper's ``even(X)``."""
        return PredicateExpr((DimPredicate(self.name, "even"),))

    def odd(self) -> "PredicateExpr":
        return PredicateExpr((DimPredicate(self.name, "odd"),))


class AttrExpr(_PredicateBuilder):
    """An attribute name awaiting a comparison: ``attr("s1") > 3.5``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _make(self, op: str, value: Any) -> "PredicateExpr":
        return PredicateExpr((AttrPredicate(self.name, op, value),))


class PredicateExpr:
    """A conjunction under construction; combine with ``&``."""

    def __init__(self, terms: tuple) -> None:
        self.terms = terms

    def __and__(self, other: "PredicateExpr") -> "PredicateExpr":
        if not isinstance(other, PredicateExpr):
            raise PlanError("predicates combine only with other predicates (&)")
        return PredicateExpr(self.terms + other.terms)

    def __or__(self, other):
        raise PlanError(
            "subsample/filter predicates are conjunctions; OR is not in the "
            "paper's predicate language"
        )

    def node(self) -> PredicateConjunction:
        return PredicateConjunction(self.terms)


def dim(name: str) -> DimExpr:
    """Start a dimension condition (Subsample predicates)."""
    return DimExpr(name)


def attr(name: str) -> AttrExpr:
    """Start an attribute condition (Filter predicates)."""
    return AttrExpr(name)


class QueryExpr:
    """A fluent array expression compiling to a parse tree (``.node``)."""

    def __init__(self, node: Node) -> None:
        self.node = node

    # -- structural operators ------------------------------------------------------

    def subsample(self, predicate: "PredicateExpr | dict") -> "QueryExpr":
        pred = predicate.node() if isinstance(predicate, PredicateExpr) else predicate
        return QueryExpr(
            OpNode("subsample", (self.node,), (("predicate", pred),))
        )

    def sjoin(
        self, other: "QueryExpr | str", on: Sequence[tuple[str, str]]
    ) -> "QueryExpr":
        rhs = array(other).node if isinstance(other, str) else other.node
        return QueryExpr(
            OpNode("sjoin", (self.node, rhs), (("on", tuple(on)),))
        )

    def transpose(self, order: Sequence[str]) -> "QueryExpr":
        return QueryExpr(
            OpNode("transpose", (self.node,), (("order", tuple(order)),))
        )

    def reshape(
        self, order: Sequence[str], new_dims: Sequence[tuple[str, int]]
    ) -> "QueryExpr":
        return QueryExpr(
            OpNode(
                "reshape",
                (self.node,),
                (("order", tuple(order)), ("new_dims", tuple(new_dims))),
            )
        )

    # -- content operators -----------------------------------------------------------

    def filter(self, predicate: "PredicateExpr | Callable") -> "QueryExpr":
        pred = predicate.node() if isinstance(predicate, PredicateExpr) else predicate
        return QueryExpr(OpNode("filter", (self.node,), (("predicate", pred),)))

    def aggregate(
        self,
        group_dims: Sequence[str],
        agg: str,
        attr_name: Optional[str] = None,
    ) -> "QueryExpr":
        return QueryExpr(
            OpNode(
                "aggregate",
                (self.node,),
                (
                    ("group_dims", tuple(group_dims)),
                    ("agg", agg),
                    ("attr", attr_name),
                ),
            )
        )

    def regrid(
        self, factors: Sequence[int], agg: str = "avg",
        attr_name: Optional[str] = None,
    ) -> "QueryExpr":
        return QueryExpr(
            OpNode(
                "regrid",
                (self.node,),
                (
                    ("factors", tuple(factors)),
                    ("agg", agg),
                    ("attr", attr_name),
                ),
            )
        )

    def cjoin(
        self,
        other: "QueryExpr | str",
        predicate: "Callable | Sequence[tuple[str, str]]",
    ) -> "QueryExpr":
        rhs = array(other).node if isinstance(other, str) else other.node
        if callable(predicate):
            options = (("predicate", predicate),)
        else:
            options = (("attr_pairs", tuple(predicate)),)
        return QueryExpr(OpNode("cjoin", (self.node, rhs), options))

    def apply(
        self, fn: Callable, output: Sequence[tuple[str, str]]
    ) -> "QueryExpr":
        return QueryExpr(
            OpNode(
                "apply",
                (self.node,),
                (("fn", fn), ("output", tuple(output))),
            )
        )

    def project(self, attrs: Sequence[str]) -> "QueryExpr":
        return QueryExpr(
            OpNode("project", (self.node,), (("attrs", tuple(attrs)),))
        )

    # -- finishers --------------------------------------------------------------------

    def into(self, name: str) -> SelectNode:
        """Name the result in the catalog: ``select ... into name``."""
        return SelectNode(self.node, into=name)

    def select(self) -> SelectNode:
        return SelectNode(self.node)


def array(name: "str | QueryExpr") -> QueryExpr:
    """Start a fluent query from a catalog array."""
    if isinstance(name, QueryExpr):
        return name
    return QueryExpr(ArrayRef(name))
