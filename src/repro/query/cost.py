"""Cost model for physical-plan strategy choice and row estimates.

The model is deliberately simple — a per-operator ms/cell rate — because
its inputs are real: every executed query leaves an operator tree in the
flight recorder's QueryProfile store (PR 8) with measured ``time_ms`` and
``cells_scanned``/``cells_out`` per operator.  :meth:`CostModel.observe`
folds those into an exponentially-weighted moving average, so the model
self-calibrates as the workload runs; :meth:`CostModel.from_profiles`
warm-starts one from the recorder's retained history.

Strategy choice covers the two decisions the executor used to make by
exception-driven trial (``try native; except SchemaError: gather``):

* **aggregate** — algebraic aggregates (sum/count/avg/min/max/stdev)
  decompose into per-node partials merged at the coordinator; holistic
  ones (median, arbitrary callables) cannot, so the plan gathers.
* **sjoin** — arrays co-located on the same grid join node-locally;
  otherwise the smaller side would have to move, which this engine
  realizes as a gather.

Seeding defaults were measured on the repo's own E17/E18 benchmarks
(single-core CPython); they only matter until the first few queries
overwrite them.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Optional

__all__ = ["CostModel", "ALGEBRAIC_AGGREGATES", "DEFAULT_MS_PER_CELL"]

#: Aggregates with a partial/merge decomposition (mirrors the operator
#: layer's ``_ALGEBRAIC_MERGES`` in :mod:`repro.cluster.grid`).
ALGEBRAIC_AGGREGATES = frozenset({"sum", "count", "avg", "min", "max", "stdev"})

#: Seed rates (ms per cell handled) until observations arrive.
DEFAULT_MS_PER_CELL: dict[str, float] = {
    "scan": 0.004,
    "subsample": 0.004,
    "filter": 0.006,
    "apply": 0.006,
    "project": 0.004,
    "aggregate": 0.005,
    "regrid": 0.008,
    "sjoin": 0.010,
    "cjoin": 0.015,
}
_FALLBACK_RATE = 0.006


class CostModel:
    """EWMA per-operator cost rates + strategy choices.

    Thread-safe: the executor observes completed profiles from the query
    thread while the planner reads rates from wherever a plan is built.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        self.alpha = alpha
        self._rates: dict[str, float] = {}
        self._samples: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- calibration ----------------------------------------------------

    def observe(self, profile: Any) -> int:
        """Fold one executed operator tree (an ``OperatorProfile``-shaped
        object: ``op``/``time_ms``/``cells_scanned``/``cells_out``/
        ``children``) into the per-op rates.  Returns how many operator
        samples were absorbed.  Duck-typed so callers need not import
        the observability layer.
        """
        absorbed = 0
        stack = [profile]
        with self._lock:
            while stack:
                p = stack.pop()
                if p is None:
                    continue
                stack.extend(getattr(p, "children", ()) or ())
                op = getattr(p, "op", None)
                if not op or getattr(p, "error", None):
                    continue
                units = int(getattr(p, "cells_scanned", 0) or 0) + int(
                    getattr(p, "cells_out", 0) or 0
                )
                time_ms = float(getattr(p, "time_ms", 0.0) or 0.0)
                if units <= 0 or time_ms <= 0.0:
                    continue
                rate = time_ms / units
                if not math.isfinite(rate):
                    continue
                prev = self._rates.get(op)
                self._rates[op] = (
                    rate if prev is None
                    else prev + self.alpha * (rate - prev)
                )
                self._samples[op] = self._samples.get(op, 0) + 1
                absorbed += 1
        return absorbed

    @classmethod
    def from_profiles(
        cls, profiles: Iterable[Any], alpha: float = 0.3
    ) -> "CostModel":
        """Warm-start a model from retained QueryProfiles (oldest first,
        so recent queries dominate the EWMA)."""
        model = cls(alpha=alpha)
        for qp in profiles:
            root = getattr(qp, "root", None)
            if root is not None:
                model.observe(root)
        return model

    # -- estimation ------------------------------------------------------

    def ms_per_cell(self, op: str) -> float:
        with self._lock:
            rate = self._rates.get(op)
        if rate is not None:
            return rate
        return DEFAULT_MS_PER_CELL.get(op, _FALLBACK_RATE)

    def estimate_ms(self, op: str, cells: int) -> float:
        return self.ms_per_cell(op) * max(0, cells)

    def samples(self, op: str) -> int:
        with self._lock:
            return self._samples.get(op, 0)

    def calibration(self) -> dict[str, dict[str, float]]:
        """Current rates + sample counts, for export/inspection."""
        with self._lock:
            return {
                op: {"ms_per_cell": rate, "samples": self._samples.get(op, 0)}
                for op, rate in sorted(self._rates.items())
            }

    # -- strategy choice ---------------------------------------------------

    def aggregate_strategy(self, agg: Any) -> str:
        """``"partial-aggregate"`` when the aggregate decomposes into
        per-node partials, else ``"gather"``."""
        if isinstance(agg, str) and agg in ALGEBRAIC_AGGREGATES:
            return "partial-aggregate"
        return "gather"

    def sjoin_strategy(
        self, left: Optional[Any], right: Optional[Any]
    ) -> str:
        """``"copartitioned"`` when both sides live on the same grid
        (node-local join legal), else ``"gather"``.  Descriptions are
        :class:`~repro.query.stats.ArrayDescription`-shaped; unknown
        sides (computed subtrees) default to copartitioned-if-same-grid
        being unknowable, i.e. ``"gather"`` only when provably apart."""
        if left is None or right is None:
            return "copartitioned"  # runtime identity check still applies
        if not getattr(left, "distributed", False) or not getattr(
            right, "distributed", False
        ):
            return "copartitioned"
        lg, rg = getattr(left, "grid_id", None), getattr(right, "grid_id", None)
        if lg is not None and rg is not None and lg != rg:
            return "gather"
        return "copartitioned"
