"""Language bindings over a common parse-tree representation (Section 2.4).

"SciDB will have a parse-tree representation for commands.  Then, there
will be multiple language bindings ... these language bindings will attempt
to fit large array manipulation cleanly into the target language using the
control structures of the language in question."

* :mod:`repro.query.ast` — the parse-tree node types (the lingua franca);
* :mod:`repro.query.parser` — a textual AQL-style binding producing parse
  trees (``define array``, ``create``, ``select subsample(...)``, ...);
* :mod:`repro.query.binding` — the *Python* binding: fluent expressions
  (``array("A").subsample(dim("I") >= 2).aggregate(...)``) that build the
  same parse trees, avoiding the ODBC/JDBC "data-sublanguage mistake";
* :mod:`repro.query.planner` — structural-operator pushdown over parse
  trees (structural ops are data-agnostic, hence the optimization
  opportunity of Section 2.2.1);
* :mod:`repro.query.executor` — evaluates parse trees against a catalog,
  optionally routing derivations through the provenance engine.
"""

from .ast import (
    AttrPredicate,
    CreateNode,
    DefineNode,
    DimPredicate,
    EnhanceNode,
    Literal,
    Node,
    OpNode,
    PredicateConjunction,
    ArrayRef,
    SelectNode,
)
from .parser import parse, parse_statement
from .planner import PhysicalOp, PlannedQuery, Planner, PlannerConfig, ScanSpec
from .executor import ExecutionResult, Executor
from .binding import array, attr, dim, QueryExpr
from .unparse import unparse

__all__ = [
    "Node",
    "ArrayRef",
    "Literal",
    "OpNode",
    "DefineNode",
    "CreateNode",
    "SelectNode",
    "EnhanceNode",
    "DimPredicate",
    "AttrPredicate",
    "PredicateConjunction",
    "parse",
    "parse_statement",
    "Planner",
    "PlannerConfig",
    "PlannedQuery",
    "PhysicalOp",
    "ScanSpec",
    "Executor",
    "ExecutionResult",
    "array",
    "dim",
    "attr",
    "QueryExpr",
    "unparse",
]
