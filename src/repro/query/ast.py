"""Parse-tree node types — the common command representation (Section 2.4).

Every binding (the textual parser, the Python fluent binding, and any
future MATLAB/IDL-style frontend) produces these nodes; the planner and
executor consume nothing else.  Nodes are immutable values with structural
equality, so the planner's rewrites are easy to test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from ..core.errors import PlanError

__all__ = [
    "Node",
    "Literal",
    "ArrayRef",
    "DimPredicate",
    "AttrPredicate",
    "PredicateConjunction",
    "OpNode",
    "DefineNode",
    "CreateNode",
    "SelectNode",
    "EnhanceNode",
]

#: Comparison operators admitted in predicates.
COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


class Node:
    """Base class for all parse-tree nodes."""

    def children(self) -> tuple["Node", ...]:
        return ()


@dataclass(frozen=True)
class Literal(Node):
    """A constant value."""

    value: Any


@dataclass(frozen=True)
class ArrayRef(Node):
    """A reference to a catalog array by name."""

    name: str


@dataclass(frozen=True)
class DimPredicate(Node):
    """A single-dimension condition (Subsample's building block).

    ``op`` is a comparison from :data:`COMPARISONS`, or the special
    ``"even"`` / ``"odd"`` unary forms of the paper's ``even(X)`` example
    (``value`` is ignored for those).
    """

    dim: str
    op: str
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in COMPARISONS + ("even", "odd"):
            raise PlanError(f"unknown dimension comparison {self.op!r}")
        if self.op in COMPARISONS and self.value is None:
            raise PlanError(f"comparison {self.op!r} needs a value")

    def to_condition(self):
        """Compile to the operator layer's DimCondition form."""
        if self.op == "even":
            return lambda v: v % 2 == 0
        if self.op == "odd":
            return lambda v: v % 2 == 1
        value = self.value
        return {
            "=": value,
            "!=": (lambda v: v != value),
            "<": (None, value - 1),
            "<=": (None, value),
            ">": (value + 1, None),
            ">=": (value, None),
        }[self.op]


@dataclass(frozen=True)
class AttrPredicate(Node):
    """A condition over a cell's data values (Filter / Cjoin)."""

    attr: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISONS:
            raise PlanError(f"unknown attribute comparison {self.op!r}")

    def to_callable(self):
        attr, op, value = self.attr, self.op, self.value
        ops = {
            "=": lambda a: a == value,
            "!=": lambda a: a != value,
            "<": lambda a: a < value,
            "<=": lambda a: a <= value,
            ">": lambda a: a > value,
            ">=": lambda a: a >= value,
        }
        test = ops[op]
        return lambda cell: test(getattr(cell, attr))

    def bounds(self) -> Optional[tuple[Any, Any, bool, bool]]:
        """The value interval this term admits: ``(lo, hi, lo_open, hi_open)``.

        ``None`` bounds are unbounded sides.  Returns ``None`` (no interval)
        for ``!=`` — which excludes a point rather than bounding a range —
        and for non-numeric comparison values, where interval reasoning
        over min/max statistics is not meaningful.  The planner's
        chunk-skipping analysis (:mod:`repro.query.stats`) builds its
        per-attribute ranges from these.
        """
        if self.op == "!=" or isinstance(self.value, bool):
            return None
        if not isinstance(self.value, (int, float)):
            return None
        v = self.value
        return {
            "=": (v, v, False, False),
            "<": (None, v, False, True),
            "<=": (None, v, False, False),
            ">": (v, None, True, False),
            ">=": (v, None, False, False),
        }[self.op]


@dataclass(frozen=True)
class PredicateConjunction(Node):
    """An AND of per-dimension and/or per-attribute conditions."""

    terms: tuple[Node, ...]

    def __post_init__(self) -> None:
        for t in self.terms:
            if not isinstance(t, (DimPredicate, AttrPredicate)):
                raise PlanError(
                    "conjunction terms must be dimension or attribute "
                    f"predicates, got {type(t).__name__}"
                )

    @property
    def dim_terms(self) -> tuple[DimPredicate, ...]:
        return tuple(t for t in self.terms if isinstance(t, DimPredicate))

    @property
    def attr_terms(self) -> tuple[AttrPredicate, ...]:
        return tuple(t for t in self.terms if isinstance(t, AttrPredicate))

    def dims_condition(self) -> dict:
        """Compile dimension terms to Subsample's predicate mapping.

        Multiple conditions on one dimension intersect (the conjunction).
        """
        out: dict[str, Any] = {}
        for term in self.dim_terms:
            cond = term.to_condition()
            if term.dim not in out:
                out[term.dim] = cond
            else:
                out[term.dim] = _intersect(out[term.dim], cond)
        return out

    def attrs_callable(self):
        tests = [t.to_callable() for t in self.attr_terms]
        return lambda cell: all(t(cell) for t in tests)


def _intersect(a, b):
    """Intersect two DimCondition forms into a callable."""

    def admit(cond):
        if isinstance(cond, tuple):
            lo, hi = cond
            return lambda v: (lo is None or v >= lo) and (hi is None or v <= hi)
        if isinstance(cond, int):
            return lambda v: v == cond
        return cond

    fa, fb = admit(a), admit(b)
    return lambda v: fa(v) and fb(v)


@dataclass(frozen=True)
class OpNode(Node):
    """An operator application: the workhorse expression node.

    ``args`` are positional child expressions (arrays); ``options`` carries
    operator-specific parameters (predicates, group dims, factors, ...).
    """

    op: str
    args: tuple[Node, ...]
    options: tuple[tuple[str, Any], ...] = ()

    def children(self) -> tuple[Node, ...]:
        return self.args

    def option(self, key: str, default: Any = None) -> Any:
        for k, v in self.options:
            if k == key:
                return v
        return default

    def with_args(self, *args: Node) -> "OpNode":
        return OpNode(self.op, tuple(args), self.options)


@dataclass(frozen=True)
class DefineNode(Node):
    """``define [updatable] array Name (a = t, ...) (d1, d2)``."""

    name: str
    values: tuple[tuple[str, str], ...]
    dims: tuple[str, ...]
    updatable: bool = False


@dataclass(frozen=True)
class CreateNode(Node):
    """``create Instance as Type [b1, b2]`` (``*`` bounds are None)."""

    instance: str
    type_name: str
    bounds: tuple[Optional[int], ...]


@dataclass(frozen=True)
class SelectNode(Node):
    """``select <expr> [into Name]``."""

    expr: Node
    into: Optional[str] = None

    def children(self) -> tuple[Node, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class EnhanceNode(Node):
    """``enhance Array with Function``."""

    array: str
    function: str
