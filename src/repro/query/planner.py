"""Logical→physical planning: pushdown rewrites, chunk pruning, costing.

Section 2.2.1 observes that structural operators "do not necessarily have
to read the data values to produce a result, [so] they present opportunity
for optimization".  The planner exploits that opportunity in three layers:

1. **Logical rewrites** — subsample pushdown.  Content operators like
   Filter, Apply and Project preserve the dimension structure of their
   input, so ``subsample(filter(A, p), q) == filter(subsample(A, q), p)``
   and the right-hand side evaluates the (cheap, data-agnostic,
   bucket-prunable) Subsample *first*.  Experiment E2 measures the effect.

2. **Physical annotation** — every node of the rewritten tree gets a
   :class:`PhysicalOp` describing *how* it will run: the strategy chosen
   for distributed aggregates/joins, and — the chunk-skipping payoff — a
   :class:`ScanSpec` on scans feeding a filter, carrying the per-attribute
   value intervals the predicate implies (:mod:`repro.query.stats`).  The
   storage layer uses those intervals to skip buckets whose min/max
   statistics prove no cell can match, *before any I/O*.

3. **Estimation** — when a catalog is wired in (the executor provides
   one), scans are costed from real bucket statistics and operator times
   from the self-calibrating :class:`~repro.query.cost.CostModel`, so
   ``explain`` can print estimated vs. actual.

All three honour :class:`PlannerConfig`, threadable per query through
``SciDB.query/execute/explain(planner=...)``.  Rewrites land in
:attr:`PlannedQuery.rewrites`; each rewrite and each pruning opportunity
is also emitted to the flight recorder (``planner.rewrite`` /
``planner.prune``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .ast import (
    ArrayRef,
    Node,
    OpNode,
    PredicateConjunction,
    SelectNode,
)
from .stats import ArrayDescription, Interval, attr_intervals, intersect_ranges

__all__ = [
    "Planner",
    "PlannedQuery",
    "PlannerConfig",
    "PhysicalOp",
    "ScanSpec",
]

#: Content operators that commute with subsample (dimension-preserving).
_DIMENSION_PRESERVING = ("filter", "apply", "project")


@dataclass(frozen=True)
class PlannerConfig:
    """Per-query optimizer switches.

    Every flag degrades gracefully: disabling pruning forces full scans
    (slower, never wrong), disabling the cost model falls back to the
    executor's legacy try-native-then-gather dispatch, and disabling
    pushdown evaluates the tree exactly as written.
    """

    enable_pushdown: bool = True
    enable_pruning: bool = True
    enable_cost_model: bool = True


@dataclass(frozen=True)
class ScanSpec:
    """Value-range pruning directive for one scan.

    ``attr_ranges`` maps attribute names to the conservative
    :class:`~repro.query.stats.Interval` a downstream filter implies.
    The storage manager skips any bucket whose statistics prove the
    ranges unsatisfiable — emitting the bucket's occupied coordinates as
    NULL cells from its footprint, never touching the file.
    """

    array: str
    attr_ranges: dict[str, Interval] = field(default_factory=dict)

    def describe(self) -> str:
        inner = ", ".join(
            f"{a}∈{iv}" for a, iv in sorted(self.attr_ranges.items())
        )
        return "{" + inner + "}"


@dataclass
class PhysicalOp:
    """How one logical node will execute, plus the planner's estimates.

    ``est_*`` fields are ``None`` when no catalog/statistics were
    available.  :meth:`render` intentionally omits ``est_ms`` (timing
    estimates drift with the cost model's calibration) so golden-plan
    tests stay stable.
    """

    op: str
    label: str = ""
    strategy: str = ""
    scan: Optional[ScanSpec] = None
    est_cells: Optional[int] = None
    est_chunks: Optional[int] = None
    est_chunks_pruned: Optional[int] = None
    est_ms: Optional[float] = None
    children: tuple["PhysicalOp", ...] = ()

    def render(self, indent: int = 0) -> str:
        parts = [self.op]
        if self.label:
            parts.append(self.label)
        if self.strategy:
            parts.append(f"[{self.strategy}]")
        if self.scan is not None and self.scan.attr_ranges:
            parts.append(f"prune{self.scan.describe()}")
        if self.est_cells is not None:
            parts.append(f"~cells={self.est_cells}")
        if self.est_chunks is not None:
            chunk = f"~chunks={self.est_chunks}"
            if self.est_chunks_pruned:
                chunk += f"(-{self.est_chunks_pruned} pruned)"
            parts.append(chunk)
        lines = ["  " * indent + " ".join(parts)]
        lines.extend(c.render(indent + 1) for c in self.children)
        return "\n".join(lines)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


@dataclass
class PlannedQuery:
    """An optimized parse tree, its rewrites, and the physical plan."""

    node: Node
    rewrites: list[str] = field(default_factory=list)
    physical: Optional[PhysicalOp] = None
    config: PlannerConfig = field(default_factory=PlannerConfig)
    _phys_index: dict[int, PhysicalOp] = field(default_factory=dict)

    def physical_for(self, node: Node) -> Optional[PhysicalOp]:
        """The physical annotation for one node of :attr:`node`'s tree
        (identity-keyed — parse-tree nodes are shared, not copied)."""
        return self._phys_index.get(id(node))

    def render_physical(self) -> str:
        return self.physical.render() if self.physical is not None else ""


#: Catalog callback: array name -> ArrayDescription (or None if unknown).
Catalog = Callable[[str], Optional[ArrayDescription]]


class Planner:
    """Logical rewriter + physical planner over parse trees.

    ``catalog`` and ``cost_model`` are optional — without them the
    planner still rewrites and attaches pruning specs, it just cannot
    estimate sizes or choose cost-based strategies.  The executor wires
    both in when it owns the planner.
    """

    def __init__(
        self,
        enable_pushdown: bool = True,
        enable_pruning: bool = True,
        config: Optional[PlannerConfig] = None,
        catalog: Optional[Catalog] = None,
        cost_model: Optional[Any] = None,
    ) -> None:
        if config is None:
            config = PlannerConfig(
                enable_pushdown=enable_pushdown,
                enable_pruning=enable_pruning,
            )
        self.config = config
        self.catalog = catalog
        self.cost_model = cost_model

    # Kept as a property so legacy callers (and tests) reading
    # ``planner.enable_pushdown`` keep working after the config refactor.
    @property
    def enable_pushdown(self) -> bool:
        return self.config.enable_pushdown

    def plan(
        self, node: Node, config: Optional[PlannerConfig] = None
    ) -> PlannedQuery:
        cfg = config or self.config
        rewrites: list[str] = []
        planned = self._rewrite(node, rewrites, cfg)
        result = PlannedQuery(planned, rewrites, config=cfg)
        self._annotate_physical(result)
        self._emit_events(result)
        return result

    # -- logical rewrites -------------------------------------------------

    def _rewrite(
        self, node: Node, rewrites: list[str], cfg: PlannerConfig
    ) -> Node:
        if isinstance(node, SelectNode):
            return SelectNode(
                self._rewrite(node.expr, rewrites, cfg), into=node.into
            )
        if not isinstance(node, OpNode):
            return node
        # Rewrite children first (bottom-up).
        new_args = tuple(self._rewrite(a, rewrites, cfg) for a in node.args)
        node = node.with_args(*new_args)
        if not cfg.enable_pushdown:
            return node
        return self._push_subsample(node, rewrites)

    def _push_subsample(self, node: OpNode, rewrites: list[str]) -> OpNode:
        """subsample(content_op(A)) -> content_op(subsample(A))."""
        while (
            node.op == "subsample"
            and node.args
            and isinstance(node.args[0], OpNode)
            and node.args[0].op in _DIMENSION_PRESERVING
        ):
            inner = node.args[0]
            rewrites.append(
                f"pushed subsample below {inner.op} "
                "(structural op evaluated first)"
            )
            pushed_subsample = OpNode(
                "subsample", (inner.args[0],), node.options
            )
            node = OpNode(
                inner.op,
                (pushed_subsample,) + inner.args[1:],
                inner.options,
            )
            # The new child may itself expose another pushdown; loop via
            # re-examining the (now content-op-rooted) node's first arg.
            first = node.args[0]
            if isinstance(first, OpNode):
                rewritten_child = self._push_subsample(first, rewrites)
                node = node.with_args(rewritten_child, *node.args[1:])
            break
        return node

    # -- physical annotation -----------------------------------------------

    def _annotate_physical(self, planned: PlannedQuery) -> None:
        root = planned.node
        if isinstance(root, SelectNode):
            root = root.expr
        if not isinstance(root, (OpNode, ArrayRef)):
            return  # DDL and literals have no physical plan
        phys = self._annotate(root, {}, planned)
        planned.physical = phys
        if isinstance(planned.node, SelectNode):
            planned._phys_index[id(planned.node)] = phys

    def _annotate(
        self,
        node: Node,
        inherited: dict[str, Interval],
        planned: PlannedQuery,
    ) -> PhysicalOp:
        cfg = planned.config
        if isinstance(node, ArrayRef):
            phys = self._annotate_scan(node, inherited, cfg)
            planned._phys_index[id(node)] = phys
            return phys
        if not isinstance(node, OpNode):
            return PhysicalOp(op=type(node).__name__.lower())

        op = node.op
        own_ranges: dict[str, Interval] = {}
        if op == "filter" and cfg.enable_pruning:
            pred = node.option("predicate")
            if isinstance(pred, PredicateConjunction):
                own_ranges = attr_intervals(pred)
        if op == "filter":
            child_ranges = intersect_ranges(inherited, own_ranges)
        elif op == "subsample":
            # Subsample is value-preserving: whatever value ranges an
            # ancestor filter demands still apply below the window cut.
            child_ranges = inherited
        else:
            child_ranges = {}

        children = tuple(
            self._annotate(a, child_ranges, planned)
            for a in node.args
            if isinstance(a, (OpNode, ArrayRef, SelectNode))
        )

        phys = PhysicalOp(op=op, children=children)

        # Attach the pruning spec to the scan-consuming node: the executor
        # dispatches reads from here, inside this operator's tracing span.
        if (
            cfg.enable_pruning
            and child_ranges
            and op in ("filter", "subsample")
            and node.args
            and isinstance(node.args[0], ArrayRef)
        ):
            phys.scan = ScanSpec(node.args[0].name, dict(child_ranges))

        self._choose_strategy(node, phys, cfg)
        self._estimate(node, phys, cfg)
        planned._phys_index[id(node)] = phys
        return phys

    def _annotate_scan(
        self, ref: ArrayRef, inherited: dict[str, Interval], cfg: PlannerConfig
    ) -> PhysicalOp:
        phys = PhysicalOp(op="scan", label=ref.name)
        if cfg.enable_pruning and inherited:
            phys.scan = ScanSpec(ref.name, dict(inherited))
        desc = self._describe(ref.name)
        if desc is None:
            return phys
        if desc.stats is not None and phys.scan is not None:
            cells, chunks, pruned = desc.stats.estimate_match(
                phys.scan.attr_ranges
            )
            # Merged stats for a replicated array count every copy; one
            # exactly-once read touches 1/k of that.
            k = max(1, desc.replication)
            phys.est_cells, phys.est_chunks = cells // k, -(-chunks // k)
            phys.est_chunks_pruned = pruned // k
        else:
            phys.est_cells = desc.cells
            phys.est_chunks = desc.chunks
        if self.cost_model is not None and phys.est_cells is not None:
            phys.est_ms = self.cost_model.estimate_ms("scan", phys.est_cells)
        return phys

    def _choose_strategy(
        self, node: OpNode, phys: PhysicalOp, cfg: PlannerConfig
    ) -> None:
        if not cfg.enable_cost_model or self.cost_model is None:
            return
        if node.op == "aggregate":
            phys.strategy = self.cost_model.aggregate_strategy(
                node.option("agg")
            )
        elif node.op == "sjoin":
            descs = [
                self._describe(a.name) if isinstance(a, ArrayRef) else None
                for a in node.args[:2]
            ]
            left = descs[0] if descs else None
            right = descs[1] if len(descs) > 1 else None
            phys.strategy = self.cost_model.sjoin_strategy(left, right)

    def _estimate(
        self, node: OpNode, phys: PhysicalOp, cfg: PlannerConfig
    ) -> None:
        child_cells = [
            c.est_cells for c in phys.children if c.est_cells is not None
        ]
        if not child_cells:
            return
        # filter emits NULL (not EMPTY) for failing cells, subsample and
        # content ops are at most input-sized: the child estimate is the
        # honest upper bound for cells handled here.
        phys.est_cells = max(child_cells)
        # Pruning estimates surface on the consumer so explain can show
        # them where the chunks_read counter lands.
        if phys.scan is not None:
            leaf = phys.children[0] if phys.children else None
            if leaf is not None:
                phys.est_chunks = leaf.est_chunks
                phys.est_chunks_pruned = leaf.est_chunks_pruned
        if self.cost_model is not None and cfg.enable_cost_model:
            phys.est_ms = self.cost_model.estimate_ms(
                node.op, phys.est_cells
            )

    def _describe(self, name: str) -> Optional[ArrayDescription]:
        if self.catalog is None:
            return None
        try:
            return self.catalog(name)
        except Exception:
            return None  # a stats failure must never fail the query

    # -- flight-recorder events ---------------------------------------------

    def _emit_events(self, planned: PlannedQuery) -> None:
        try:
            from ..obs.recorder import emit  # lazy: obs imports query.ast
        except Exception:  # pragma: no cover - import cycles during boot
            return
        for rw in planned.rewrites:
            emit("planner.rewrite", detail=rw)
        if planned.physical is None:
            return
        for phys in planned.physical.walk():
            if phys.scan is not None and phys.op != "scan":
                emit(
                    "planner.prune",
                    array=phys.scan.array,
                    detail=phys.scan.describe(),
                    est_chunks=phys.est_chunks,
                    est_chunks_pruned=phys.est_chunks_pruned,
                )
