"""Structural-operator pushdown over parse trees.

Section 2.2.1 observes that structural operators "do not necessarily have
to read the data values to produce a result, [so] they present opportunity
for optimization".  The planner exploits the cleanest instance of that
opportunity: **subsample pushdown**.  Content operators like Filter, Apply
and Project preserve the dimension structure of their input, so

    subsample(filter(A, p), q)  ==  filter(subsample(A, q), p)

and the right-hand side evaluates the (cheap, data-agnostic, bucket-
prunable) Subsample *first*, then runs the expensive per-cell predicate on
the smaller array.  Experiment E2 measures the effect.

The planner rewrites bottom-up until a fixed point and records each
rewrite in :attr:`PlannedQuery.rewrites` so tests and benchmarks can
assert exactly what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ast import Node, OpNode, SelectNode

__all__ = ["Planner", "PlannedQuery"]

#: Content operators that commute with subsample (dimension-preserving).
_DIMENSION_PRESERVING = ("filter", "apply", "project")


@dataclass
class PlannedQuery:
    """An optimized parse tree plus the rewrites that produced it."""

    node: Node
    rewrites: list[str] = field(default_factory=list)


class Planner:
    """Rule-based logical optimizer over parse trees."""

    def __init__(self, enable_pushdown: bool = True) -> None:
        self.enable_pushdown = enable_pushdown

    def plan(self, node: Node) -> PlannedQuery:
        rewrites: list[str] = []
        planned = self._rewrite(node, rewrites)
        return PlannedQuery(planned, rewrites)

    def _rewrite(self, node: Node, rewrites: list[str]) -> Node:
        if isinstance(node, SelectNode):
            return SelectNode(self._rewrite(node.expr, rewrites), into=node.into)
        if not isinstance(node, OpNode):
            return node
        # Rewrite children first (bottom-up).
        new_args = tuple(self._rewrite(a, rewrites) for a in node.args)
        node = node.with_args(*new_args)
        if not self.enable_pushdown:
            return node
        pushed = self._push_subsample(node, rewrites)
        return pushed

    def _push_subsample(self, node: OpNode, rewrites: list[str]) -> OpNode:
        """subsample(content_op(A)) -> content_op(subsample(A))."""
        while (
            node.op == "subsample"
            and node.args
            and isinstance(node.args[0], OpNode)
            and node.args[0].op in _DIMENSION_PRESERVING
        ):
            inner = node.args[0]
            rewrites.append(
                f"pushed subsample below {inner.op} "
                "(structural op evaluated first)"
            )
            pushed_subsample = OpNode(
                "subsample", (inner.args[0],), node.options
            )
            node = OpNode(
                inner.op,
                (pushed_subsample,) + inner.args[1:],
                inner.options,
            )
            # The new child may itself expose another pushdown; loop via
            # re-examining the (now content-op-rooted) node's first arg.
            first = node.args[0]
            if isinstance(first, OpNode):
                rewritten_child = self._push_subsample(first, rewrites)
                node = node.with_args(rewritten_child, *node.args[1:])
            break
        return node
