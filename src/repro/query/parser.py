"""A textual AQL-style binding: SciDB's syntax → parse trees (Section 2.4).

The grammar covers the statements the paper itself writes out:

.. code-block:: none

    define array Remote (s1 = float, s2 = float, s3 = float) (I, J)
    define updatable array Remote_2 (s1 = float) (I, J)
    create My_remote as Remote [1024, 1024]
    create My_remote_2 as Remote [*, *]
    enhance My_remote with Scale10
    select subsample(My_remote, even(I) and J <= 3)
    select filter(My_remote, s1 > 3.5) into Bright
    select aggregate(H, {Y}, sum(*))
    select sjoin(A, B, A.x = B.x)
    select cjoin(A, B, A.val = B.val)
    select regrid(My_remote, [2, 2], avg(s1))
    select reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])
    select project(My_remote, s1, s3)
    select transpose(My_remote, [J, I])

Statements parse to the :mod:`repro.query.ast` node types; nothing here
executes anything.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from ..core.errors import ParseError
from .ast import (
    ArrayRef,
    AttrPredicate,
    CreateNode,
    DefineNode,
    DimPredicate,
    EnhanceNode,
    Node,
    OpNode,
    PredicateConjunction,
    SelectNode,
)

__all__ = ["parse", "parse_statement", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<symbol><=|>=|!=|[()\[\]{},=<>*:.])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "define", "updatable", "array", "create", "as", "select", "into",
    "enhance", "with", "and",
}


def tokenize(text: str) -> list[tuple[str, str]]:
    """Lex *text* into (kind, value) tokens; kinds: number, name, keyword,
    symbol."""
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        value = m.group()
        kind = m.lastgroup
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(("keyword", value.lower()))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------------

    def peek(self) -> Optional[tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of statement")
        self.pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        tok = self.next()
        if tok[0] != kind or (value is not None and tok[1] != value):
            want = f"{kind} {value!r}" if value else kind
            raise ParseError(f"expected {want}, got {tok[1]!r}")
        return tok[1]

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        if tok is not None and tok[0] == kind and (value is None or tok[1] == value):
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- statements ------------------------------------------------------------------

    def statement(self) -> Node:
        tok = self.peek()
        if tok is None:
            raise ParseError("empty statement")
        if tok == ("keyword", "define"):
            return self.define()
        if tok == ("keyword", "create"):
            return self.create()
        if tok == ("keyword", "select"):
            return self.select()
        if tok == ("keyword", "enhance"):
            return self.enhance()
        raise ParseError(f"unknown statement start {tok[1]!r}")

    def define(self) -> DefineNode:
        self.expect("keyword", "define")
        updatable = self.accept("keyword", "updatable")
        self.expect("keyword", "array")
        name = self.expect("name")
        self.expect("symbol", "(")
        values = []
        while True:
            attr = self.expect("name")
            self.expect("symbol", "=")
            type_words = [self.expect("name")]
            # multi-word types: "uncertain float"
            while self.peek() and self.peek()[0] == "name" and type_words[0] == "uncertain":
                type_words.append(self.next()[1])
            values.append((attr, " ".join(type_words)))
            if not self.accept("symbol", ","):
                break
        self.expect("symbol", ")")
        self.expect("symbol", "(")
        dims = [self.expect("name")]
        while self.accept("symbol", ","):
            dims.append(self.expect("name"))
        self.expect("symbol", ")")
        return DefineNode(name, tuple(values), tuple(dims), updatable)

    def create(self) -> CreateNode:
        self.expect("keyword", "create")
        instance = self.expect("name")
        self.expect("keyword", "as")
        type_name = self.expect("name")
        self.expect("symbol", "[")
        bounds: list[Optional[int]] = [self._bound()]
        while self.accept("symbol", ","):
            bounds.append(self._bound())
        self.expect("symbol", "]")
        return CreateNode(instance, type_name, tuple(bounds))

    def _bound(self) -> Optional[int]:
        if self.accept("symbol", "*"):
            return None
        return int(self.expect("number"))

    def enhance(self) -> EnhanceNode:
        self.expect("keyword", "enhance")
        array = self.expect("name")
        self.expect("keyword", "with")
        fn = self.expect("name")
        return EnhanceNode(array, fn)

    def select(self) -> SelectNode:
        self.expect("keyword", "select")
        expr = self.expr()
        into = None
        if self.accept("keyword", "into"):
            into = self.expect("name")
        return SelectNode(expr, into=into)

    # -- expressions -------------------------------------------------------------------

    def expr(self) -> Node:
        name = self.expect("name")
        if not self.accept("symbol", "("):
            return ArrayRef(name)
        op = name.lower()
        method = getattr(self, f"_op_{op}", None)
        if method is None:
            raise ParseError(f"unknown operator {name!r}")
        node = method()
        self.expect("symbol", ")")
        return node

    # Each _op_* parses the operator's argument list (after the open paren).

    def _op_subsample(self) -> OpNode:
        source = self.expr()
        self.expect("symbol", ",")
        pred = self._dim_conjunction()
        return OpNode("subsample", (source,), (("predicate", pred),))

    def _op_filter(self) -> OpNode:
        source = self.expr()
        self.expect("symbol", ",")
        pred = self._attr_conjunction()
        return OpNode("filter", (source,), (("predicate", pred),))

    def _op_aggregate(self) -> OpNode:
        source = self.expr()
        self.expect("symbol", ",")
        self.expect("symbol", "{")
        dims = [self.expect("name")]
        while self.accept("symbol", ","):
            dims.append(self.expect("name"))
        self.expect("symbol", "}")
        self.expect("symbol", ",")
        agg, attr = self._agg_call()
        return OpNode(
            "aggregate",
            (source,),
            (("group_dims", tuple(dims)), ("agg", agg), ("attr", attr)),
        )

    def _op_regrid(self) -> OpNode:
        source = self.expr()
        self.expect("symbol", ",")
        self.expect("symbol", "[")
        factors = [int(self.expect("number"))]
        while self.accept("symbol", ","):
            factors.append(int(self.expect("number")))
        self.expect("symbol", "]")
        self.expect("symbol", ",")
        agg, attr = self._agg_call()
        return OpNode(
            "regrid",
            (source,),
            (("factors", tuple(factors)), ("agg", agg), ("attr", attr)),
        )

    def _agg_call(self) -> tuple[str, Optional[str]]:
        agg = self.expect("name")
        self.expect("symbol", "(")
        if self.accept("symbol", "*"):
            attr = None
        else:
            attr = self.expect("name")
        self.expect("symbol", ")")
        return agg, attr

    def _op_sjoin(self) -> OpNode:
        left = self.expr()
        self.expect("symbol", ",")
        right = self.expr()
        self.expect("symbol", ",")
        pairs = [self._qualified_equality()]
        while self.accept("keyword", "and"):
            pairs.append(self._qualified_equality())
        on = tuple((l[1], r[1]) for l, r in pairs)
        return OpNode("sjoin", (left, right), (("on", on),))

    def _op_cjoin(self) -> OpNode:
        left = self.expr()
        self.expect("symbol", ",")
        right = self.expr()
        self.expect("symbol", ",")
        pairs = [self._qualified_equality()]
        while self.accept("keyword", "and"):
            pairs.append(self._qualified_equality())
        attrs = tuple((l[1], r[1]) for l, r in pairs)
        return OpNode("cjoin", (left, right), (("attr_pairs", attrs),))

    def _qualified_equality(self) -> tuple[tuple[str, str], tuple[str, str]]:
        """Parse ``A.x = B.y`` into ((A, x), (B, y))."""
        la = self.expect("name")
        self.expect("symbol", ".")
        lb = self.expect("name")
        self.expect("symbol", "=")
        ra = self.expect("name")
        self.expect("symbol", ".")
        rb = self.expect("name")
        return (la, lb), (ra, rb)

    def _op_apply(self) -> OpNode:
        """``apply(A, FnName(attr1, attr2))`` — run a registered UDF over
        each cell's named components; the UDF's output signature defines
        the result record (Sections 2.1 + 2.3 meeting Section 2.4)."""
        source = self.expr()
        self.expect("symbol", ",")
        fn_name = self.expect("name")
        self.expect("symbol", "(")
        args = [self.expect("name")]
        while self.accept("symbol", ","):
            args.append(self.expect("name"))
        self.expect("symbol", ")")
        return OpNode(
            "apply",
            (source,),
            (("udf", fn_name), ("args", tuple(args))),
        )

    def _op_project(self) -> OpNode:
        source = self.expr()
        attrs = []
        while self.accept("symbol", ","):
            attrs.append(self.expect("name"))
        if not attrs:
            raise ParseError("project needs at least one attribute")
        return OpNode("project", (source,), (("attrs", tuple(attrs)),))

    def _op_transpose(self) -> OpNode:
        source = self.expr()
        self.expect("symbol", ",")
        self.expect("symbol", "[")
        order = [self.expect("name")]
        while self.accept("symbol", ","):
            order.append(self.expect("name"))
        self.expect("symbol", "]")
        return OpNode("transpose", (source,), (("order", tuple(order)),))

    def _op_reshape(self) -> OpNode:
        source = self.expr()
        self.expect("symbol", ",")
        self.expect("symbol", "[")
        order = [self.expect("name")]
        while self.accept("symbol", ","):
            order.append(self.expect("name"))
        self.expect("symbol", "]")
        self.expect("symbol", ",")
        self.expect("symbol", "[")
        new_dims = [self._dim_range()]
        while self.accept("symbol", ","):
            new_dims.append(self._dim_range())
        self.expect("symbol", "]")
        return OpNode(
            "reshape",
            (source,),
            (("order", tuple(order)), ("new_dims", tuple(new_dims))),
        )

    def _dim_range(self) -> tuple[str, int]:
        """Parse ``U = 1:8`` into ("U", 8)."""
        name = self.expect("name")
        self.expect("symbol", "=")
        lo = int(self.expect("number"))
        self.expect("symbol", ":")
        hi = int(self.expect("number"))
        if lo != 1:
            raise ParseError("dimension ranges start at 1 in this model")
        return name, hi

    # -- predicates --------------------------------------------------------------------

    def _dim_conjunction(self) -> PredicateConjunction:
        terms = [self._dim_term()]
        while self.accept("keyword", "and"):
            terms.append(self._dim_term())
        return PredicateConjunction(tuple(terms))

    def _dim_term(self) -> DimPredicate:
        name = self.expect("name")
        if name.lower() in ("even", "odd"):
            self.expect("symbol", "(")
            dim = self.expect("name")
            self.expect("symbol", ")")
            return DimPredicate(dim, name.lower())
        op = self.expect("symbol")
        tok = self.next()
        if tok[0] != "number":
            # 'X = Y' style cross-dimension terms are exactly what the
            # paper outlaws for Subsample.
            raise ParseError(
                "subsample conditions compare a dimension to a constant; "
                f"got {tok[1]!r} (cross-dimension predicates are not legal)"
            )
        return DimPredicate(name, op, int(tok[1]))

    def _attr_conjunction(self) -> PredicateConjunction:
        terms = [self._attr_term()]
        while self.accept("keyword", "and"):
            terms.append(self._attr_term())
        return PredicateConjunction(tuple(terms))

    def _attr_term(self) -> AttrPredicate:
        name = self.expect("name")
        op = self.expect("symbol")
        value_tok = self.next()
        if value_tok[0] == "number":
            text = value_tok[1]
            value: Any = float(text) if "." in text else int(text)
        else:
            value = value_tok[1]
        return AttrPredicate(name, op, value)


def parse_statement(text: str) -> Node:
    """Parse one statement; raises :class:`ParseError` on trailing input."""
    parser = _Parser(tokenize(text))
    node = parser.statement()
    if not parser.at_end():
        raise ParseError(
            f"trailing input after statement: {parser.peek()[1]!r}"
        )
    return node


def parse(text: str) -> list[Node]:
    """Parse a script: one statement per non-empty, non-comment line."""
    nodes = []
    for line in text.splitlines():
        line = line.split("--", 1)[0].strip()
        if line:
            nodes.append(parse_statement(line))
    return nodes
