"""Streaming bulk loader (Section 2.8).

"Most data will come into SciDB through a streaming bulk loader.  We assume
that the input stream is ordered by some dominant dimension — often time.
SciDB will divide the load stream into site-specific substreams.  Each one
will appear in the main memory of the associated node."

:class:`BulkLoader` consumes an iterator of :class:`LoadRecord` (coords +
values), routes each record to its site's substream through a partitioning
function, and feeds each substream into that site's
:class:`~repro.storage.manager.PersistentArray` (where buffering/spilling
happens).  Used standalone (single site) or by the grid layer with a real
partitioning scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Optional

from ..core.errors import StorageError
from .manager import PersistentArray

__all__ = ["LoadRecord", "BulkLoader"]

Coords = tuple[int, ...]


@dataclass(frozen=True)
class LoadRecord:
    """One cell arriving on the load stream."""

    coords: Coords
    values: Optional[tuple]  # None loads an explicit NULL cell


class BulkLoader:
    """Routes a load stream into per-site substreams.

    Parameters
    ----------
    sites:
        Mapping from site id to that site's persistent array.
    route:
        ``route(coords) -> site id``; with a single site it may be omitted.
    dominant_dimension:
        Optional index of the stream's ordering dimension.  When set, the
        loader verifies the stream is in fact non-decreasing on it (the
        paper's stated assumption) and raises on violations.
    """

    def __init__(
        self,
        sites: Mapping[object, PersistentArray],
        route: Optional[Callable[[Coords], object]] = None,
        dominant_dimension: Optional[int] = None,
    ) -> None:
        if not sites:
            raise StorageError("bulk loader needs at least one site")
        if route is None:
            if len(sites) != 1:
                raise StorageError("multiple sites require a routing function")
            only = next(iter(sites))
            route = lambda coords: only  # noqa: E731
        self.sites = dict(sites)
        self.route = route
        self.dominant_dimension = dominant_dimension
        self.records_loaded = 0
        self.per_site_counts: dict[object, int] = {k: 0 for k in self.sites}

    def load(self, stream: Iterable[LoadRecord]) -> int:
        """Consume *stream*; returns the number of records loaded."""
        last_dominant: Optional[int] = None
        for record in stream:
            if self.dominant_dimension is not None:
                value = record.coords[self.dominant_dimension]
                if last_dominant is not None and value < last_dominant:
                    raise StorageError(
                        "load stream is not ordered by the dominant "
                        f"dimension: {value} after {last_dominant}"
                    )
                last_dominant = value
            site = self.route(record.coords)
            try:
                target = self.sites[site]
            except KeyError:
                raise StorageError(f"router returned unknown site {site!r}") from None
            target.append(record.coords, record.values)
            self.per_site_counts[site] += 1
            self.records_loaded += 1
        return self.records_loaded

    def finish(self) -> None:
        """Flush every site's buffer (end of stream)."""
        for site in self.sites.values():
            site.flush()

    def substream_skew(self) -> float:
        """max/mean records per site — the load-balance figure of merit."""
        counts = list(self.per_site_counts.values())
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        return max(counts) / mean
