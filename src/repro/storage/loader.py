"""Streaming bulk loader with checkpointed, resumable batches (Section 2.8).

"Most data will come into SciDB through a streaming bulk loader.  We assume
that the input stream is ordered by some dominant dimension — often time.
SciDB will divide the load stream into site-specific substreams.  Each one
will appear in the main memory of the associated node."

:class:`BulkLoader` consumes an iterator of :class:`LoadRecord` (coords +
values), routes each record to its site's substream through a partitioning
function, and feeds each substream into that site's
:class:`~repro.storage.manager.PersistentArray` (where buffering/spilling
happens).  Used standalone (single site) or by the grid layer with a real
partitioning scheme.

At LSST scale the load stream is too long to restart and too dirty to
trust, so the loader layers three robustness services on the routing core:

* **Checkpointing** — with ``batch_size > 0`` the stream is divided into
  numbered batches; each batch commits atomically per site (spill + an
  ``os.replace``'d cursor file, see
  :meth:`~repro.storage.manager.PersistentArray.commit_load_batch`).  A
  crash mid-load resumes by re-driving the same stream under the same
  ``load_epoch``: every batch at or below a site's cursor is skipped, and
  a batch that died between spill and cursor-commit replays idempotently
  (cells are keyed by coordinates — dedup by ``(load_epoch, batch_seq)``
  guarantees no duplicates).
* **Quarantine** — in ``tolerant`` mode malformed records (bad arity,
  coords outside the shape, type errors, dominant-dimension regressions)
  are routed to a :class:`~repro.storage.quarantine.QuarantineStore` with
  the reason and source offset instead of aborting the stream.
* **Bounded retries** — a site append that raises
  :class:`~repro.core.errors.TransientIOError` (an injected or real
  intermittent I/O fault) is retried with deterministic exponential
  backoff, charged to the :class:`LoadReport`; only exhaustion raises
  :class:`~repro.core.errors.IngestError`.

Everything the load did — loaded / quarantined / skipped / retried counts,
batch accounting, substream skew, simulated backoff — is summarised in the
:class:`LoadReport` returned by :meth:`BulkLoader.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from ..core.errors import (
    IngestError,
    LoadInterrupted,
    StorageError,
    TransientIOError,
    TypeMismatchError,
)
from ..core.datatypes import ScalarType
from ..obs import tracing
from ..obs.metrics import get_registry
from ..obs.recorder import emit as _flight_emit
from .quarantine import QuarantineStore

__all__ = ["LoadRecord", "LoadReport", "BulkLoader"]

Coords = tuple[int, ...]


@dataclass(frozen=True)
class LoadRecord:
    """One cell arriving on the load stream.

    ``offset`` optionally carries the record's position in its source
    (file line, flat index); the loader falls back to the stream ordinal
    when it is absent, so quarantined records are always addressable.
    """

    coords: Coords
    values: Optional[tuple]  # None loads an explicit NULL cell
    offset: Optional[int] = None


@dataclass
class LoadReport:
    """What one (possibly resumed) bulk load actually did."""

    epoch: int = 0
    records_seen: int = 0  #: records consumed from the stream
    records_loaded: int = 0  #: records stored (this run)
    records_quarantined: int = 0  #: records routed to the dead-letter store
    records_skipped: int = 0  #: replayed records below a site checkpoint
    records_retried: int = 0  #: transient-I/O retry attempts charged
    batches_committed: int = 0  #: per-site batch commits performed
    batches_replayed: int = 0  #: per-site batches skipped via the cursor
    backoff_ms: float = 0.0  #: simulated retry backoff charged
    store_latency_ms: float = 0.0  #: simulated slow-site latency charged
    skew: float = 0.0  #: max/mean records per site (load balance)
    per_site: dict = field(default_factory=dict)
    quarantine: Optional[QuarantineStore] = None

    @property
    def quarantine_rate(self) -> float:
        if self.records_seen == 0:
            return 0.0
        return self.records_quarantined / self.records_seen

    def summary(self) -> dict:
        return {
            "epoch": self.epoch,
            "seen": self.records_seen,
            "loaded": self.records_loaded,
            "quarantined": self.records_quarantined,
            "skipped": self.records_skipped,
            "retried": self.records_retried,
            "batches_committed": self.batches_committed,
            "batches_replayed": self.batches_replayed,
            "backoff_ms": self.backoff_ms,
            "skew": self.skew,
        }


class BulkLoader:
    """Routes a load stream into per-site substreams.

    Parameters
    ----------
    sites:
        Mapping from site id to that site's persistent array (or any sink
        exposing ``schema`` / ``append`` / ``flush`` and, for
        checkpointing, ``load_cursor`` / ``commit_load_batch``).
    route:
        ``route(coords) -> site id``; with a single site it may be omitted.
    dominant_dimension:
        Optional index of the stream's ordering dimension.  When set, the
        loader verifies the stream is in fact non-decreasing on it (the
        paper's stated assumption) — across *all* ``load()`` calls on this
        loader — and raises on violations (quarantines them in tolerant
        mode).
    batch_size:
        ``> 0`` enables checkpointed loading: the stream is cut into
        batches of this many consumed records, each committed atomically
        per site.  ``0`` (default) keeps the legacy streaming behaviour.
    load_epoch:
        Identity of this logical load.  A resume MUST reuse the epoch of
        the interrupted load (to dedup replayed batches); a fresh load of
        new data into the same arrays must use a new epoch.
    tolerant:
        Quarantine malformed records instead of raising.
    quarantine:
        Dead-letter store for tolerant mode (one is created on demand).
    max_retries / backoff_base_ms / backoff_max_ms:
        Bounded-retry policy for :class:`TransientIOError` from a site;
        the exponential backoff is capped at ``backoff_max_ms``.
    on_record:
        Optional hook invoked once per consumed record — the fault
        injector's crash clock
        (:meth:`~repro.cluster.faults.FaultInjector.on_load_record`).

    The loader is a context manager: ``finish()`` (flush every site
    buffer) runs on *both* success and error paths, so an exception
    mid-stream no longer strands buffered cells with no cleanup hook.
    """

    def __init__(
        self,
        sites: Mapping[object, "object"],
        route: Optional[Callable[[Coords], object]] = None,
        dominant_dimension: Optional[int] = None,
        batch_size: int = 0,
        load_epoch: int = 0,
        tolerant: bool = False,
        quarantine: Optional[QuarantineStore] = None,
        max_retries: int = 3,
        backoff_base_ms: float = 1.0,
        backoff_max_ms: float = 64.0,
        on_record: Optional[Callable[[], None]] = None,
    ) -> None:
        if not sites:
            raise StorageError("bulk loader needs at least one site")
        if batch_size < 0:
            raise StorageError("batch_size must be >= 0")
        if route is None:
            if len(sites) != 1:
                raise StorageError("multiple sites require a routing function")
            only = next(iter(sites))
            route = lambda coords: only  # noqa: E731
        self.sites = dict(sites)
        self.route = route
        self.dominant_dimension = dominant_dimension
        self.batch_size = batch_size
        self.load_epoch = load_epoch
        self.tolerant = tolerant
        self.quarantine = quarantine if quarantine is not None else (
            QuarantineStore() if tolerant else None
        )
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_max_ms = backoff_max_ms
        self.on_record = on_record
        self.schema = getattr(next(iter(self.sites.values())), "schema", None)
        self.records_loaded = 0
        self.per_site_counts: dict[object, int] = {k: 0 for k in self.sites}
        self.stats = LoadReport(epoch=load_epoch, quarantine=self.quarantine)
        # Stream-order state persists across load() calls on one loader —
        # the dominant-dimension contract is a property of the whole
        # stream, not of one call.
        self._last_dominant: Optional[int] = None
        self._offset = 0  #: next stream ordinal (source offset fallback)
        self._batch_seq = 0  #: next batch number (deterministic replay key)

    # -- context management ------------------------------------------------------

    def __enter__(self) -> "BulkLoader":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.finish()
        except Exception:
            if exc_type is None:
                raise
            # A failing flush must not mask the in-flight error (e.g. a
            # crashed node): the original exception propagates.
        return False

    # -- validation ---------------------------------------------------------------

    def _check(self, record: LoadRecord) -> "tuple[str, str] | None":
        """Validate one record; returns ``(reason, detail)`` on rejection."""
        schema = self.schema
        coords = record.coords
        if schema is not None:
            if len(coords) != schema.ndim:
                return (
                    "bad_arity",
                    f"{len(coords)} coords for a {schema.ndim}-D array",
                )
            for c, dim in zip(coords, schema.dimensions):
                if not isinstance(c, int):
                    try:
                        c = int(c)
                    except (TypeError, ValueError):
                        return ("bad_coords", f"non-integer coordinate {c!r}")
                if not dim.contains(c):
                    return (
                        "out_of_bounds",
                        f"{dim.name}={c} outside {dim}",
                    )
            if record.values is not None:
                if len(record.values) != len(schema.attributes):
                    return (
                        "bad_arity",
                        f"{len(record.values)} values for "
                        f"{len(schema.attributes)} attributes",
                    )
                for attr, v in zip(schema.attributes, record.values):
                    if isinstance(attr.type, ScalarType):
                        try:
                            attr.type.validate(v)
                        except TypeMismatchError as exc:
                            return ("type_error", str(exc))
        if self.dominant_dimension is not None:
            value = record.coords[self.dominant_dimension]
            if self._last_dominant is not None and value < self._last_dominant:
                return (
                    "dominant_regression",
                    f"{value} after {self._last_dominant} on the dominant "
                    "dimension",
                )
        return None

    def _admit(self, record: LoadRecord, offset: int) -> "object | None":
        """Validate and route one record; returns its site or ``None``.

        In tolerant mode a rejected record lands in the quarantine store;
        in strict mode only dominant-dimension violations and router
        errors raise (validation of shapes/types is a tolerant-mode
        service — strict mode preserves the raw fail-fast pipeline).
        """
        if self.tolerant:
            rejection = self._check(record)
            if rejection is not None:
                reason, detail = rejection
                self.quarantine.add(
                    offset, reason, detail,
                    coords=tuple(record.coords),
                    batch_seq=self._batch_seq if self.batch_size else None,
                )
                self.stats.records_quarantined += 1
                return None
        elif self.dominant_dimension is not None:
            value = record.coords[self.dominant_dimension]
            if self._last_dominant is not None and value < self._last_dominant:
                raise StorageError(
                    "load stream is not ordered by the dominant "
                    f"dimension: {value} after {self._last_dominant}"
                )
        if self.dominant_dimension is not None:
            self._last_dominant = record.coords[self.dominant_dimension]
        site = self.route(record.coords)
        if site not in self.sites:
            if self.tolerant:
                self.quarantine.add(
                    offset, "unroutable",
                    f"router returned unknown site {site!r}",
                    coords=tuple(record.coords),
                    batch_seq=self._batch_seq if self.batch_size else None,
                )
                self.stats.records_quarantined += 1
                return None
            raise StorageError(f"router returned unknown site {site!r}")
        return site

    # -- retry policy --------------------------------------------------------------

    def _with_retries(self, op: Callable[[], None], what: str) -> None:
        """Run *op*, retrying TransientIOError with recorded backoff."""
        attempt = 0
        while True:
            try:
                op()
                return
            except TransientIOError as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise IngestError(
                        f"{what}: transient I/O fault persisted through "
                        f"{self.max_retries} retries"
                    ) from exc
                self.stats.records_retried += 1
                _flight_emit("load_retry", what=what, attempt=attempt)
                # Capped: the uncapped doubling overflows semantically for
                # large attempt budgets (attempt 60 would charge ~18 years
                # of simulated backoff to the report).
                self.stats.backoff_ms += min(
                    self.backoff_base_ms * 2 ** (attempt - 1),
                    self.backoff_max_ms,
                )

    # -- the load loop -------------------------------------------------------------

    def load(self, stream: Iterable[LoadRecord]) -> int:
        """Consume *stream*; returns cumulative records loaded.

        With ``batch_size > 0`` the stream is checkpointed: resume by
        re-driving the same stream under the same ``load_epoch``.
        """
        if self.batch_size:
            return self._load_batched(stream)
        return self._load_streaming(stream)

    def _consume(self, record: LoadRecord) -> int:
        """Per-record bookkeeping shared by both load modes."""
        if self.on_record is not None:
            try:
                self.on_record()  # the injector's crash clock
            except LoadInterrupted as exc:
                exc.epoch = self.load_epoch
                exc.batch_seq = self._batch_seq
                raise
        offset = record.offset if record.offset is not None else self._offset
        self._offset += 1
        self.stats.records_seen += 1
        return offset

    def _load_streaming(self, stream: Iterable[LoadRecord]) -> int:
        for record in stream:
            offset = self._consume(record)
            site = self._admit(record, offset)
            if site is None:
                continue
            target = self.sites[site]
            self._with_retries(
                lambda: target.append(record.coords, record.values),
                f"append to site {site!r}",
            )
            self.per_site_counts[site] += 1
            self.records_loaded += 1
            self.stats.records_loaded += 1
        return self.records_loaded

    def _load_batched(self, stream: Iterable[LoadRecord]) -> int:
        batch: dict[object, list[LoadRecord]] = {}
        in_batch = 0
        for record in stream:
            offset = self._consume(record)
            site = self._admit(record, offset)
            if site is not None:
                batch.setdefault(site, []).append(record)
            in_batch += 1
            # Batch boundaries count *consumed* records (quarantined ones
            # included) so batch numbering replays deterministically.
            if in_batch == self.batch_size:
                self._commit_batch(batch)
                batch, in_batch = {}, 0
        if in_batch:
            self._commit_batch(batch)
        return self.records_loaded

    def _commit_batch(self, batch: dict[object, list[LoadRecord]]) -> None:
        seq = self._batch_seq
        self._batch_seq += 1
        for site, records in batch.items():
            sink = self.sites[site]
            if sink.load_cursor(self.load_epoch) >= seq:
                # Dedup by (load_epoch, batch_seq): this site already
                # committed the batch before the crash — replay skips it.
                self.stats.records_skipped += len(records)
                self.stats.batches_replayed += 1
                _flight_emit(
                    "load_resume",
                    batch_seq=seq,
                    site=str(site),
                    records_skipped=len(records),
                )
                continue

            def commit(sink=sink, records=records) -> None:
                for rec in records:
                    sink.append(rec.coords, rec.values)
                # Atomic per-site commit: spill, then cursor.  A crash
                # in between replays the batch idempotently next run.
                sink.commit_load_batch(self.load_epoch, seq)

            self._with_retries(commit, f"commit batch {seq} on site {site!r}")
            self.per_site_counts[site] += len(records)
            self.records_loaded += len(records)
            self.stats.records_loaded += len(records)
            self.stats.batches_committed += 1
            get_registry().counter("ingest.batch_commits").inc()
            tracing.add_current("ingest_batches", 1)

    def finish(self) -> None:
        """Flush every site's buffer (end of stream)."""
        for site in self.sites.values():
            site.flush()

    def report(self) -> LoadReport:
        """The load's figures of merit (loaded/quarantined/retried/skew)."""
        self.stats.skew = self.substream_skew()
        self.stats.per_site = dict(self.per_site_counts)
        return self.stats

    def substream_skew(self) -> float:
        """max/mean records per site — the load-balance figure of merit."""
        counts = list(self.per_site_counts.values())
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        return max(counts) / mean
