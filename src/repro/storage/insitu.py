"""In-situ data access: querying external files without a load stage
(Section 2.9).

"A common complaint from scientists is 'I am looking forward to getting
something done, but I am still trying to load my data'."  SciDB therefore
operates on external files through *adaptors*.  An :class:`InSituArray`
exposes the subset of the :class:`~repro.core.array.SciArray` reading
surface (``get``, ``exists``, ``region``, ``cells``, ``subsample``) backed
directly by the file — nothing is copied until the user explicitly calls
:meth:`InSituArray.load`.

As the paper warns, in-situ data "will not have many DBMS services, such as
recovery since it is under user control and not DBMS control": adaptors are
read-only, unlogged, and unversioned.  :attr:`InSituArray.services` spells
that out programmatically.

External files are also exactly where malformed bytes come from, so every
adaptor raises a typed :class:`~repro.core.errors.InSituFormatError`
carrying the file path and a source offset (CSV line number, NPY header,
container chunk index) instead of leaking ``ValueError``/``KeyError``/
``struct.error`` from its parsing internals.  :meth:`InSituArray.records`
exposes the file as a stream of offset-tagged
:class:`~repro.storage.loader.LoadRecord`\\ s and
:meth:`InSituArray.load_into` drives that stream through the checkpointed
:class:`~repro.storage.loader.BulkLoader` — the explicit load stage gains
crash-resumability and quarantine exactly like any other ingest.

Adaptors provided: CSV (coords + attribute columns), NPY (a dense numpy
array, one attribute), and the SciDB container format of
:mod:`repro.storage.format` — the stand-ins for the paper's HDF-5 and
NetCDF examples, which are structured the same way (named datasets +
chunk directory).
"""

from __future__ import annotations

import csv
import json
import struct
import zlib
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from ..core.array import SciArray
from ..core.cells import Cell, CellState
from ..core.errors import InSituError, InSituFormatError
from ..core.schema import ArraySchema, define_array
from .format import ContainerReader
from .loader import BulkLoader, LoadRecord, LoadReport
from .quarantine import QuarantineStore

__all__ = [
    "InSituArray",
    "CsvAdaptor",
    "NpyAdaptor",
    "SciDBContainerAdaptor",
    "open_in_situ",
]

Coords = tuple[int, ...]

#: Services a fully loaded array enjoys that in-situ data does not.
_IN_SITU_SERVICES = {
    "query": True,
    "recovery": False,
    "no_overwrite_history": False,
    "named_versions": False,
    "provenance_log": False,
}


class InSituArray:
    """Read-only array facade over an external file."""

    def __init__(self, schema: ArraySchema, path: Path) -> None:
        self.schema = schema
        self.path = path
        self.name = path.stem
        #: Reduced service level (Section 2.9).
        self.services = dict(_IN_SITU_SERVICES)

    # -- to be provided by adaptors ------------------------------------------------

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        raise NotImplementedError

    # -- generic reading surface ------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.schema.ndim

    @property
    def attr_names(self) -> tuple[str, ...]:
        return self.schema.attr_names

    @property
    def dim_names(self) -> tuple[str, ...]:
        return self.schema.dim_names

    def get(self, *coords: int) -> Optional[Cell]:
        target = tuple(coords[0]) if len(coords) == 1 and isinstance(
            coords[0], tuple
        ) else tuple(coords)
        for c, cell in self.cells():
            if c == target:
                return cell
        raise InSituError(f"cell {target} not present in {self.path.name}")

    def exists(self, *coords: int) -> bool:
        try:
            self.get(*coords)
        except InSituError:
            return False
        return True

    def records(self) -> Iterator[LoadRecord]:
        """The file as an offset-tagged load stream.

        Offsets are cell ordinals by default; adaptors override this to
        report source-native offsets (CSV line numbers, chunk indexes).
        """
        for i, (coords, cell) in enumerate(self.cells()):
            yield LoadRecord(
                coords, None if cell is None else tuple(cell.values), offset=i
            )

    def load(self, name: Optional[str] = None) -> SciArray:
        """The explicit load stage: copy everything into a SciArray."""
        arr = SciArray(self.schema, name=name or self.name)
        for record in self.records():
            arr.set(
                record.coords,
                None if record.values is None
                else Cell(self.schema.attr_names, tuple(record.values)),
            )
        return arr

    def load_into(
        self,
        target,
        batch_size: int = 64,
        tolerant: bool = False,
        quarantine: Optional[QuarantineStore] = None,
        load_epoch: int = 0,
        max_retries: int = 3,
    ) -> LoadReport:
        """Durable load stage: drive :meth:`records` through the
        checkpointed :class:`~repro.storage.loader.BulkLoader` into
        *target* (a :class:`~repro.storage.manager.PersistentArray` or any
        object with the same sink surface).

        Batches commit atomically on the target; re-running after a crash
        under the same *load_epoch* skips committed batches, so a load
        interrupted halfway through a large external file resumes instead
        of restarting.  With ``tolerant=True`` malformed-but-routable
        records land in the quarantine store instead of aborting.
        """
        loader = BulkLoader(
            {0: target},
            batch_size=batch_size,
            load_epoch=load_epoch,
            tolerant=tolerant,
            quarantine=quarantine,
            max_retries=max_retries,
        )
        with loader:
            loader.load(self.records())
        return loader.report()

    def count(self) -> int:
        return sum(1 for _ in self.cells())


class CsvAdaptor(InSituArray):
    """CSV files with one row per cell: dimension columns then attributes.

    The header row must name every column; dimension columns are those
    matching *dims*.  Attribute types default to float; pass ``types`` to
    override per attribute.
    """

    def __init__(
        self,
        path: "str | Path",
        dims: Sequence[str],
        types: Optional[dict[str, str]] = None,
    ) -> None:
        path = Path(path)
        with open(path, newline="") as f:
            reader = csv.reader(f)
            try:
                header = next(reader)
            except StopIteration:
                raise InSituError(f"{path} is empty") from None
        missing = [d for d in dims if d not in header]
        if missing:
            raise InSituError(f"{path} lacks dimension columns {missing}")
        attr_cols = [c for c in header if c not in dims]
        if not attr_cols:
            raise InSituError(f"{path} has no attribute columns")
        types = types or {}
        schema = define_array(
            _safe_name(path.stem),
            values=[(c, types.get(c, "float")) for c in attr_cols],
            dims=list(dims),
        )
        super().__init__(schema, path)
        self._dims = list(dims)
        self._attr_cols = attr_cols
        self._header = header

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        names = self.schema.attr_names
        for record in self.records():
            yield record.coords, Cell(names, tuple(record.values))

    def records(self) -> Iterator[LoadRecord]:
        """Rows as load records; ``offset`` is the 1-based source line.

        Malformed rows — wrong column count, non-integer dimension,
        unparsable attribute — raise :class:`InSituFormatError` naming the
        line, so a tolerant checkpointed load can quarantine by source
        position and a strict one aborts with an actionable message.
        """
        idx = {c: i for i, c in enumerate(self._header)}
        expect = len(self._header)
        with open(self.path, newline="") as f:
            reader = csv.reader(f)
            next(reader)  # header (line 1)
            for lineno, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != expect:
                    raise InSituFormatError(
                        self.path,
                        f"row has {len(row)} columns, expected {expect}",
                        offset=f"line {lineno}",
                    )
                try:
                    coords = tuple(int(row[idx[d]]) for d in self._dims)
                except ValueError as exc:
                    raise InSituFormatError(
                        self.path,
                        f"non-integer dimension value: {exc}",
                        offset=f"line {lineno}",
                    ) from exc
                values = []
                for c in self._attr_cols:
                    raw = row[idx[c]]
                    a = self.schema.attribute(c)
                    try:
                        if raw == "":
                            values.append(None)
                        elif a.type.name in ("string",):
                            values.append(raw)
                        elif "int" in a.type.name:
                            values.append(int(raw))
                        else:
                            values.append(float(raw))
                    except ValueError as exc:
                        raise InSituFormatError(
                            self.path,
                            f"attribute {c!r} unparsable as "
                            f"{a.type.name}: {raw!r}",
                            offset=f"line {lineno}",
                        ) from exc
                yield LoadRecord(coords, tuple(values), offset=lineno)


class NpyAdaptor(InSituArray):
    """A dense ``.npy`` array exposed as a single-attribute array.

    Uses ``mmap_mode='r'`` so only touched pages are read — the in-situ
    point in its purest form.
    """

    def __init__(
        self,
        path: "str | Path",
        attr: str = "value",
        dims: Optional[Sequence[str]] = None,
    ) -> None:
        path = Path(path)
        try:
            self._data = np.load(path, mmap_mode="r")
        except (ValueError, OSError, EOFError) as exc:
            # np.load reports a truncated or corrupt header as a bare
            # ValueError; surface it as a typed in-situ failure instead.
            raise InSituFormatError(
                path, f"unreadable NPY file: {exc}", offset="header"
            ) from exc
        if self._data.dtype == object:
            raise InSituFormatError(
                path, "object-dtype NPY arrays are not in-situ readable",
                offset="header",
            )
        ndim = self._data.ndim
        dims = list(dims) if dims else [f"d{i}" for i in range(1, ndim + 1)]
        if len(dims) != ndim:
            raise InSituError(
                f"{path} is {ndim}-D but {len(dims)} dimension names given"
            )
        type_name = "int64" if np.issubdtype(self._data.dtype, np.integer) else "float"
        schema = define_array(
            _safe_name(path.stem), values=[(attr, type_name)], dims=dims
        ).bind(list(self._data.shape))
        super().__init__(schema, path)

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        names = self.schema.attr_names
        for off in np.ndindex(*self._data.shape):
            coords = tuple(int(i + 1) for i in off)
            try:
                value = self._data[off].item()
            except (ValueError, OSError) as exc:
                # A file truncated below what its header promises fails
                # here, on the first touch of an unbacked page.
                raise InSituFormatError(
                    self.path,
                    f"data truncated below header-declared shape: {exc}",
                    offset=f"cell {coords}",
                ) from exc
            yield coords, Cell(names, (value,))

    def get(self, *coords: int) -> Optional[Cell]:
        target = tuple(coords[0]) if len(coords) == 1 and isinstance(
            coords[0], tuple
        ) else tuple(coords)
        off = tuple(c - 1 for c in target)
        if any(not 0 <= o < s for o, s in zip(off, self._data.shape)):
            raise InSituError(f"cell {target} outside {self.path.name}")
        return Cell(self.schema.attr_names, (self._data[off].item(),))

    def region(self, lo: Coords, hi: Coords) -> np.ndarray:
        sel = tuple(slice(l - 1, h) for l, h in zip(lo, hi))
        return np.asarray(self._data[sel])


#: parsing internals a corrupt container leaks without the typed wrapper
_CONTAINER_ERRORS = (
    KeyError, IndexError, ValueError, TypeError,
    struct.error, zlib.error, json.JSONDecodeError, OSError, EOFError,
)


class SciDBContainerAdaptor(InSituArray):
    """The self-describing container format, read lazily chunk by chunk.

    Header and chunk-directory corruption raises
    :class:`InSituFormatError` with the failing chunk index — never a raw
    ``KeyError``/``struct.error`` from the decoder.
    """

    def __init__(self, path: "str | Path") -> None:
        try:
            self._reader = ContainerReader(path)
        except InSituError:
            raise
        except _CONTAINER_ERRORS as exc:
            raise InSituFormatError(
                Path(path), f"corrupt container header: {exc!r}",
                offset="header",
            ) from exc
        super().__init__(self._reader.schema, Path(path))

    def _chunk(self, index: int) -> dict[str, np.ndarray]:
        try:
            planes = self._reader.read_chunk(index)
            if "__state__" not in planes:
                raise InSituFormatError(
                    self.path, "chunk lacks a cell-state plane",
                    offset=f"chunk {index}",
                )
            return planes
        except InSituError:
            raise
        except _CONTAINER_ERRORS as exc:
            raise InSituFormatError(
                self.path,
                f"corrupt chunk directory or payload: {exc!r}",
                offset=f"chunk {index}",
            ) from exc

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        names = self.schema.attr_names
        try:
            entries = list(self._reader.header["chunks"])
        except _CONTAINER_ERRORS as exc:
            raise InSituFormatError(
                self.path, f"corrupt chunk directory: {exc!r}",
                offset="header",
            ) from exc
        for i, entry in enumerate(entries):
            planes = self._chunk(i)
            state = planes["__state__"]
            try:
                origin = tuple(entry["origin"])
            except _CONTAINER_ERRORS as exc:
                raise InSituFormatError(
                    self.path, f"chunk entry lacks an origin: {exc!r}",
                    offset=f"chunk {i}",
                ) from exc
            for off in map(tuple, np.argwhere(state != CellState.EMPTY)):
                coords = tuple(int(o + k) for o, k in zip(origin, off))
                if state[off] == CellState.NULL:
                    yield coords, None
                    continue
                values = tuple(
                    planes[n][off].item()
                    if isinstance(planes[n][off], np.generic)
                    else planes[n][off]
                    for n in names
                )
                yield coords, Cell(names, values)

    def chunk_boxes(self):
        try:
            return self._reader.chunk_boxes()
        except _CONTAINER_ERRORS as exc:
            raise InSituFormatError(
                self.path, f"corrupt chunk directory: {exc!r}",
                offset="header",
            ) from exc

    def load(self, name: Optional[str] = None) -> SciArray:
        try:
            return self._reader.to_sciarray(name=name or self.name)
        except InSituError:
            raise
        except _CONTAINER_ERRORS as exc:
            raise InSituFormatError(
                self.path, f"corrupt container payload: {exc!r}",
                offset="load",
            ) from exc


def _safe_name(stem: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in stem)
    if not cleaned or not cleaned[0].isalpha():
        cleaned = f"a_{cleaned}"
    return cleaned


def open_in_situ(path: "str | Path", **options: Any) -> InSituArray:
    """Open an external file through the adaptor its extension selects.

    ``.csv`` needs ``dims=[...]``; ``.npy`` accepts ``attr=``/``dims=``;
    ``.scidb`` opens the container format.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        if "dims" not in options:
            raise InSituError("CSV adaptor requires dims=[...]")
        return CsvAdaptor(path, **options)
    if suffix == ".npy":
        return NpyAdaptor(path, **options)
    if suffix in (".scidb", ".sdb"):
        return SciDBContainerAdaptor(path)
    raise InSituError(f"no in-situ adaptor for {suffix!r} files")
