"""In-situ data access: querying external files without a load stage
(Section 2.9).

"A common complaint from scientists is 'I am looking forward to getting
something done, but I am still trying to load my data'."  SciDB therefore
operates on external files through *adaptors*.  An :class:`InSituArray`
exposes the subset of the :class:`~repro.core.array.SciArray` reading
surface (``get``, ``exists``, ``region``, ``cells``, ``subsample``) backed
directly by the file — nothing is copied until the user explicitly calls
:meth:`InSituArray.load`.

As the paper warns, in-situ data "will not have many DBMS services, such as
recovery since it is under user control and not DBMS control": adaptors are
read-only, unlogged, and unversioned.  :attr:`InSituArray.services` spells
that out programmatically.

Adaptors provided: CSV (coords + attribute columns), NPY (a dense numpy
array, one attribute), and the SciDB container format of
:mod:`repro.storage.format` — the stand-ins for the paper's HDF-5 and
NetCDF examples, which are structured the same way (named datasets +
chunk directory).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from ..core.array import SciArray
from ..core.cells import Cell, CellState
from ..core.errors import InSituError
from ..core.schema import ArraySchema, define_array
from .format import ContainerReader

__all__ = [
    "InSituArray",
    "CsvAdaptor",
    "NpyAdaptor",
    "SciDBContainerAdaptor",
    "open_in_situ",
]

Coords = tuple[int, ...]

#: Services a fully loaded array enjoys that in-situ data does not.
_IN_SITU_SERVICES = {
    "query": True,
    "recovery": False,
    "no_overwrite_history": False,
    "named_versions": False,
    "provenance_log": False,
}


class InSituArray:
    """Read-only array facade over an external file."""

    def __init__(self, schema: ArraySchema, path: Path) -> None:
        self.schema = schema
        self.path = path
        self.name = path.stem
        #: Reduced service level (Section 2.9).
        self.services = dict(_IN_SITU_SERVICES)

    # -- to be provided by adaptors ------------------------------------------------

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        raise NotImplementedError

    # -- generic reading surface ------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.schema.ndim

    @property
    def attr_names(self) -> tuple[str, ...]:
        return self.schema.attr_names

    @property
    def dim_names(self) -> tuple[str, ...]:
        return self.schema.dim_names

    def get(self, *coords: int) -> Optional[Cell]:
        target = tuple(coords[0]) if len(coords) == 1 and isinstance(
            coords[0], tuple
        ) else tuple(coords)
        for c, cell in self.cells():
            if c == target:
                return cell
        raise InSituError(f"cell {target} not present in {self.path.name}")

    def exists(self, *coords: int) -> bool:
        try:
            self.get(*coords)
        except InSituError:
            return False
        return True

    def load(self, name: Optional[str] = None) -> SciArray:
        """The explicit load stage: copy everything into a SciArray."""
        arr = SciArray(self.schema, name=name or self.name)
        for coords, cell in self.cells():
            arr.set(coords, cell)
        return arr

    def count(self) -> int:
        return sum(1 for _ in self.cells())


class CsvAdaptor(InSituArray):
    """CSV files with one row per cell: dimension columns then attributes.

    The header row must name every column; dimension columns are those
    matching *dims*.  Attribute types default to float; pass ``types`` to
    override per attribute.
    """

    def __init__(
        self,
        path: "str | Path",
        dims: Sequence[str],
        types: Optional[dict[str, str]] = None,
    ) -> None:
        path = Path(path)
        with open(path, newline="") as f:
            reader = csv.reader(f)
            try:
                header = next(reader)
            except StopIteration:
                raise InSituError(f"{path} is empty") from None
        missing = [d for d in dims if d not in header]
        if missing:
            raise InSituError(f"{path} lacks dimension columns {missing}")
        attr_cols = [c for c in header if c not in dims]
        if not attr_cols:
            raise InSituError(f"{path} has no attribute columns")
        types = types or {}
        schema = define_array(
            _safe_name(path.stem),
            values=[(c, types.get(c, "float")) for c in attr_cols],
            dims=list(dims),
        )
        super().__init__(schema, path)
        self._dims = list(dims)
        self._attr_cols = attr_cols
        self._header = header

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        idx = {c: i for i, c in enumerate(self._header)}
        names = self.schema.attr_names
        with open(self.path, newline="") as f:
            reader = csv.reader(f)
            next(reader)  # header
            for row in reader:
                if not row:
                    continue
                try:
                    coords = tuple(int(row[idx[d]]) for d in self._dims)
                except ValueError as exc:
                    raise InSituError(
                        f"{self.path}: non-integer dimension value in row {row}"
                    ) from exc
                values = []
                for c in self._attr_cols:
                    raw = row[idx[c]]
                    a = self.schema.attribute(c)
                    if raw == "":
                        values.append(None)
                    elif a.type.name in ("string",):
                        values.append(raw)
                    elif "int" in a.type.name:
                        values.append(int(raw))
                    else:
                        values.append(float(raw))
                yield coords, Cell(names, tuple(values))


class NpyAdaptor(InSituArray):
    """A dense ``.npy`` array exposed as a single-attribute array.

    Uses ``mmap_mode='r'`` so only touched pages are read — the in-situ
    point in its purest form.
    """

    def __init__(
        self,
        path: "str | Path",
        attr: str = "value",
        dims: Optional[Sequence[str]] = None,
    ) -> None:
        path = Path(path)
        self._data = np.load(path, mmap_mode="r")
        ndim = self._data.ndim
        dims = list(dims) if dims else [f"d{i}" for i in range(1, ndim + 1)]
        if len(dims) != ndim:
            raise InSituError(
                f"{path} is {ndim}-D but {len(dims)} dimension names given"
            )
        type_name = "int64" if np.issubdtype(self._data.dtype, np.integer) else "float"
        schema = define_array(
            _safe_name(path.stem), values=[(attr, type_name)], dims=dims
        ).bind(list(self._data.shape))
        super().__init__(schema, path)

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        names = self.schema.attr_names
        for off in np.ndindex(*self._data.shape):
            coords = tuple(int(i + 1) for i in off)
            yield coords, Cell(names, (self._data[off].item(),))

    def get(self, *coords: int) -> Optional[Cell]:
        target = tuple(coords[0]) if len(coords) == 1 and isinstance(
            coords[0], tuple
        ) else tuple(coords)
        off = tuple(c - 1 for c in target)
        if any(not 0 <= o < s for o, s in zip(off, self._data.shape)):
            raise InSituError(f"cell {target} outside {self.path.name}")
        return Cell(self.schema.attr_names, (self._data[off].item(),))

    def region(self, lo: Coords, hi: Coords) -> np.ndarray:
        sel = tuple(slice(l - 1, h) for l, h in zip(lo, hi))
        return np.asarray(self._data[sel])


class SciDBContainerAdaptor(InSituArray):
    """The self-describing container format, read lazily chunk by chunk."""

    def __init__(self, path: "str | Path") -> None:
        self._reader = ContainerReader(path)
        super().__init__(self._reader.schema, Path(path))

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        names = self.schema.attr_names
        for i, entry in enumerate(self._reader.header["chunks"]):
            planes = self._reader.read_chunk(i)
            state = planes["__state__"]
            origin = tuple(entry["origin"])
            for off in map(tuple, np.argwhere(state != CellState.EMPTY)):
                coords = tuple(int(o + k) for o, k in zip(origin, off))
                if state[off] == CellState.NULL:
                    yield coords, None
                    continue
                values = tuple(
                    planes[n][off].item()
                    if isinstance(planes[n][off], np.generic)
                    else planes[n][off]
                    for n in names
                )
                yield coords, Cell(names, values)

    def chunk_boxes(self):
        return self._reader.chunk_boxes()

    def load(self, name: Optional[str] = None) -> SciArray:
        return self._reader.to_sciarray(name=name or self.name)


def _safe_name(stem: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in stem)
    if not cleaned or not cleaned[0].isalpha():
        cleaned = f"a_{cleaned}"
    return cleaned


def open_in_situ(path: "str | Path", **options: Any) -> InSituArray:
    """Open an external file through the adaptor its extension selects.

    ``.csv`` needs ``dims=[...]``; ``.npy`` accepts ``attr=``/``dims=``;
    ``.scidb`` opens the container format.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        if "dims" not in options:
            raise InSituError("CSV adaptor requires dims=[...]")
        return CsvAdaptor(path, **options)
    if suffix == ".npy":
        return NpyAdaptor(path, **options)
    if suffix in (".scidb", ".sdb"):
        return SciDBContainerAdaptor(path)
    raise InSituError(f"no in-situ adaptor for {suffix!r} files")
