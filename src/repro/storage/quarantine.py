"""Quarantine (dead-letter) store for the streaming bulk loader.

Section 2.8 makes streaming bulk load a first-class citizen; at LSST scale
the stream *will* contain malformed records, and stopping the world for
each one is not an option.  In tolerant mode the loader routes every
record it cannot store — bad arity, coordinates outside the shape, type
errors, dominant-dimension regressions — here instead of aborting, with
the reason and the record's source offset, so an operator can enumerate,
fix, and re-drive exactly the rejected tail of the stream.

The store is in-memory by default; give it a ``path`` and every entry is
also appended durably as one JSON line (same newline-delimited-JSON
discipline as the WAL), so quarantine survives the very crashes the
checkpointed loader is built to survive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from ..obs.recorder import emit as _flight_emit

__all__ = ["QuarantinedRecord", "QuarantineStore"]


@dataclass(frozen=True)
class QuarantinedRecord:
    """One rejected load record and why it was rejected."""

    offset: int  #: 0-based ordinal of the record in the source stream
    reason: str  #: machine-readable category, e.g. "bad_arity"
    detail: str  #: human-readable explanation
    coords: Optional[tuple] = None  #: the record's coords, when parseable
    batch_seq: Optional[int] = None  #: load batch the record fell in

    def to_json(self) -> str:
        return json.dumps(
            {
                "offset": self.offset,
                "reason": self.reason,
                "detail": self.detail,
                "coords": None if self.coords is None else list(self.coords),
                "batch_seq": self.batch_seq,
            }
        )


class QuarantineStore:
    """Append-only collection of rejected load records."""

    def __init__(self, path: "str | Path | None" = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: list[QuarantinedRecord] = []
        if self.path is not None and self.path.exists():
            # A resumed load reopens its dead-letter file.
            with open(self.path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    raw = json.loads(line)
                    self._records.append(
                        QuarantinedRecord(
                            offset=raw["offset"],
                            reason=raw["reason"],
                            detail=raw["detail"],
                            coords=None if raw["coords"] is None
                            else tuple(raw["coords"]),
                            batch_seq=raw.get("batch_seq"),
                        )
                    )

    def add(
        self,
        offset: int,
        reason: str,
        detail: str,
        coords: Optional[tuple] = None,
        batch_seq: Optional[int] = None,
    ) -> QuarantinedRecord:
        rec = QuarantinedRecord(offset, reason, detail, coords, batch_seq)
        self._records.append(rec)
        _flight_emit("quarantine", offset=offset, reason=reason)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(rec.to_json() + "\n")
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QuarantinedRecord]:
        return iter(self._records)

    def offsets(self) -> list[int]:
        return [r.offset for r in self._records]

    def reasons(self) -> dict[str, int]:
        """Rejection counts per reason — the triage summary."""
        out: dict[str, int] = {}
        for r in self._records:
            out[r.reason] = out.get(r.reason, 0) + 1
        return out

    def __repr__(self) -> str:
        return f"<QuarantineStore {len(self)} records {self.reasons()}>"
