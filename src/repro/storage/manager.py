"""The within-node storage manager (Section 2.8).

Write path, exactly as the paper sketches it: cells stream in (usually from
the bulk loader, ordered by a dominant dimension) and accumulate in a main-
memory buffer.  "When main memory is nearly full, the storage manager will
form the data into a collection of rectangular buckets, defined by a stride
in each dimension, compress the bucket and write it to disk."  An R-tree
tracks the buckets; "a background thread can combine buckets into larger
ones as an optimization" (Vertica-style merge).

Read path: window queries prune buckets through the R-tree, decompress only
the intersecting ones, and merge in any still-buffered cells.

Every byte written/read and every bucket event is counted in
:class:`StorageStats`, which the storage benchmarks (E8) report.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

import numpy as np

from ..core.array import SciArray
from ..core.cells import Cell
from ..core.errors import StorageError
from ..core.schema import ArraySchema
from ..obs import tracing
from ..obs.metrics import get_registry
from ..obs.recorder import emit as _flight_emit
from .bucket import Bucket
from .compression import Codec
from .rtree import RTree

__all__ = ["ChunkCache", "StorageStats", "PersistentArray", "StorageManager"]

Coords = tuple[int, ...]

#: Cache key: (array directory, bucket id, codec generation).  The
#: generation distinguishes logically different buckets that reuse a
#: (directory, id) pair — e.g. after a merge rewrote the file set.
CacheKey = tuple[str, int, int]


class ChunkCache:
    """A byte-budgeted LRU cache of *decompressed* buckets.

    The SS-DB-style observation (PAPERS.md): cooked-data query time is
    dominated by repeatedly decompressing the same chunks.  This cache
    keeps decoded :class:`~repro.storage.bucket.Bucket` objects keyed by
    ``(array, bucket, codec_generation)`` so a hot window pays codec cost
    once.  Bucket files are immutable once written, so coherence reduces
    to invalidating on the few events that delete or reuse files: merge,
    ``drop_array`` (which repartition rides on) and node restart (which
    builds a fresh manager, hence a fresh cache).

    Thread-safe: the parallel partition scheduler reads through it from
    several worker threads at once.
    """

    #: one ``cache_pressure`` flight-recorder event per this many evictions
    PRESSURE_EVERY = 64

    def __init__(self, budget_bytes: int = 8 << 20) -> None:
        if budget_bytes <= 0:
            raise StorageError(
                f"chunk cache budget must be positive, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[CacheKey, tuple[Bucket, int]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Next cumulative-eviction threshold at which a cache_pressure
        # event fires (rate-limited so a churning cache cannot flood the
        # flight-recorder ring and push operational events out of it).
        self._pressure_mark = self.PRESSURE_EVERY

    def get(self, key: CacheKey) -> Optional[Bucket]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                get_registry().counter("cache.miss").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        get_registry().counter("cache.hit").inc()
        return entry[0]

    def put(self, key: CacheKey, bucket: Bucket) -> None:
        nbytes = bucket.nbytes
        if nbytes > self.budget_bytes:
            return  # would evict everything and still not fit
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (bucket, nbytes)
            self._bytes += nbytes
            while self._bytes > self.budget_bytes and self._entries:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self.evictions += 1
                evicted += 1
        if evicted:
            get_registry().counter("cache.evict").inc(evicted)
            pressure = False
            with self._lock:
                if self.evictions >= self._pressure_mark:
                    self._pressure_mark = self.evictions + self.PRESSURE_EVERY
                    pressure = True
            if pressure:
                _flight_emit(
                    "cache_pressure",
                    evictions=self.evictions,
                    bytes_cached=self._bytes,
                    budget_bytes=self.budget_bytes,
                )

    def invalidate(self, array_prefix: str) -> int:
        """Drop every entry whose array directory equals *array_prefix*."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == array_prefix]
            for key in doomed:
                _, nbytes = self._entries.pop(key)
                self._bytes -= nbytes
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def bytes_cached(self) -> int:
        return self._bytes

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, "int | float"]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_ratio": self.hit_ratio,
            }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<ChunkCache {len(self._entries)} buckets "
            f"{self._bytes}/{self.budget_bytes} B "
            f"hit_ratio={self.hit_ratio:.2f}>"
        )


@dataclass
class StorageStats:
    """Byte/IO accounting for one persistent array."""

    cells_written: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    buckets_written: int = 0
    buckets_read: int = 0
    buckets_pruned: int = 0
    buckets_value_pruned: int = 0
    spills: int = 0
    merges: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class PersistentArray:
    """A disk-backed array managed buffer-spill-merge style.

    Parameters
    ----------
    schema:
        Bound array schema.
    directory:
        Where bucket files live (one file per bucket).
    memory_budget:
        Approximate bytes of buffered cells that trigger a spill — "when
        main memory is nearly full".
    stride:
        Bucket stride per dimension; buffered cells are grouped into
        stride-aligned rectangles at spill time.
    codec:
        Codec name, :class:`Codec`, or ``"auto"`` (per-plane best choice).
    cache:
        Optional shared :class:`ChunkCache` of decompressed buckets.
    """

    def __init__(
        self,
        schema: ArraySchema,
        directory: "str | Path",
        memory_budget: int = 1 << 20,
        stride: Optional[Sequence[int]] = None,
        codec: "str | Codec" = "auto",
        cache: Optional[ChunkCache] = None,
    ) -> None:
        self.schema = schema
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memory_budget = memory_budget
        self.stride = tuple(stride) if stride else tuple([64] * schema.ndim)
        if len(self.stride) != schema.ndim:
            raise StorageError(
                f"stride has {len(self.stride)} entries for a "
                f"{schema.ndim}-D array"
            )
        self.codec = codec
        self.stats = StorageStats()
        self._buffer: dict[Coords, Optional[tuple]] = {}
        self._buffer_bytes = 0
        self._live_coords: set[Coords] = set()
        self._cell_cost = 8 * schema.ndim + 16 * len(schema.attributes)
        self._rtree = RTree(max_entries=8)
        self._next_bucket = 0
        self._cache = cache
        # Per-bucket value statistics (min/max/null-count per attribute +
        # occupancy footprint), keyed by bucket id alongside the R-tree
        # entries.  Built at write time, dropped with the bucket at merge
        # time, gone entirely on drop/restart (fresh instance).  The scan
        # path treats a missing entry as "cannot prune" — staleness can
        # only cost speed, never answers.
        self._bucket_stats: dict[int, Any] = {}
        self.collect_stats = True
        # Bumped whenever bucket files are deleted/rewritten (merge), so
        # stale cache entries for reused (directory, id) pairs can't hit.
        self.codec_generation = 0
        self._lock = threading.RLock()
        self._merger: Optional[threading.Thread] = None
        self._merger_stop = threading.Event()
        # Per-epoch load cursors (checkpointed bulk load, Section 2.8):
        # epoch key -> last batch_seq committed on this site.  The key is
        # stringified so callers can scope it ("3" for a plain epoch,
        # "3/p2" for epoch 3 of logical partition 2 on a grid node whose
        # storage backs several replica chains).  Survives process restart
        # via an atomically replaced JSON file in the directory.
        self._load_cursors: dict[str, int] = self._read_load_cursors()

    # -- write path -----------------------------------------------------------

    def append(self, coords: Coords, values: Optional[tuple]) -> None:
        """Buffer one cell; spills automatically at the memory budget."""
        with self._lock:
            coords = tuple(int(c) for c in coords)
            if coords not in self._buffer:
                self._buffer_bytes += self._cell_cost
            self._buffer[coords] = values
            self._live_coords.add(coords)
            self.stats.cells_written += 1
            if self._buffer_bytes >= self.memory_budget:
                self._spill_locked()

    def append_block(self, origin: Coords, values: dict[str, np.ndarray]) -> None:
        """Buffer a dense block (bulk-load fast path)."""
        arrays = {k: np.asarray(v) for k, v in values.items()}
        shape = next(iter(arrays.values())).shape
        names = list(self.schema.attr_names)
        with self._lock:
            for off in itertools.product(*(range(s) for s in shape)):
                coords = tuple(int(o + i) for o, i in zip(origin, off))
                record = tuple(arrays[n][off] for n in names)
                if coords not in self._buffer:
                    self._buffer_bytes += self._cell_cost
                self._buffer[coords] = record
                self._live_coords.add(coords)
                self.stats.cells_written += 1
            if self._buffer_bytes >= self.memory_budget:
                self._spill_locked()

    def flush(self) -> None:
        """Spill any buffered cells to disk buckets."""
        with self._lock:
            if self._buffer:
                self._spill_locked()

    def delete(self, coords: Coords) -> bool:
        """Logically remove one cell; returns whether it was stored.

        Spilled bucket files are immutable, so deletion is a tombstone in
        ``_live_coords``: :meth:`scan` and :meth:`get` filter against the
        live set and the bytes get dropped for real at the next merge
        rewrite.  Rebalance cutover (cluster/rebalance.py) uses this to
        retire a partition's stale replica copies without rewriting disk.
        """
        with self._lock:
            coords = tuple(int(c) for c in coords)
            if coords not in self._live_coords:
                return False
            self._live_coords.discard(coords)
            if coords in self._buffer:
                del self._buffer[coords]
                self._buffer_bytes -= self._cell_cost
            return True

    def contains(self, coords: Coords) -> bool:
        """O(1) liveness probe for one cell address."""
        with self._lock:
            return tuple(int(c) for c in coords) in self._live_coords

    # -- checkpointed load (Section 2.8 ingest) ------------------------------------

    @property
    def _cursor_path(self) -> Path:
        return self.directory / "load_cursor.json"

    def _read_load_cursors(self) -> dict[str, int]:
        if not self._cursor_path.exists():
            return {}
        raw = json.loads(self._cursor_path.read_text(encoding="utf-8"))
        return {str(k): int(v) for k, v in raw.items()}

    def load_cursor(self, epoch: "int | str" = 0) -> int:
        """Last batch committed on this site for *epoch* (-1: none yet)."""
        with self._lock:
            return self._load_cursors.get(str(epoch), -1)

    def commit_load_batch(self, epoch: "int | str", batch_seq: int) -> None:
        """Atomically commit one load batch: spill, then persist the cursor.

        The cursor file is replaced via ``os.replace`` so a crash between
        spill and rename leaves the *previous* cursor intact — the batch
        simply replays on resume, and replay is idempotent because cells
        are keyed by coordinates.
        """
        with self._lock:
            if self._buffer:
                self._spill_locked()
            self.restore_load_cursor(epoch, batch_seq)

    def restore_load_cursor(self, epoch: "int | str", batch_seq: int) -> None:
        """Advance (never regress) the persisted cursor without spilling.

        Used by WAL replay, which re-applies cells directly and only needs
        the checkpoint bookkeeping brought back.
        """
        key = str(epoch)
        with self._lock:
            if batch_seq <= self._load_cursors.get(key, -1):
                return
            self._load_cursors[key] = batch_seq
            tmp = self._cursor_path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(self._load_cursors), encoding="utf-8"
            )
            os.replace(tmp, self._cursor_path)

    def _spill_locked(self) -> None:
        groups: dict[Coords, list[tuple[Coords, Optional[tuple]]]] = {}
        for coords, values in self._buffer.items():
            key = tuple((c - 1) // s for c, s in zip(coords, self.stride))
            groups.setdefault(key, []).append((coords, values))
        for cells in groups.values():
            bucket = Bucket.from_cells(self.schema, cells)
            self._write_bucket(bucket)
        self._buffer.clear()
        self._buffer_bytes = 0
        self.stats.spills += 1

    def _write_bucket(self, bucket: Bucket) -> int:
        t0 = time.perf_counter()
        payload = bucket.to_bytes(self.codec)
        codec_ms = (time.perf_counter() - t0) * 1e3
        bucket_id = self._next_bucket
        self._next_bucket += 1
        path = self._bucket_path(bucket_id)
        with open(path, "wb") as f:
            f.write(payload)
        self.stats.bytes_written += len(payload)
        self.stats.buckets_written += 1
        registry = get_registry()
        registry.counter("storage.buckets_written").inc()
        registry.counter("storage.bytes_written").inc(len(payload))
        registry.histogram("storage.codec_encode_ms").observe(codec_ms)
        tracing.add_current("chunks_written", 1)
        tracing.add_current("codec_ms", codec_ms)
        self._rtree.insert(bucket.box, bucket_id)
        if self.collect_stats:
            # Lazy import: stats live in query/ (the planner consumes
            # them) and importing at module scope would cycle through the
            # partially-initialized query package during boot.
            from ..query.stats import BucketStats

            self._bucket_stats[bucket_id] = BucketStats.from_bucket(
                bucket, bucket_id
            )
        return bucket_id

    def _bucket_path(self, bucket_id: int) -> Path:
        return self.directory / f"bucket_{bucket_id:08d}.bkt"

    def _read_bucket(self, bucket_id: int) -> Bucket:
        path = self._bucket_path(bucket_id)
        payload = path.read_bytes()
        t0 = time.perf_counter()
        bucket = Bucket.from_bytes(self.schema, payload)
        codec_ms = (time.perf_counter() - t0) * 1e3
        with self._lock:
            self.stats.bytes_read += len(payload)
            self.stats.buckets_read += 1
        registry = get_registry()
        registry.counter("storage.buckets_read").inc()
        registry.counter("storage.bytes_read").inc(len(payload))
        registry.histogram("storage.codec_decode_ms").observe(codec_ms)
        tracing.add_current("chunks_read", 1)
        tracing.add_current("codec_ms", codec_ms)
        return bucket

    def _cache_key(self, bucket_id: int) -> CacheKey:
        return (str(self.directory), bucket_id, self.codec_generation)

    def _load_bucket(self, bucket_id: int) -> Bucket:
        """Read a bucket through the decompressed-chunk cache, if any."""
        if self._cache is None:
            return self._read_bucket(bucket_id)
        key = self._cache_key(bucket_id)
        bucket = self._cache.get(key)
        if bucket is not None:
            with self._lock:
                self.stats.cache_hits += 1
            tracing.add_current("cache_hits", 1)
            return bucket
        with self._lock:
            self.stats.cache_misses += 1
        tracing.add_current("cache_misses", 1)
        bucket = self._read_bucket(bucket_id)
        self._cache.put(key, bucket)
        return bucket

    @property
    def live_cells(self) -> int:
        """Distinct stored cell addresses, maintained incrementally.

        O(1), unlike counting a full :meth:`scan` — grid bookkeeping
        (balance metrics, rebuild diffs) calls this per query.
        """
        return len(self._live_coords)

    def live_coords(self) -> frozenset[Coords]:
        """Snapshot of every stored cell address (buffered or spilled)."""
        with self._lock:
            return frozenset(self._live_coords)

    # -- read path ----------------------------------------------------------------

    def scan(
        self,
        window: Optional[tuple[Coords, Coords]] = None,
        attr_ranges: Optional[dict[str, Any]] = None,
    ) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """Iterate cells, restricted to *window* (inclusive box) if given.

        Buckets not intersecting the window are pruned via the R-tree and
        never read from disk — the paper's structural-optimization
        opportunity (experiment E2).

        *attr_ranges* (attribute name -> :class:`repro.query.stats.Interval`,
        produced by the planner's predicate analysis) additionally prunes
        buckets whose min/max statistics prove no stored value can satisfy
        the ranges.  Correctness contract: a downstream ``filter`` turns a
        failing cell into NULL, not EMPTY — so a value-pruned bucket still
        yields ``(coords, None)`` for each of its occupied coordinates,
        decoded from the footprint kept in the stats catalog.  The file is
        never opened.  Buckets without statistics (stale, invalidated,
        collection disabled) are read in full — degradation is always
        toward more I/O, never toward wrong answers.
        """
        with self._lock:
            if window is None:
                entries = list(self._rtree.all_entries())
            else:
                total = len(self._rtree)
                entries = list(self._rtree.search(window))
                self.stats.buckets_pruned += total - len(entries)
            buffered = dict(self._buffer)
            live = set(self._live_coords)
            stats_map = dict(self._bucket_stats) if attr_ranges else {}

        # Newest bucket wins when a cell was rewritten across spills.
        entries.sort(key=lambda e: e[1], reverse=True)
        seen: set[Coords] = set()
        visited: set[int] = set()
        pending = list(entries)
        while pending:
            _box, bucket_id = pending.pop(0)
            if bucket_id in visited:
                continue
            visited.add(bucket_id)
            if attr_ranges:
                bstats = stats_map.get(bucket_id)
                if bstats is not None and not bstats.can_match(attr_ranges):
                    with self._lock:
                        self.stats.buckets_value_pruned += 1
                    get_registry().counter("storage.buckets_value_pruned").inc()
                    tracing.add_current("chunks_pruned", 1)
                    for coords in bstats.occupied_coords():
                        if window is not None and not _in_window(
                            coords, window
                        ):
                            continue
                        if coords in buffered or coords in seen:
                            continue
                        if coords not in live:
                            continue
                        seen.add(coords)
                        yield coords, None
                    continue
            try:
                bucket = self._load_bucket(bucket_id)
            except FileNotFoundError:
                # A concurrent merge rewrote this bucket's file set after
                # we snapshotted the R-tree.  The merged bucket holds the
                # same cells (merges only combine), so re-resolve: queue
                # the *current* entries intersecting the stale box that we
                # have not visited yet, and let the seen-set dedup keep
                # the yield exactly-once.  Correctness degrades toward
                # re-reads, never toward dropped cells.
                with self._lock:
                    replacements = list(self._rtree.search(_box))
                    if attr_ranges:
                        stats_map.update(self._bucket_stats)
                pending.extend(
                    (box, bid)
                    for box, bid in replacements
                    if bid not in visited
                )
                # Keep newest-first: the merged bucket (highest id) must
                # be read before older survivors so a rewritten cell's
                # latest value still wins the seen-set dedup.
                pending.sort(key=lambda e: e[1], reverse=True)
                continue
            for coords, cell in bucket.cells(window):
                if coords in buffered or coords in seen:
                    continue  # newest version wins (buffer > disk)
                if coords not in live:
                    continue  # tombstoned by delete(); bytes die at merge
                seen.add(coords)
                yield coords, cell
        names = self.schema.attr_names
        for coords, values in buffered.items():
            if window is not None and not _in_window(coords, window):
                continue
            if values is None:
                yield coords, None
            else:
                yield coords, Cell(names, tuple(values))

    def get(self, coords: Coords) -> Optional[Cell]:
        coords = tuple(int(c) for c in coords)
        with self._lock:
            if coords in self._buffer:
                values = self._buffer[coords]
                return None if values is None else Cell(
                    self.schema.attr_names, tuple(values)
                )
        for c, cell in self.scan((coords, coords)):
            if c == coords:
                return cell
        raise StorageError(f"cell {coords} not stored")

    # -- statistics catalog ---------------------------------------------------

    def invalidate_stats(self) -> None:
        """Forget every bucket's value statistics.

        Subsequent scans read everything (no value pruning) until new
        buckets are written; existing buckets regain statistics only when
        a merge rewrites them.  Used by tests and as the escape hatch for
        externally modified bucket files.
        """
        with self._lock:
            self._bucket_stats.clear()

    def array_stats(self) -> Any:
        """Snapshot this array's statistics as a
        :class:`repro.query.stats.ArrayStats` (buffered cells counted
        without per-bucket detail — they have no statistics yet)."""
        from ..query.stats import ArrayStats

        with self._lock:
            return ArrayStats(
                buckets=list(self._bucket_stats.values()),
                buffered_cells=len(self._buffer),
            )

    def to_sciarray(self, name: Optional[str] = None) -> SciArray:
        """Materialise the whole persistent array in memory."""
        arr = SciArray(self.schema, name=name or self.schema.name)
        for coords, cell in self.scan():
            arr.set(coords, cell)
        return arr

    # -- merge optimisation ----------------------------------------------------------

    def bucket_count(self) -> int:
        return len(self._rtree)

    def merge_small_buckets(
        self, min_cells: int = 256, group_factor: int = 2
    ) -> int:
        """Combine small buckets into larger ones; returns merges performed.

        Buckets holding fewer than *min_cells* cells are grouped by a
        coarser stride (``group_factor`` x the base stride) and each group
        is rewritten as a single bucket — the Vertica-style background
        optimization the paper describes.
        """
        with self._lock:
            small: dict[Coords, list[tuple[tuple, int]]] = {}
            for box, bucket_id in list(self._rtree.all_entries()):
                volume = 1
                for l, h in zip(box[0], box[1]):
                    volume *= h - l + 1
                if volume >= min_cells:
                    continue
                key = tuple(
                    (c - 1) // (s * group_factor)
                    for c, s in zip(box[0], self.stride)
                )
                small.setdefault(key, []).append((box, bucket_id))

            merges = 0
            for group in small.values():
                if len(group) < 2:
                    continue
                merged: Optional[Bucket] = None
                group.sort(key=lambda e: e[1])  # oldest first; newer wins
                for box, bucket_id in group:
                    bucket = self._read_bucket(bucket_id)
                    merged = bucket if merged is None else merged.merge(bucket)
                    self._rtree.delete(box, bucket_id)
                    self._bucket_stats.pop(bucket_id, None)
                    os.unlink(self._bucket_path(bucket_id))
                assert merged is not None
                self._write_bucket(merged)
                merges += 1
            self.stats.merges += merges
            if merges and self._cache is not None:
                # File set changed under existing ids: retire the whole
                # generation so no stale decoded bucket can ever hit.
                self.codec_generation += 1
                self._cache.invalidate(str(self.directory))
            return merges

    def start_background_merger(
        self, interval: float = 0.05, min_cells: int = 256
    ) -> None:
        """Run :meth:`merge_small_buckets` periodically on a daemon thread."""
        if self._merger is not None:
            raise StorageError("background merger already running")
        self._merger_stop.clear()

        def loop() -> None:
            while not self._merger_stop.wait(interval):
                self.merge_small_buckets(min_cells=min_cells)

        self._merger = threading.Thread(target=loop, daemon=True)
        self._merger.start()

    def stop_background_merger(self) -> None:
        if self._merger is None:
            return
        self._merger_stop.set()
        self._merger.join()
        self._merger = None


def _in_window(coords: Coords, window: tuple[Coords, Coords]) -> bool:
    lo, hi = window
    return all(l <= c <= h for c, l, h in zip(coords, lo, hi))


class StorageManager:
    """A node's catalog of persistent arrays rooted at one directory."""

    def __init__(
        self,
        directory: "str | Path",
        memory_budget: int = 1 << 20,
        chunk_cache_bytes: int = 8 << 20,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memory_budget = memory_budget
        # One decompressed-chunk cache shared by every array of the node;
        # 0 (or negative) disables caching entirely.
        self.chunk_cache: Optional[ChunkCache] = (
            ChunkCache(chunk_cache_bytes) if chunk_cache_bytes > 0 else None
        )
        self._arrays: dict[str, PersistentArray] = {}
        # Concurrent ingests (the service's per-request threads) race
        # ensure_array's check-then-create; without this lock two threads
        # could build two PersistentArray instances over one directory.
        self._lock = threading.RLock()

    def create_array(
        self,
        name: str,
        schema: ArraySchema,
        stride: Optional[Sequence[int]] = None,
        codec: "str | Codec" = "auto",
        memory_budget: Optional[int] = None,
    ) -> PersistentArray:
        with self._lock:
            if name in self._arrays:
                raise StorageError(
                    f"array {name!r} already exists in this store"
                )
            arr = PersistentArray(
                schema,
                self.directory / name,
                memory_budget=memory_budget or self.memory_budget,
                stride=stride,
                codec=codec,
                cache=self.chunk_cache,
            )
            self._arrays[name] = arr
            return arr

    def ensure_array(
        self,
        name: str,
        schema: ArraySchema,
        stride: Optional[Sequence[int]] = None,
        codec: "str | Codec" = "auto",
        memory_budget: Optional[int] = None,
    ) -> PersistentArray:
        """Get *name* if registered, else create it over its directory.

        The resumable-ingest entry point: after a crash a fresh process
        re-opens the same directory and the new :class:`PersistentArray`
        picks its load cursors back up from disk.
        """
        with self._lock:
            if name in self._arrays:
                existing = self._arrays[name]
                if existing.schema.attr_names != schema.attr_names:
                    raise StorageError(
                        f"array {name!r} already exists with different "
                        "attributes"
                    )
                return existing
            return self.create_array(
                name, schema, stride=stride, codec=codec,
                memory_budget=memory_budget,
            )

    def get_array(self, name: str) -> PersistentArray:
        with self._lock:
            try:
                return self._arrays[name]
            except KeyError:
                raise StorageError(
                    f"no array named {name!r} in this store"
                ) from None

    def drop_array(self, name: str) -> None:
        with self._lock:
            arr = self.get_array(name)
            arr.stop_background_merger()
            for path in arr.directory.glob("bucket_*.bkt"):
                path.unlink()
            arr._cursor_path.unlink(missing_ok=True)
            if self.chunk_cache is not None:
                # A recreated array reuses the directory and restarts
                # bucket ids at 0 (repartition does exactly this) —
                # cached decodes of the dropped files must not survive.
                self.chunk_cache.invalidate(str(arr.directory))
            del self._arrays[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._arrays)

    def total_stats(self) -> dict[str, int]:
        with self._lock:
            arrays = list(self._arrays.values())
        totals: dict[str, int] = {}
        for arr in arrays:
            for k, v in arr.stats.snapshot().items():
                totals[k] = totals.get(k, 0) + v
        return totals
