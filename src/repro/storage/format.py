"""The self-describing SciDB container format (Section 2.9).

"Our approach to this issue is to define a self-describing data format and
then write adaptors to various popular external formats."  This module is
that format: a single file holding one array — a JSON header describing
dimensions, attributes and a chunk directory, followed by independently
compressed chunk payloads.  It is structured the way HDF5/NetCDF are
(header + named datasets + chunk directory) so the in-situ adaptor layer
(:mod:`repro.storage.insitu`) can treat all three uniformly.

The header is pure JSON (not pickle) precisely so the file is
*self-describing*: any reader can interpret it without this library.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Optional

import numpy as np

from ..core.array import SciArray
from ..core.cells import CellState
from ..core.errors import InSituError
from ..core.schema import ArraySchema, Attribute, Dimension
from ..core.datatypes import ScalarType, get_type
from .compression import get_codec

__all__ = ["write_container", "read_container", "ContainerReader", "MAGIC"]

MAGIC = b"SCIDB1\n"

_TYPE_NAMES = {
    "int8": "int8",
    "int16": "int16",
    "int32": "int32",
    "int64": "int64",
    "float32": "float32",
    "float64": "float64",
    "bool": "bool",
    "string": "string",
}


def _attr_type_name(attr: Attribute) -> str:
    if not isinstance(attr.type, ScalarType):
        raise InSituError(
            "the container format stores scalar attributes only; "
            f"{attr.name!r} is a nested array"
        )
    return attr.type.name


def write_container(
    path: "str | Path",
    array: SciArray,
    codec: str = "zlib",
) -> int:
    """Serialise *array* to a container file; returns bytes written.

    Every non-empty chunk of the array becomes one compressed chunk entry.
    Object-dtype attributes are stored via the codec's object path.
    """
    path = Path(path)
    chunk_entries: list[dict[str, Any]] = []
    blobs: list[bytes] = []
    offset = 0
    codec_obj = get_codec(codec)
    for chunk in array.chunks():
        if chunk.occupied_count == 0:
            continue
        planes = [("__state__", chunk.state)]
        planes += [(a.name, chunk.data[a.name]) for a in array.schema.attributes]
        plane_meta = []
        for name, plane in planes:
            payload = codec_obj.encode(plane)
            blobs.append(payload)
            plane_meta.append(
                {
                    "name": name,
                    "offset": offset,
                    "nbytes": len(payload),
                    "dtype": "object" if plane.dtype == object else plane.dtype.str,
                }
            )
            offset += len(payload)
        chunk_entries.append(
            {
                "origin": list(chunk.origin),
                "shape": list(chunk.shape),
                "planes": plane_meta,
            }
        )

    header = {
        "format": "scidb-container",
        "version": 1,
        "codec": codec,
        "array": {
            "name": array.name,
            "dimensions": [
                {"name": d.name, "size": d.size} for d in array.schema.dimensions
            ],
            "attributes": [
                {"name": a.name, "type": _attr_type_name(a)}
                for a in array.schema.attributes
            ],
            "high_water": list(array.bounds),
        },
        "chunks": chunk_entries,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<I", len(header_bytes)))
        f.write(header_bytes)
        for blob in blobs:
            f.write(blob)
    return len(MAGIC) + 4 + len(header_bytes) + offset


class ContainerReader:
    """Lazy reader over a container file.

    The header is parsed once; chunk payloads are read and decompressed on
    demand, which is what makes in-situ querying cheap relative to a full
    load (experiment E9).
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        with open(self.path, "rb") as f:
            magic = f.read(len(MAGIC))
            if magic != MAGIC:
                raise InSituError(f"{self.path} is not a SciDB container")
            (hlen,) = struct.unpack("<I", f.read(4))
            self.header = json.loads(f.read(hlen).decode("utf-8"))
            self._data_start = len(MAGIC) + 4 + hlen
        self._codec = get_codec(self.header["codec"])
        self.schema = self._build_schema()

    def _build_schema(self) -> ArraySchema:
        meta = self.header["array"]
        dims = tuple(
            Dimension(d["name"], d["size"]) for d in meta["dimensions"]
        )
        attrs = tuple(
            Attribute(a["name"], get_type(a["type"])) for a in meta["attributes"]
        )
        return ArraySchema(name=meta["name"], attributes=attrs, dimensions=dims)

    @property
    def bounds(self) -> tuple[int, ...]:
        return tuple(self.header["array"]["high_water"])

    def chunk_boxes(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        boxes = []
        for entry in self.header["chunks"]:
            lo = tuple(entry["origin"])
            hi = tuple(o + s - 1 for o, s in zip(entry["origin"], entry["shape"]))
            boxes.append((lo, hi))
        return boxes

    def read_chunk(self, index: int) -> dict[str, np.ndarray]:
        """Decode chunk *index*; returns plane name -> ndarray."""
        entry = self.header["chunks"][index]
        shape = tuple(entry["shape"])
        out: dict[str, np.ndarray] = {}
        with open(self.path, "rb") as f:
            for meta in entry["planes"]:
                f.seek(self._data_start + meta["offset"])
                payload = f.read(meta["nbytes"])
                dtype = (
                    np.dtype(object)
                    if meta["dtype"] == "object"
                    else np.dtype(meta["dtype"])
                )
                out[meta["name"]] = self._codec.decode(payload, dtype, shape)
        return out

    def to_sciarray(self, name: Optional[str] = None) -> SciArray:
        """Materialise the full array (this *is* the load step)."""
        arr = SciArray(self.schema, name=name or self.schema.name)
        for i, entry in enumerate(self.header["chunks"]):
            planes = self.read_chunk(i)
            state = planes["__state__"]
            origin = tuple(entry["origin"])
            present = state == CellState.PRESENT
            if present.any():
                block = {a.name: planes[a.name] for a in self.schema.attributes}
                # Write present cells; fall back to cell writes to respect
                # the mask exactly.
                for off in map(tuple, np.argwhere(state != CellState.EMPTY)):
                    coords = tuple(int(o + i2) for o, i2 in zip(origin, off))
                    if state[off] == CellState.NULL:
                        arr.set(coords, None)
                    else:
                        values = tuple(
                            block[a.name][off] for a in self.schema.attributes
                        )
                        arr.set(coords, values)
            else:
                for off in map(tuple, np.argwhere(state == CellState.NULL)):
                    coords = tuple(int(o + i2) for o, i2 in zip(origin, off))
                    arr.set(coords, None)
        return arr


def read_container(path: "str | Path") -> ContainerReader:
    """Open a container for lazy reading."""
    return ContainerReader(path)
