"""Write-ahead logging and crash recovery for *loaded* arrays.

Section 2.9 contrasts in-situ data — "will not have many DBMS services,
such as recovery" — with DBMS-controlled data, which implicitly does get
them.  This module supplies that recovery service: cell writes are appended
to a per-store log before being acknowledged, and :meth:`WriteAheadLog.recover`
replays the log into fresh arrays after a crash.  The in-situ benchmark
(E9) uses this to make the service-level trade-off concrete.

Records are newline-delimited JSON, fsync'd per commit batch.  Every
record carries a CRC32 of its own payload (the ``"crc"`` field, appended
last), so recovery can tell a *torn tail* — a crash mid-append, which is
legal and simply ends the replayable prefix — from *mid-log corruption*
(bit rot, a truncated middle, an edited file), which raises
:class:`~repro.core.errors.StorageError` rather than silently dropping
every committed record after the bad line.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Any, Iterator, Optional

from ..core.array import SciArray
from ..core.errors import StorageError
from ..core.schema import ArraySchema, define_array
from ..obs import tracing
from ..obs.metrics import get_registry
from ..obs.recorder import emit as _flight_emit

__all__ = ["WriteAheadLog"]


def _jsonable(obj: Any) -> Any:
    """Narrow numpy scalars (int64 etc.) to their Python equivalents so
    cell payloads scanned off disk buckets stay loggable."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"WAL record value {obj!r} is not JSON-serializable")


class WriteAheadLog:
    """An append-only redo log covering one directory of arrays."""

    def __init__(self, path: "str | Path", sync: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self._fh = open(self.path, "a", encoding="utf-8")
        self.records_appended = 0
        # Parallel repartition/rebuild can append from several scheduler
        # workers; interleaved writes to one file handle would tear lines.
        self._lock = threading.Lock()

    # -- logging ----------------------------------------------------------------

    def log_create(self, array: SciArray) -> None:
        self._append(
            {
                "op": "create",
                "array": array.name,
                "dims": [
                    {"name": d.name, "size": d.size}
                    for d in array.schema.dimensions
                ],
                "attrs": [
                    {"name": a.name, "type": getattr(a.type, "name", "float64")}
                    for a in array.schema.attributes
                ],
            }
        )

    def log_write(
        self, array_name: str, coords: tuple, values: Optional[tuple]
    ) -> None:
        self._append(
            {
                "op": "write",
                "array": array_name,
                "coords": list(coords),
                "values": None if values is None else list(values),
            }
        )

    def log_delete(self, array_name: str, coords: tuple) -> None:
        self._append({"op": "delete", "array": array_name, "coords": list(coords)})

    def log_load_commit(
        self, array_name: str, epoch: "int | str", seq: int
    ) -> None:
        """Record one checkpointed load-batch commit (Section 2.8 ingest).

        Written *after* the batch's cell writes, so a WAL replay that sees
        the marker has already re-applied every cell of the batch — the
        restored cursor never claims more than the replay delivered.
        *epoch* may be a scoped string key (``"0/p2"``) on grid nodes.
        """
        self._append(
            {"op": "load_commit", "array": array_name,
             "epoch": epoch, "seq": int(seq)}
        )

    # -- updatable (no-overwrite) arrays -----------------------------------------

    def log_create_updatable(self, array: "Any") -> None:
        """Record the schema of an updatable array (Section 2.5)."""
        schema = array.schema
        self._append(
            {
                "op": "create_updatable",
                "array": array.name,
                "dims": [
                    {"name": d.name, "size": d.size}
                    # the implicit history dimension is re-added on replay
                    for d in schema.dimensions
                    if d.name != "history"
                ],
                "attrs": [
                    {"name": a.name, "type": getattr(a.type, "name", "float64")}
                    for a in schema.attributes
                ],
            }
        )

    def log_commit(self, array_name: str, history: int, writes: dict) -> None:
        """Record one no-overwrite transaction commit.

        ``writes`` maps cell coords to a value tuple, ``None`` (NULL), or
        the deletion flag (anything whose repr is ``<DELETED>``).
        """
        from ..history.transactions import DELETED

        encoded = []
        for coords, values in writes.items():
            if values is DELETED:
                encoded.append({"coords": list(coords), "deleted": True})
            else:
                if values is not None and not isinstance(values, tuple):
                    values = (values,)  # bare scalar on a 1-attribute array
                encoded.append(
                    {
                        "coords": list(coords),
                        "values": None if values is None else list(values),
                    }
                )
        self._append(
            {
                "op": "commit",
                "array": array_name,
                "history": history,
                "writes": encoded,
            }
        )

    def recover_updatable(self) -> "dict[str, Any]":
        """Replay create_updatable/commit records into UpdatableArrays."""
        from ..history.transactions import UpdatableArray

        arrays: dict[str, UpdatableArray] = {}
        for record in self.entries():
            op = record["op"]
            if op == "create_updatable":
                schema = define_array(
                    record["array"]
                    if record["array"].isidentifier()
                    else "recovered",
                    values=[(a["name"], a["type"]) for a in record["attrs"]],
                    dims=[(d["name"], d["size"]) for d in record["dims"]],
                    updatable=True,
                )
                arrays[record["array"]] = UpdatableArray(
                    schema,
                    bounds=[d["size"] if d["size"] else "*"
                            for d in record["dims"]] + ["*"],
                    name=record["array"],
                )
            elif op == "commit":
                try:
                    arr = arrays[record["array"]]
                except KeyError:
                    raise StorageError(
                        f"WAL commit for {record['array']!r} before its "
                        "create_updatable record"
                    ) from None
                txn = arr.begin()
                for w in record["writes"]:
                    coords = tuple(w["coords"])
                    if w.get("deleted"):
                        txn.delete(coords)
                    elif w["values"] is None:
                        txn.set_null(coords)
                    else:
                        txn.set(coords, tuple(w["values"]))
                replayed = txn.commit()
                if replayed != record["history"]:
                    raise StorageError(
                        f"replay drift on {record['array']!r}: commit "
                        f"{record['history']} landed at {replayed}"
                    )
            # plain create/write/delete records belong to recover()
        return arrays

    def commit(self) -> None:
        """Durability point: flush (and optionally fsync) the log."""
        with self._lock:
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
        get_registry().counter("wal.commits").inc()

    def _append(self, record: dict[str, Any]) -> None:
        payload = json.dumps(record, default=_jsonable)
        crc = zlib.crc32(payload.encode("utf-8"))
        # Splice the checksum in as the final key: the CRC covers exactly
        # the serialization of the record without it, which entries() can
        # reconstruct (json.loads preserves key order).
        with self._lock:
            self._fh.write(payload[:-1] + f', "crc": {crc}}}\n')
            self.records_appended += 1
        get_registry().counter("wal.appends").inc()
        tracing.add_current("wal_appends", 1)

    def close(self) -> None:
        self.commit()
        self._fh.close()

    # -- recovery -------------------------------------------------------------------

    def entries(self) -> Iterator[dict[str, Any]]:
        """Iterate verified records.

        A bad **final** line (unparsable or failing its CRC) is a torn
        tail from a crash mid-append: legal, replay stops silently there.
        A bad line **followed by further records** means the log itself is
        damaged — raising :class:`StorageError` is mandatory, because
        silently truncating would discard committed records after the bad
        line.
        """
        self.commit()
        with open(self.path, encoding="utf-8") as f:
            lines = [
                (i, stripped)
                for i, raw in enumerate(f, start=1)
                if (stripped := raw.strip())
            ]
        for pos, (lineno, line) in enumerate(lines):
            try:
                record = json.loads(line)
                crc = record.pop("crc", None)
                if crc is not None and zlib.crc32(
                    json.dumps(record).encode("utf-8")
                ) != crc:
                    raise ValueError("checksum mismatch")
            except ValueError as exc:  # JSONDecodeError is a ValueError
                if pos == len(lines) - 1:
                    return  # torn final record from a crash: legal
                raise StorageError(
                    f"WAL corruption at {self.path.name}:{lineno} "
                    f"({exc}) with committed records after it"
                ) from None
            yield record

    def truncate_torn_tail(self) -> int:
        """Chop an unparsable/bad-CRC final record off the log file.

        A crash mid-append leaves a torn tail; real logs must remove it
        before appending again, or the next record would concatenate onto
        the partial line and turn a legal torn tail into mid-log
        corruption.  Returns the number of bytes removed (0 when the log
        is clean or empty).
        """
        self.commit()
        with open(self.path, encoding="utf-8") as f:
            raw_lines = f.readlines()
        kept = len(raw_lines)
        while kept:
            last = raw_lines[kept - 1].strip()
            if not last:
                kept -= 1
                continue
            try:
                record = json.loads(last)
                crc = record.pop("crc", None)
                if crc is not None and zlib.crc32(
                    json.dumps(record).encode("utf-8")
                ) != crc:
                    raise ValueError("checksum mismatch")
            except ValueError:
                kept -= 1
            break
        if kept == len(raw_lines):
            return 0
        keep_bytes = len("".join(raw_lines[:kept]).encode("utf-8"))
        total = os.path.getsize(self.path)
        with open(self.path, "r+", encoding="utf-8") as f:
            f.truncate(keep_bytes)
        _flight_emit(
            "wal_torn_tail",
            path=self.path.name,
            bytes_removed=total - keep_bytes,
        )
        return total - keep_bytes

    def recover(self) -> dict[str, SciArray]:
        """Replay the log, returning the reconstructed arrays by name."""
        arrays: dict[str, SciArray] = {}
        for record in self.entries():
            op = record["op"]
            if op == "create":
                schema = define_array(
                    record["array"] if record["array"].isidentifier() else "recovered",
                    values=[(a["name"], a["type"]) for a in record["attrs"]],
                    dims=[(d["name"], d["size"]) for d in record["dims"]],
                )
                arrays[record["array"]] = SciArray(schema, name=record["array"])
            elif op == "write":
                arr = self._target(arrays, record)
                values = record["values"]
                arr.set(tuple(record["coords"]),
                        None if values is None else tuple(values))
            elif op == "delete":
                arr = self._target(arrays, record)
                arr.delete(tuple(record["coords"]))
            elif op in ("create_updatable", "commit", "load_commit"):
                continue  # replayed by recover_updatable() / node replay
            else:
                raise StorageError(f"unknown WAL op {op!r}")
        return arrays

    @staticmethod
    def _target(arrays: dict[str, SciArray], record: dict[str, Any]) -> SciArray:
        try:
            return arrays[record["array"]]
        except KeyError:
            raise StorageError(
                f"WAL write to array {record['array']!r} before its create "
                "record"
            ) from None
