"""Write-ahead logging and crash recovery for *loaded* arrays.

Section 2.9 contrasts in-situ data — "will not have many DBMS services,
such as recovery" — with DBMS-controlled data, which implicitly does get
them.  This module supplies that recovery service: cell writes are appended
to a per-store log before being acknowledged, and :meth:`WriteAheadLog.recover`
replays the log into fresh arrays after a crash.  The in-situ benchmark
(E9) uses this to make the service-level trade-off concrete.

Records are newline-delimited JSON, fsync'd per commit batch.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Optional

from ..core.array import SciArray
from ..core.errors import StorageError
from ..core.schema import ArraySchema, define_array

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """An append-only redo log covering one directory of arrays."""

    def __init__(self, path: "str | Path", sync: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self._fh = open(self.path, "a", encoding="utf-8")
        self.records_appended = 0

    # -- logging ----------------------------------------------------------------

    def log_create(self, array: SciArray) -> None:
        self._append(
            {
                "op": "create",
                "array": array.name,
                "dims": [
                    {"name": d.name, "size": d.size}
                    for d in array.schema.dimensions
                ],
                "attrs": [
                    {"name": a.name, "type": getattr(a.type, "name", "float64")}
                    for a in array.schema.attributes
                ],
            }
        )

    def log_write(
        self, array_name: str, coords: tuple, values: Optional[tuple]
    ) -> None:
        self._append(
            {
                "op": "write",
                "array": array_name,
                "coords": list(coords),
                "values": None if values is None else list(values),
            }
        )

    def log_delete(self, array_name: str, coords: tuple) -> None:
        self._append({"op": "delete", "array": array_name, "coords": list(coords)})

    # -- updatable (no-overwrite) arrays -----------------------------------------

    def log_create_updatable(self, array: "Any") -> None:
        """Record the schema of an updatable array (Section 2.5)."""
        schema = array.schema
        self._append(
            {
                "op": "create_updatable",
                "array": array.name,
                "dims": [
                    {"name": d.name, "size": d.size}
                    # the implicit history dimension is re-added on replay
                    for d in schema.dimensions
                    if d.name != "history"
                ],
                "attrs": [
                    {"name": a.name, "type": getattr(a.type, "name", "float64")}
                    for a in schema.attributes
                ],
            }
        )

    def log_commit(self, array_name: str, history: int, writes: dict) -> None:
        """Record one no-overwrite transaction commit.

        ``writes`` maps cell coords to a value tuple, ``None`` (NULL), or
        the deletion flag (anything whose repr is ``<DELETED>``).
        """
        from ..history.transactions import DELETED

        encoded = []
        for coords, values in writes.items():
            if values is DELETED:
                encoded.append({"coords": list(coords), "deleted": True})
            else:
                if values is not None and not isinstance(values, tuple):
                    values = (values,)  # bare scalar on a 1-attribute array
                encoded.append(
                    {
                        "coords": list(coords),
                        "values": None if values is None else list(values),
                    }
                )
        self._append(
            {
                "op": "commit",
                "array": array_name,
                "history": history,
                "writes": encoded,
            }
        )

    def recover_updatable(self) -> "dict[str, Any]":
        """Replay create_updatable/commit records into UpdatableArrays."""
        from ..history.transactions import UpdatableArray

        arrays: dict[str, UpdatableArray] = {}
        for record in self.entries():
            op = record["op"]
            if op == "create_updatable":
                schema = define_array(
                    record["array"]
                    if record["array"].isidentifier()
                    else "recovered",
                    values=[(a["name"], a["type"]) for a in record["attrs"]],
                    dims=[(d["name"], d["size"]) for d in record["dims"]],
                    updatable=True,
                )
                arrays[record["array"]] = UpdatableArray(
                    schema,
                    bounds=[d["size"] if d["size"] else "*"
                            for d in record["dims"]] + ["*"],
                    name=record["array"],
                )
            elif op == "commit":
                try:
                    arr = arrays[record["array"]]
                except KeyError:
                    raise StorageError(
                        f"WAL commit for {record['array']!r} before its "
                        "create_updatable record"
                    ) from None
                txn = arr.begin()
                for w in record["writes"]:
                    coords = tuple(w["coords"])
                    if w.get("deleted"):
                        txn.delete(coords)
                    elif w["values"] is None:
                        txn.set_null(coords)
                    else:
                        txn.set(coords, tuple(w["values"]))
                replayed = txn.commit()
                if replayed != record["history"]:
                    raise StorageError(
                        f"replay drift on {record['array']!r}: commit "
                        f"{record['history']} landed at {replayed}"
                    )
            # plain create/write/delete records belong to recover()
        return arrays

    def commit(self) -> None:
        """Durability point: flush (and optionally fsync) the log."""
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def _append(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record) + "\n")
        self.records_appended += 1

    def close(self) -> None:
        self.commit()
        self._fh.close()

    # -- recovery -------------------------------------------------------------------

    def entries(self) -> Iterator[dict[str, Any]]:
        self.commit()
        with open(self.path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A torn final record from a crash is legal; stop there.
                    return

    def recover(self) -> dict[str, SciArray]:
        """Replay the log, returning the reconstructed arrays by name."""
        arrays: dict[str, SciArray] = {}
        for record in self.entries():
            op = record["op"]
            if op == "create":
                schema = define_array(
                    record["array"] if record["array"].isidentifier() else "recovered",
                    values=[(a["name"], a["type"]) for a in record["attrs"]],
                    dims=[(d["name"], d["size"]) for d in record["dims"]],
                )
                arrays[record["array"]] = SciArray(schema, name=record["array"])
            elif op == "write":
                arr = self._target(arrays, record)
                values = record["values"]
                arr.set(tuple(record["coords"]),
                        None if values is None else tuple(values))
            elif op == "delete":
                arr = self._target(arrays, record)
                arr.delete(tuple(record["coords"]))
            elif op in ("create_updatable", "commit"):
                continue  # replayed by recover_updatable()
            else:
                raise StorageError(f"unknown WAL op {op!r}")
        return arrays

    @staticmethod
    def _target(arrays: dict[str, SciArray], record: dict[str, Any]) -> SciArray:
        try:
            return arrays[record["array"]]
        except KeyError:
            raise StorageError(
                f"WAL write to array {record['array']!r} before its create "
                "record"
            ) from None
