"""Pluggable per-bucket compression codecs (Section 2.8).

"What compression algorithms to employ" is one of the paper's open storage
research questions; the engine therefore treats the codec as a per-bucket
choice.  Each codec encodes one numpy array (one attribute of one bucket)
to bytes and back.  :func:`best_codec` implements the simple policy the
benchmarks evaluate: try the candidates on a sample and keep the one with
the best compression ratio.

Codecs:

* ``none`` — raw little-endian bytes (the speed baseline),
* ``zlib`` — DEFLATE over raw bytes,
* ``delta`` — per-element delta in the array's flattened order, then zlib;
  effective on smooth science fields and monotone dimensions,
* ``rle`` — run-length encoding of repeated values, then zlib; effective on
  masks, cloud flags and mostly-constant calibration planes.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Iterable, Optional

import numpy as np

from ..core.errors import StorageError

__all__ = [
    "Codec",
    "NoneCodec",
    "ZlibCodec",
    "DeltaZlibCodec",
    "RleCodec",
    "CODECS",
    "register_codec",
    "get_codec",
    "best_codec",
]


class Codec:
    """Interface: byte-level compression of one ndarray."""

    name: str = "abstract"

    def encode(self, array: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    # -- helpers shared by subclasses ------------------------------------------

    @staticmethod
    def _to_bytes(array: np.ndarray) -> bytes:
        if array.dtype == object:
            return pickle.dumps(list(array.ravel()), protocol=4)
        return np.ascontiguousarray(array).tobytes()

    @staticmethod
    def _from_bytes(payload: bytes, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        if dtype == object:
            flat = pickle.loads(payload)
            out = np.empty(int(np.prod(shape)) if shape else 1, dtype=object)
            out[:] = flat
            return out.reshape(shape)
        return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()


class NoneCodec(Codec):
    """No compression; raw bytes."""

    name = "none"

    def encode(self, array: np.ndarray) -> bytes:
        return self._to_bytes(array)

    def decode(self, payload, dtype, shape):
        return self._from_bytes(payload, dtype, shape)


class ZlibCodec(Codec):
    """DEFLATE over the raw byte image."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, array: np.ndarray) -> bytes:
        return zlib.compress(self._to_bytes(array), self.level)

    def decode(self, payload, dtype, shape):
        return self._from_bytes(zlib.decompress(payload), dtype, shape)


class DeltaZlibCodec(Codec):
    """First-order delta along the flattened order, then DEFLATE.

    Numeric dtypes only; falls back to plain zlib for object arrays.
    """

    name = "delta"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, array: np.ndarray) -> bytes:
        if array.dtype == object:
            return b"O" + zlib.compress(self._to_bytes(array), self.level)
        flat = np.ascontiguousarray(array).ravel()
        if flat.size == 0:
            return b"D" + zlib.compress(b"", self.level)
        if np.issubdtype(flat.dtype, np.floating):
            # Delta floats via their integer bit patterns (lossless).
            bits = flat.view(np.uint64 if flat.dtype == np.float64 else np.uint32)
            delta = np.diff(bits, prepend=bits.dtype.type(0))
        elif flat.dtype == np.bool_:
            # Bool arithmetic is logical in numpy; delta the byte image.
            bits = flat.view(np.uint8)
            delta = np.diff(bits, prepend=np.uint8(0))
        else:
            delta = np.diff(flat, prepend=flat.dtype.type(0))
        return b"D" + zlib.compress(delta.tobytes(), self.level)

    def decode(self, payload, dtype, shape):
        tag, body = payload[:1], payload[1:]
        raw = zlib.decompress(body)
        if tag == b"O":
            return self._from_bytes(raw, dtype, shape)
        dtype = np.dtype(dtype)
        if np.issubdtype(dtype, np.floating):
            bits_dtype = np.uint64 if dtype == np.float64 else np.uint32
            delta = np.frombuffer(raw, dtype=bits_dtype)
            bits = np.cumsum(delta.astype(np.uint64), dtype=np.uint64)
            if bits_dtype == np.uint32:
                bits = bits.astype(np.uint32)
            return bits.view(dtype if dtype == np.float64 else np.float32).reshape(shape).copy()
        if dtype == np.bool_:
            delta = np.frombuffer(raw, dtype=np.uint8)
            bits = np.cumsum(delta.astype(np.uint64)).astype(np.uint8)
            return bits.view(np.bool_).reshape(shape).copy()
        delta = np.frombuffer(raw, dtype=dtype)
        return np.cumsum(delta, dtype=dtype).reshape(shape).copy()


class RleCodec(Codec):
    """Run-length encoding of equal consecutive values, then DEFLATE."""

    name = "rle"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, array: np.ndarray) -> bytes:
        if array.dtype == object:
            return b"O" + zlib.compress(self._to_bytes(array), self.level)
        flat = np.ascontiguousarray(array).ravel()
        if flat.size == 0:
            runs = np.empty(0, dtype=np.int64)
            values = flat
        else:
            boundary = np.empty(flat.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = flat[1:] != flat[:-1]
            starts = np.flatnonzero(boundary)
            lengths = np.diff(np.append(starts, flat.size))
            values = flat[starts]
            runs = lengths.astype(np.int64)
        payload = runs.tobytes() + values.tobytes()
        header = struct.pack("<q", runs.size)
        return b"R" + header + zlib.compress(payload, self.level)

    def decode(self, payload, dtype, shape):
        tag = payload[:1]
        if tag == b"O":
            return self._from_bytes(zlib.decompress(payload[1:]), dtype, shape)
        (n_runs,) = struct.unpack("<q", payload[1:9])
        raw = zlib.decompress(payload[9:])
        runs = np.frombuffer(raw[: 8 * n_runs], dtype=np.int64)
        values = np.frombuffer(raw[8 * n_runs :], dtype=dtype)
        return np.repeat(values, runs).reshape(shape).copy()


CODECS: dict[str, Codec] = {}


def register_codec(codec: Codec, replace: bool = False) -> Codec:
    if codec.name in CODECS and not replace:
        raise StorageError(f"codec {codec.name!r} already registered")
    CODECS[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    try:
        return CODECS[name]
    except KeyError:
        raise StorageError(f"unknown codec {name!r}") from None


register_codec(NoneCodec())
register_codec(ZlibCodec())
register_codec(DeltaZlibCodec())
register_codec(RleCodec())


def best_codec(
    sample: np.ndarray, candidates: Optional[Iterable[str]] = None
) -> Codec:
    """Pick the candidate with the smallest encoded size on *sample*.

    Ties break toward the cheaper codec (candidate order).  This is the
    "auto" policy used when a bucket is spilled with ``codec='auto'``.
    """
    names = list(candidates) if candidates else ["none", "zlib", "delta", "rle"]
    best: Optional[Codec] = None
    best_size = None
    for name in names:
        codec = get_codec(name)
        size = len(codec.encode(sample))
        if best_size is None or size < best_size:
            best, best_size = codec, size
    assert best is not None
    return best
