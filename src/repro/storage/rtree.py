"""An n-dimensional R-tree (Section 2.8).

"An R-tree keeps track of the size of the various buckets."  This is a
classic Guttman R-tree with quadratic split, generalised to any number of
dimensions.  Boxes are inclusive integer (or float) intervals
``(lo_tuple, hi_tuple)``; values are opaque (the storage manager stores
bucket ids, the grid layer partition ids).

The tree supports insert, delete, window search, and overlap counting; the
planner uses :meth:`RTree.search` for bucket pruning (experiment E2).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..core.errors import StorageError

__all__ = ["RTree", "Box"]

Box = tuple[tuple, tuple]  # (lo coords, hi coords), inclusive


def _valid_box(box: Box) -> Box:
    lo, hi = box
    if len(lo) != len(hi):
        raise StorageError(f"box corners differ in dimensionality: {box}")
    if any(l > h for l, h in zip(lo, hi)):
        raise StorageError(f"box has inverted interval: {box}")
    return tuple(lo), tuple(hi)


def _intersects(a: Box, b: Box) -> bool:
    return all(al <= bh and bl <= ah
               for al, ah, bl, bh in zip(a[0], a[1], b[0], b[1]))


def _contains(outer: Box, inner: Box) -> bool:
    return all(ol <= il and ih <= oh
               for ol, oh, il, ih in zip(outer[0], outer[1], inner[0], inner[1]))


def _union(a: Box, b: Box) -> Box:
    return (
        tuple(min(al, bl) for al, bl in zip(a[0], b[0])),
        tuple(max(ah, bh) for ah, bh in zip(a[1], b[1])),
    )


def _volume(box: Box) -> float:
    v = 1.0
    for l, h in zip(box[0], box[1]):
        v *= (h - l + 1)
    return v


def _enlargement(box: Box, extra: Box) -> float:
    return _volume(_union(box, extra)) - _volume(box)


class _Node:
    __slots__ = ("leaf", "entries", "box")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # leaf entries: (box, value); inner entries: (box, child _Node)
        self.entries: list[tuple[Box, Any]] = []
        self.box: Optional[Box] = None

    def recompute_box(self) -> None:
        if not self.entries:
            self.box = None
            return
        box = self.entries[0][0]
        for b, _ in self.entries[1:]:
            box = _union(box, b)
        self.box = box


class RTree:
    """Guttman R-tree with quadratic split.

    Parameters
    ----------
    max_entries:
        Node capacity M; nodes split when exceeding it.
    min_entries:
        Minimum fill m (defaults to ``max_entries // 2``).
    """

    def __init__(self, max_entries: int = 8, min_entries: Optional[int] = None) -> None:
        if max_entries < 2:
            raise StorageError("max_entries must be >= 2")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max_entries // 2
        if not 1 <= self.min_entries <= max_entries // 2:
            raise StorageError("min_entries must be in [1, max_entries // 2]")
        self._root = _Node(leaf=True)
        self._size = 0
        self.ndim: Optional[int] = None

    def __len__(self) -> int:
        return self._size

    # -- insertion -------------------------------------------------------------

    def insert(self, box: Box, value: Any) -> None:
        box = _valid_box(box)
        if self.ndim is None:
            self.ndim = len(box[0])
        elif len(box[0]) != self.ndim:
            raise StorageError(
                f"box is {len(box[0])}-D, tree is {self.ndim}-D"
            )
        if not self._root.leaf and not self._root.entries:
            # Deletions may have emptied an inner root; restart as a leaf.
            self._root = _Node(leaf=True)
        split = self._insert(self._root, box, value)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False)
            for node in (old_root, split):
                node.recompute_box()
                self._root.entries.append((node.box, node))
            self._root.recompute_box()
        self._size += 1

    def _insert(self, node: _Node, box: Box, value: Any) -> Optional[_Node]:
        if node.leaf:
            node.entries.append((box, value))
        else:
            best_i = min(
                range(len(node.entries)),
                key=lambda i: (
                    _enlargement(node.entries[i][0], box),
                    _volume(node.entries[i][0]),
                ),
            )
            child_box, child = node.entries[best_i]
            split = self._insert(child, box, value)
            child.recompute_box()
            node.entries[best_i] = (child.box, child)
            if split is not None:
                split.recompute_box()
                node.entries.append((split.box, split))
        node.recompute_box()
        if len(node.entries) > self.max_entries:
            return self._quadratic_split(node)
        return None

    def _quadratic_split(self, node: _Node) -> _Node:
        entries = node.entries
        # Pick the pair wasting the most volume as seeds.
        worst = None
        seed_a = seed_b = 0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    _volume(_union(entries[i][0], entries[j][0]))
                    - _volume(entries[i][0])
                    - _volume(entries[j][0])
                )
                if worst is None or waste > worst:
                    worst, seed_a, seed_b = waste, i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a, box_b = entries[seed_a][0], entries[seed_b][0]
        rest = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]
        for k, entry in enumerate(rest):
            remaining = len(rest) - k
            if len(group_a) + remaining <= self.min_entries:
                group_a.append(entry)
                box_a = _union(box_a, entry[0])
                continue
            if len(group_b) + remaining <= self.min_entries:
                group_b.append(entry)
                box_b = _union(box_b, entry[0])
                continue
            if _enlargement(box_a, entry[0]) <= _enlargement(box_b, entry[0]):
                group_a.append(entry)
                box_a = _union(box_a, entry[0])
            else:
                group_b.append(entry)
                box_b = _union(box_b, entry[0])
        node.entries = group_a
        node.recompute_box()
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        sibling.recompute_box()
        return sibling

    # -- queries -----------------------------------------------------------------

    def search(self, window: Box) -> Iterator[tuple[Box, Any]]:
        """All (box, value) entries intersecting *window*."""
        window = _valid_box(window)
        if self._root.box is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is None or not _intersects(node.box, window):
                continue
            for box, payload in node.entries:
                if not _intersects(box, window):
                    continue
                if node.leaf:
                    yield box, payload
                else:
                    stack.append(payload)

    def covering(self, point: Sequence) -> Iterator[tuple[Box, Any]]:
        """Entries whose box contains *point*."""
        pt = tuple(point)
        yield from self.search((pt, pt))

    def all_entries(self) -> Iterator[tuple[Box, Any]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            for box, payload in node.entries:
                if node.leaf:
                    yield box, payload
                else:
                    stack.append(payload)

    def bounding_box(self) -> Optional[Box]:
        return self._root.box

    # -- deletion ---------------------------------------------------------------

    def delete(self, box: Box, value: Any) -> bool:
        """Remove one entry matching (box, value); returns whether found.

        Underfull nodes are handled by reinsertion of their residue —
        simple and adequate for bucket-merge workloads.
        """
        box = _valid_box(box)
        found = self._delete(self._root, box, value)
        if found:
            self._size -= 1
            if not self._root.leaf and len(self._root.entries) == 1:
                only = self._root.entries[0][1]
                self._root = only
        return found

    def _delete(self, node: _Node, box: Box, value: Any) -> bool:
        if node.leaf:
            for i, (b, v) in enumerate(node.entries):
                if b == box and v == value:
                    del node.entries[i]
                    node.recompute_box()
                    return True
            return False
        for i, (b, child) in enumerate(node.entries):
            if _contains(b, box) or _intersects(b, box):
                if self._delete(child, box, value):
                    if not child.entries:
                        del node.entries[i]
                    else:
                        node.entries[i] = (child.box, child)
                    node.recompute_box()
                    return True
        return False

    def depth(self) -> int:
        d = 1
        node = self._root
        while not node.leaf:
            if not node.entries:
                break
            node = node.entries[0][1]
            d += 1
        return d
