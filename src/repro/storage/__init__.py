"""Within-node storage management (Sections 2.8, 2.9).

The paper's design: data arrives through a streaming bulk loader ordered by
a dominant dimension; when main memory is nearly full the storage manager
forms the buffered cells into variable-size rectangular *buckets* (defined
by a stride in each dimension), compresses each bucket, and writes it to
disk; an R-tree tracks bucket extents; a background thread merges small
buckets into larger ones (Vertica-style).  SciDB must also operate on
*in-situ* data — external files exposed through adaptors without a load
stage — at a reduced service level (no recovery).

Modules:

* :mod:`repro.storage.bucket` — the rectangular bucket unit
* :mod:`repro.storage.compression` — pluggable codecs
* :mod:`repro.storage.rtree` — R-tree over bucket bounding boxes
* :mod:`repro.storage.manager` — buffer/spill/merge storage manager
* :mod:`repro.storage.loader` — streaming bulk loader
* :mod:`repro.storage.format` — the self-describing container format
* :mod:`repro.storage.insitu` — in-situ adaptors (CSV, NPY, container)
* :mod:`repro.storage.wal` — write-ahead log + recovery for loaded arrays
"""

from .bucket import Bucket
from .compression import (
    CODECS,
    Codec,
    DeltaZlibCodec,
    NoneCodec,
    RleCodec,
    ZlibCodec,
    best_codec,
    get_codec,
    register_codec,
)
from .rtree import RTree
from .manager import ChunkCache, PersistentArray, StorageManager, StorageStats
from .loader import BulkLoader, LoadRecord, LoadReport
from .quarantine import QuarantinedRecord, QuarantineStore
from .format import read_container, write_container
from .insitu import CsvAdaptor, InSituArray, NpyAdaptor, SciDBContainerAdaptor, open_in_situ
from .wal import WriteAheadLog

__all__ = [
    "Bucket",
    "Codec",
    "NoneCodec",
    "ZlibCodec",
    "DeltaZlibCodec",
    "RleCodec",
    "CODECS",
    "get_codec",
    "register_codec",
    "best_codec",
    "RTree",
    "StorageManager",
    "PersistentArray",
    "StorageStats",
    "ChunkCache",
    "BulkLoader",
    "LoadRecord",
    "LoadReport",
    "QuarantineStore",
    "QuarantinedRecord",
    "write_container",
    "read_container",
    "InSituArray",
    "CsvAdaptor",
    "NpyAdaptor",
    "SciDBContainerAdaptor",
    "open_in_situ",
    "WriteAheadLog",
]
