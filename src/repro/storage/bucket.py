"""The rectangular bucket: the unit of on-disk storage (Section 2.8).

"Within a node an array partition is divided into variable size rectangular
buckets."  A bucket covers an axis-aligned box of cells; it stores a dense
state mask plus one value plane per attribute, each independently
compressed by a chosen codec.  Buckets serialise to a small self-describing
binary image (magic + pickled header + codec payloads) written to one file
each by the storage manager.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from ..core.array import Chunk
from ..core.cells import Cell, CellState
from ..core.datatypes import ScalarType
from ..core.errors import StorageError
from ..core.schema import ArraySchema
from .compression import Codec, best_codec, get_codec

__all__ = ["Bucket"]

Coords = tuple[int, ...]

_MAGIC = b"SBKT1\n"


class Bucket:
    """A compressed rectangular slab of one array's cells."""

    def __init__(
        self,
        schema: ArraySchema,
        origin: Coords,
        shape: tuple[int, ...],
        state: np.ndarray,
        data: dict[str, np.ndarray],
    ) -> None:
        self.schema = schema
        self.origin = tuple(int(c) for c in origin)
        self.shape = tuple(int(s) for s in shape)
        self.state = state
        self.data = data

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_cells(
        cls,
        schema: ArraySchema,
        cells: Sequence[tuple[Coords, Optional[tuple]]],
    ) -> "Bucket":
        """Build the tightest bucket containing *cells*.

        Each element is ``(coords, values_tuple_or_None)`` — ``None`` for a
        NULL cell.
        """
        if not cells:
            raise StorageError("cannot build a bucket from no cells")
        ndim = len(cells[0][0])
        lo = tuple(min(c[d] for c, _ in cells) for d in range(ndim))
        hi = tuple(max(c[d] for c, _ in cells) for d in range(ndim))
        shape = tuple(h - l + 1 for l, h in zip(lo, hi))
        state = np.zeros(shape, dtype=np.uint8)
        data: dict[str, np.ndarray] = {}
        for attr in schema.attributes:
            if isinstance(attr.type, ScalarType) and attr.type.numpy_dtype != object:
                data[attr.name] = np.zeros(shape, dtype=attr.type.numpy_dtype)
            else:
                data[attr.name] = np.empty(shape, dtype=object)
        for coords, values in cells:
            off = tuple(c - l for c, l in zip(coords, lo))
            if values is None:
                state[off] = CellState.NULL
                continue
            state[off] = CellState.PRESENT
            for attr, v in zip(schema.attributes, values):
                data[attr.name][off] = v
        return cls(schema, lo, shape, state, data)

    # -- geometry / stats ---------------------------------------------------------

    @property
    def box(self) -> tuple[Coords, Coords]:
        hi = tuple(o + s - 1 for o, s in zip(self.origin, self.shape))
        return self.origin, hi

    @property
    def cell_count(self) -> int:
        return int(np.count_nonzero(self.state != CellState.EMPTY))

    @property
    def volume(self) -> int:
        return int(np.prod(self.shape))

    @property
    def occupancy(self) -> float:
        return self.cell_count / self.volume if self.volume else 0.0

    @property
    def nbytes(self) -> int:
        """Approximate decoded size in memory (cache accounting)."""
        return int(self.state.nbytes) + sum(
            int(plane.nbytes) for plane in self.data.values()
        )

    def cells(
        self, window: Optional[tuple[Coords, Coords]] = None
    ) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """Iterate stored cells, restricted to *window* (inclusive) if given.

        The window path slices the state/value planes down to the
        intersection box with numpy before the per-cell loop, so a small
        window over a large bucket pays for the cells it returns, not the
        whole slab.
        """
        names = self.schema.attr_names
        state = self.state
        origin = self.origin
        data = self.data
        if window is not None:
            lo, hi = window
            start = tuple(max(0, l - o) for l, o in zip(lo, origin))
            stop = tuple(
                min(s - 1, h - o)
                for h, o, s in zip(hi, origin, self.shape)
            )
            if any(a > b for a, b in zip(start, stop)):
                return
            slices = tuple(slice(a, b + 1) for a, b in zip(start, stop))
            state = state[slices]
            origin = tuple(o + a for o, a in zip(origin, start))
            data = {n: data[n][slices] for n in names}
        occupied = np.argwhere(state != CellState.EMPTY)
        if occupied.size == 0:
            return
        # Bulk extraction: one fancy-index + tolist() per plane converts
        # every occupied value at C speed, instead of a per-cell, per-
        # attribute .item() loop (the old read path's hottest line).
        coords_list = (occupied + np.asarray(origin)).tolist()
        idx = tuple(occupied[:, d] for d in range(occupied.shape[1]))
        nulls = (state[idx] == CellState.NULL).tolist()
        columns = [data[n][idx].tolist() for n in names]
        value_rows = (
            zip(*columns) if columns else iter(() for _ in coords_list)
        )
        for coords, is_null, values in zip(
            coords_list, nulls, value_rows
        ):
            coords = tuple(coords)
            if is_null:
                yield coords, None
            else:
                yield coords, Cell(names, values)

    def merge(self, other: "Bucket") -> "Bucket":
        """Combine two buckets of the same array into one covering both
        (the Vertica-style background-merge primitive)."""
        if other.schema.attr_names != self.schema.attr_names:
            raise StorageError("cannot merge buckets of different schemas")
        cells = list(self.cells()) + list(other.cells())
        flat = [
            (coords, None if cell is None else cell.values)
            for coords, cell in cells
        ]
        return Bucket.from_cells(self.schema, flat)

    # -- serialisation --------------------------------------------------------------

    def to_bytes(self, codec: "str | Codec" = "auto") -> bytes:
        """Serialise; ``codec='auto'`` picks per-attribute via best_codec."""
        planes: list[bytes] = []
        plane_meta: list[dict[str, Any]] = []

        def encode_plane(name: str, arr: np.ndarray) -> None:
            if codec == "auto":
                chosen = best_codec(arr)
            elif isinstance(codec, Codec):
                chosen = codec
            else:
                chosen = get_codec(codec)
            payload = chosen.encode(arr)
            planes.append(payload)
            plane_meta.append(
                {
                    "name": name,
                    "codec": chosen.name,
                    "dtype": "object" if arr.dtype == object else arr.dtype.str,
                    "nbytes": len(payload),
                }
            )

        encode_plane("__state__", self.state)
        for attr in self.schema.attributes:
            encode_plane(attr.name, self.data[attr.name])

        header = pickle.dumps(
            {
                "origin": self.origin,
                "shape": self.shape,
                "attrs": [a.name for a in self.schema.attributes],
                "planes": plane_meta,
            },
            protocol=4,
        )
        out = bytearray()
        out += _MAGIC
        out += struct.pack("<I", len(header))
        out += header
        for p in planes:
            out += p
        return bytes(out)

    @classmethod
    def from_bytes(cls, schema: ArraySchema, payload: bytes) -> "Bucket":
        if payload[: len(_MAGIC)] != _MAGIC:
            raise StorageError("not a bucket image (bad magic)")
        off = len(_MAGIC)
        (hlen,) = struct.unpack_from("<I", payload, off)
        off += 4
        header = pickle.loads(payload[off : off + hlen])
        off += hlen
        shape = tuple(header["shape"])
        state: Optional[np.ndarray] = None
        data: dict[str, np.ndarray] = {}
        for meta in header["planes"]:
            blob = payload[off : off + meta["nbytes"]]
            off += meta["nbytes"]
            codec = get_codec(meta["codec"])
            dtype = np.dtype(object) if meta["dtype"] == "object" else np.dtype(meta["dtype"])
            plane = codec.decode(blob, dtype, shape)
            if meta["name"] == "__state__":
                state = plane.astype(np.uint8)
            else:
                data[meta["name"]] = plane
        if state is None:
            raise StorageError("bucket image missing state plane")
        missing = set(schema.attr_names) - set(data)
        if missing:
            raise StorageError(f"bucket image missing attributes {sorted(missing)}")
        return cls(schema, tuple(header["origin"]), shape, state, data)

    def __repr__(self) -> str:
        return (
            f"<Bucket origin={self.origin} shape={self.shape} "
            f"{self.cell_count}/{self.volume} cells>"
        )
