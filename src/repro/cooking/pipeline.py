"""Composable cooking pipelines executed through the provenance engine
(Sections 2.10, 2.11).

A :class:`CookingStep` is a named engine operation; a
:class:`CookingPipeline` runs a sequence of them through a
:class:`~repro.provenance.log.ProvenanceEngine`, so "accurate provenance
information" is recorded for every intermediate — the paper's argument for
cooking *inside* the DBMS.

The compositing step implements the paper's named-version use case
directly: a composite image is built from several satellite passes by
picking, per cell, "the observation with least cloud cover" — and a
scientist who instead wants "the observation when the satellite is closest
to being directly overhead" gets it via :func:`recook_region`, which
re-composites only their study region into a named version.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from ..core.array import SciArray
from ..core.cells import Cell
from ..core.errors import SchemaError
from ..core.ops import register_operator
from ..core.schema import ArraySchema, define_array
from ..history.versions import Version
from ..provenance.log import ProvenanceEngine
from ..storage.loader import BulkLoader, LoadRecord, LoadReport
from ..storage.manager import StorageManager
from ..storage.quarantine import QuarantineStore

__all__ = [
    "CookingStep",
    "CookingPipeline",
    "load_stage",
    "decode_counts",
    "calibrate",
    "cloud_filter",
    "regrid_step",
    "apply_step",
    "composite_passes",
    "recook_region",
    "COMPOSITE_SCHEMA",
    "PASS_SCHEMA",
]

#: One satellite pass: measured value + cloud fraction + off-nadir angle.
PASS_SCHEMA = define_array(
    "SatellitePass",
    values={"value": "float", "cloud": "float", "zenith": "float"},
    dims=["x", "y"],
)

#: A cooked composite: the chosen value plus which pass supplied it.
COMPOSITE_SCHEMA = define_array(
    "Composite",
    values={"value": "float", "source_pass": "int32"},
    dims=["x", "y"],
)

#: Compositing strategies (Section 2.11's two scientists).
STRATEGIES = ("least_cloud", "most_overhead")


@dataclass(frozen=True)
class CookingStep:
    """One named stage of a pipeline: an operator plus its parameters."""

    op: str
    params: dict
    label: str

    def output_name(self, base: str, index: int) -> str:
        return f"{base}__{index}_{self.label}"


class CookingPipeline:
    """A sequence of cooking steps run through the provenance engine."""

    def __init__(self, engine: ProvenanceEngine, steps: Sequence[CookingStep]) -> None:
        if not steps:
            raise SchemaError("a cooking pipeline needs at least one step")
        self.engine = engine
        self.steps = list(steps)

    def run(self, input_name: str, output_name: Optional[str] = None) -> SciArray:
        """Cook catalog array *input_name*; every step is logged."""
        current = input_name
        result: Optional[SciArray] = None
        for i, step in enumerate(self.steps):
            is_last = i == len(self.steps) - 1
            out = (
                output_name
                if (is_last and output_name)
                else step.output_name(input_name, i)
            )
            result = self.engine.execute(step.op, [current], out, **step.params)
            current = out
        assert result is not None
        return result


# -- stage 0: durable ingest of the raw stream -------------------------------------


def load_stage(
    stream: Iterable[LoadRecord],
    schema: ArraySchema,
    directory: "str | Path",
    name: str = "raw",
    batch_size: int = 64,
    tolerant: bool = True,
    quarantine: Optional[QuarantineStore] = None,
    load_epoch: int = 0,
) -> tuple[SciArray, LoadReport]:
    """Stage 0 of every cooking pipeline: get the raw data in, durably.

    The paper's scientists are "still trying to load my data" — so the
    ingest that feeds a pipeline must not restart from byte zero when a
    feed hiccups.  This drives *stream* through the checkpointed
    :class:`~repro.storage.loader.BulkLoader` into a persistent array
    under *directory*: batches commit atomically, a crash mid-stream
    resumes from the last committed batch on the next call with the same
    *load_epoch*, and (in the default tolerant mode) malformed records are
    quarantined with their source offsets instead of poisoning the cook.

    Returns the materialised raw array (ready for
    :meth:`CookingPipeline.run`) and the :class:`LoadReport` describing
    what was loaded, skipped, and quarantined.
    """
    manager = StorageManager(Path(directory))
    target = manager.ensure_array(name, schema)
    loader = BulkLoader(
        {0: target},
        batch_size=batch_size,
        load_epoch=load_epoch,
        tolerant=tolerant,
        quarantine=quarantine,
    )
    with loader:
        loader.load(stream)
    return target.to_sciarray(name), loader.report()


# -- step constructors -------------------------------------------------------------


def decode_counts(
    gain: float = 0.01, offset: float = 100.0, attr: str = "counts"
) -> CookingStep:
    """Counts → physical units (the decode stage)."""

    def fn(cell: Cell) -> float:
        return gain * (getattr(cell, attr) - offset)

    return CookingStep(
        "apply",
        {"fn": fn, "output": [("value", "float")]},
        label="decode",
    )


def calibrate(scale: float, bias: float = 0.0, attr: str = "value") -> CookingStep:
    """Apply a calibration correction ('correcting for calibration
    information')."""

    def fn(cell: Cell) -> float:
        return scale * getattr(cell, attr) + bias

    return CookingStep(
        "apply", {"fn": fn, "output": [("value", "float")]}, label="calibrate"
    )


def cloud_filter(max_cloud: float, attr: str = "cloud") -> CookingStep:
    """NULL out cloudy cells ('correcting for cloud cover')."""
    return CookingStep(
        "filter",
        {"predicate": lambda cell: getattr(cell, attr) <= max_cloud},
        label="cloudmask",
    )


def regrid_step(factors: Sequence[int], agg: str = "avg",
                attr: Optional[str] = None) -> CookingStep:
    return CookingStep(
        "regrid",
        {"factors": list(factors), "agg": agg, "attr": attr},
        label="regrid",
    )


def apply_step(fn: Callable[[Cell], object],
               output: Sequence[tuple[str, str]], label: str) -> CookingStep:
    """An arbitrary user cooking stage."""
    return CookingStep("apply", {"fn": fn, "output": list(output)}, label=label)


# -- multi-pass compositing (the Section 2.11 use case) -------------------------------


def _pick(strategy: str, candidates: list[tuple[int, Cell]]) -> tuple[int, Cell]:
    if strategy == "least_cloud":
        return min(candidates, key=lambda pc: pc[1].cloud)
    if strategy == "most_overhead":
        return min(candidates, key=lambda pc: abs(pc[1].zenith))
    raise SchemaError(
        f"unknown compositing strategy {strategy!r}; choose from {STRATEGIES}"
    )


def composite_passes(
    *passes: SciArray,
    strategy: str = "least_cloud",
    name: str = "composite",
) -> SciArray:
    """Build one composite from several satellite passes.

    Per cell, the strategy selects which pass's observation survives:
    ``least_cloud`` (the default cooking algorithm) or ``most_overhead``
    (the dissenting scientist's).  Cells observed by no pass stay EMPTY.
    """
    if not passes:
        raise SchemaError("compositing needs at least one pass")
    bounds = passes[0].bounds
    for p in passes[1:]:
        if p.bounds != bounds:
            raise SchemaError("all passes must cover the same grid")
    out = COMPOSITE_SCHEMA.create(name, list(bounds))
    per_cell: dict[tuple, list[tuple[int, Cell]]] = {}
    for idx, p in enumerate(passes, start=1):
        for coords, cell in p.cells(include_null=False):
            per_cell.setdefault(coords, []).append((idx, cell))
    for coords, candidates in per_cell.items():
        source, chosen = _pick(strategy, candidates)
        out[coords] = (chosen.value, source)
    return out


register_operator("composite_passes", composite_passes)


def recook_region(
    version: Version,
    region: tuple[tuple[int, ...], tuple[int, ...]],
    passes: Sequence[SciArray],
    strategy: str = "most_overhead",
) -> int:
    """Re-composite only *region* with a different strategy, writing the
    replacement values into a named version (Section 2.11's scenario:
    "the same as a parent data set for much of the study region, but
    different in a portion").

    Returns the number of cells written to the version's delta — which is
    what "consumes essentially no space" means operationally.
    """
    lo, hi = region
    per_cell: dict[tuple, list[tuple[int, Cell]]] = {}
    for idx, p in enumerate(passes, start=1):
        for coords, cell in p.cells(include_null=False):
            if all(l <= c <= h for c, l, h in zip(coords, lo, hi)):
                per_cell.setdefault(coords, []).append((idx, cell))
    if not per_cell:
        return 0
    txn = version.begin()
    for coords, candidates in per_cell.items():
        source, chosen = _pick(strategy, candidates)
        txn.set(coords, (chosen.value, source))
    txn.commit()
    return len(per_cell)
