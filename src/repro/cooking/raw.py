"""Raw instrument readings and their decode stage (Section 2.10).

The first cooking step everywhere: "converting sensor information into
standard data types".  A :class:`RawReading` is what a (simulated)
instrument emits — integer sensor counts plus housekeeping; the
:class:`RawDecoder` turns counts into physical units using the
instrument's gain/offset, flagging saturated and dead readings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..core.array import SciArray
from ..core.errors import SchemaError
from ..core.schema import ArraySchema, define_array

__all__ = ["RawReading", "RawDecoder", "RAW_SCHEMA", "DECODED_SCHEMA"]

#: Raw telemetry: integer counts plus per-reading housekeeping.
RAW_SCHEMA = define_array(
    "RawFrame",
    values={"counts": "int32", "detector_temp": "float"},
    dims=["x", "y"],
)

#: Decoded physical units plus quality flag.
DECODED_SCHEMA = define_array(
    "DecodedFrame",
    values={"radiance": "float", "quality": "int32"},
    dims=["x", "y"],
)

#: Quality flags.
QUALITY_GOOD = 0
QUALITY_SATURATED = 1
QUALITY_DEAD = 2


@dataclass(frozen=True)
class RawReading:
    """One sensor sample as emitted by an instrument."""

    x: int
    y: int
    counts: int
    detector_temp: float = 293.0


class RawDecoder:
    """Counts → radiance with saturation/dead-pixel flagging.

    ``radiance = gain * (counts - offset)``, with a linear temperature
    correction term — a standard first-order radiometric model.
    """

    def __init__(
        self,
        gain: float = 0.01,
        offset: float = 100.0,
        saturation: int = 60000,
        temp_coefficient: float = 0.0,
        reference_temp: float = 293.0,
    ) -> None:
        if gain <= 0:
            raise SchemaError("decoder gain must be positive")
        self.gain = gain
        self.offset = offset
        self.saturation = saturation
        self.temp_coefficient = temp_coefficient
        self.reference_temp = reference_temp

    def decode_one(self, reading: RawReading) -> tuple[float, int]:
        """Physical value + quality flag for one reading."""
        if reading.counts <= 0:
            return 0.0, QUALITY_DEAD
        if reading.counts >= self.saturation:
            return (
                self.gain * (self.saturation - self.offset),
                QUALITY_SATURATED,
            )
        correction = self.temp_coefficient * (
            reading.detector_temp - self.reference_temp
        )
        return self.gain * (reading.counts - self.offset) + correction, QUALITY_GOOD

    def frame_from_readings(
        self, readings: Iterable[RawReading], bounds: tuple[int, int]
    ) -> SciArray:
        """Assemble raw readings into a RawFrame array."""
        frame = RAW_SCHEMA.create("raw_frame", list(bounds))
        for r in readings:
            frame[r.x, r.y] = (r.counts, r.detector_temp)
        return frame

    def decode_frame(self, raw_frame: SciArray) -> SciArray:
        """Decode a whole RawFrame into a DecodedFrame (cell by cell)."""
        out = DECODED_SCHEMA.create("decoded_frame", list(raw_frame.bounds))
        for coords, cell in raw_frame.cells(include_null=False):
            value, flag = self.decode_one(
                RawReading(coords[0], coords[1], cell.counts, cell.detector_temp)
            )
            out[coords] = (value, flag)
        return out
