"""In-engine cooking of raw instrument data (Section 2.10).

"Most scientific data comes from instruments observing a physical process
... sensor readings enter a cooking process whereby raw information is
cooked into finished information."  The paper's goal: "enable cooking
inside the engine if the user desires", because in-engine cooking records
accurate provenance.

* :mod:`repro.cooking.raw` — raw-reading decode (counts → physical units)
* :mod:`repro.cooking.pipeline` — composable cooking steps executed through
  the provenance engine, including the multi-pass compositing step whose
  per-scientist variants motivate named versions (Section 2.11)
"""

from .raw import RawDecoder, RawReading
from .pipeline import (
    CookingPipeline,
    CookingStep,
    apply_step,
    calibrate,
    cloud_filter,
    composite_passes,
    decode_counts,
    load_stage,
    recook_region,
    regrid_step,
)

__all__ = [
    "RawReading",
    "RawDecoder",
    "CookingStep",
    "CookingPipeline",
    "load_stage",
    "decode_counts",
    "calibrate",
    "cloud_filter",
    "regrid_step",
    "apply_step",
    "composite_passes",
    "recook_region",
]
