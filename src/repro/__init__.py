"""repro — a Python reproduction of SciDB as specified in
"Requirements for Science Data Bases and SciDB" (CIDR 2009).

The package is organised by the paper's requirement sections:

* :mod:`repro.core` — array data model and operators (§2.1–2.3, 2.13)
* :mod:`repro.storage` — within-node bucketed storage, bulk load, in-situ
  adaptors (§2.8, 2.9)
* :mod:`repro.cluster` — shared-nothing grid, partitioning, designer (§2.7)
* :mod:`repro.history` — no-overwrite transactions, time travel, named
  versions (§2.5, 2.11)
* :mod:`repro.provenance` — command log, lineage tracing (§2.12)
* :mod:`repro.query` — parse trees, textual language, planner, Python
  binding (§2.4)
* :mod:`repro.cooking` — in-engine cooking pipelines (§2.10)
* :mod:`repro.baseline` — relational engine + array-on-table simulation
  (the ASAP comparison, §2.1)
* :mod:`repro.workloads` / :mod:`repro.bench` — synthetic instruments and
  the science benchmark (§2.14, 2.15)

Quickstart (the paper's running example)::

    from repro import define_array

    Remote = define_array(
        "Remote", values={"s1": "float", "s2": "float", "s3": "float"},
        dims=["I", "J"],
    )
    my_remote = Remote.create("My_remote", [1024, 1024])
    my_remote[7, 8] = (0.5, 1.5, 2.5)
    print(my_remote[7, 8].s1)
"""

from .core import *  # noqa: F401,F403
from .core import __all__ as _core_all
from .database import SciDB

__version__ = "0.1.0"

__all__ = list(_core_all) + ["SciDB", "__version__"]
