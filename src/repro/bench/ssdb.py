"""The science benchmark (Section 2.15), SS-DB-shaped.

The paper promises "a science benchmark ... a collection of tasks"; the
published form of that promise is SS-DB (Cudre-Mauroux et al.), built
around telescope-style imagery: raw integer frames over time, a cooking
stage, detected observations, and queries spanning raw slabs, regridding,
per-epoch statistics, detection, co-located joins, and time series.

:class:`SSDB` generates the data set once and runs the query set Q1–Q9 on
either backend:

* ``"native"`` — the SciDB array engine (:mod:`repro.core`);
* ``"table"`` — the same data as (x, y, t, value) rows on the relational
  baseline (:mod:`repro.baseline`).

Both backends compute identical answers (validated by the test suite);
experiment E12 reports the per-query timing ratio.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..core.array import SciArray
from ..core.ops import content as cops
from ..core.ops import structural as sops
from ..core.ops.content import aggregate_all
from ..core.schema import define_array
from ..baseline.arraysim import ArrayOnTable
from ..baseline.tabledb import TableDB

__all__ = ["SSDB", "SSDB_QUERIES"]

#: The query ids in benchmark order.
SSDB_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9")

RAW_SCHEMA = define_array("SSDBRaw", {"v": "float"}, ["x", "y", "t"])

#: Detection threshold (in cooked units) for Q5/Q6.
DETECT_THRESHOLD = 0.55
GAIN, OFFSET = 0.001, 100.0


class SSDB:
    """Data generator + dual-backend query set."""

    def __init__(self, side: int = 24, epochs: int = 4, seed: int = 0) -> None:
        self.side = side
        self.epochs = epochs
        rng = np.random.default_rng(seed)
        # Raw counts: a smooth background + point sources + noise.
        x = np.arange(side)[:, None, None] / side
        y = np.arange(side)[None, :, None] / side
        t = np.arange(epochs)[None, None, :]
        background = 400 + 120 * np.sin(2 * np.pi * (x + y)) * np.cos(
            0.5 * t
        )
        data = background + rng.normal(0, 20, size=(side, side, epochs))
        # Sprinkle bright sources (the "observations").
        n_src = max(4, side * side // 60)
        for _ in range(n_src):
            sx, sy = rng.integers(0, side, size=2)
            data[sx, sy, :] += rng.uniform(300, 900)
        self.data = np.clip(data, 0, 65535)
        self._native: Optional[SciArray] = None
        self._table: Optional[ArrayOnTable] = None

    # -- backends --------------------------------------------------------------------

    def native(self) -> SciArray:
        if self._native is None:
            self._native = SciArray.from_numpy(
                RAW_SCHEMA, self.data, name="ssdb_raw"
            )
        return self._native

    def table(self) -> ArrayOnTable:
        if self._table is None:
            db = TableDB()
            arr = ArrayOnTable(db, "ssdb_raw", dims=["x", "y", "t"], attrs=["v"])
            arr.load_dense(self.data)
            self._table = arr
        return self._table

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def cook_value(v: float) -> float:
        return GAIN * (v - OFFSET)

    def slab(self) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        q = self.side // 4
        return (q + 1, q + 1, 1), (2 * q, 2 * q, 1)

    # -- the query set ------------------------------------------------------------------
    # Each query has a _native and a _table implementation returning
    # comparable plain-Python results.

    def q1(self, backend: str) -> float:
        """Q1: average raw value over a spatial slab of epoch 1."""
        lo, hi = self.slab()
        if backend == "native":
            sub = sops.subsample(
                self.native(),
                {"x": (lo[0], hi[0]), "y": (lo[1], hi[1]), "t": 1},
            )
            return aggregate_all(sub, "avg")
        rows = self.table().subsample((lo, hi))
        values = [r[3] for r in rows]
        return sum(values) / len(values)

    def q2(self, backend: str) -> dict[tuple, float]:
        """Q2: regrid epoch 1 by a 4x4 spatial factor (avg)."""
        if backend == "native":
            epoch = sops.subsample(self.native(), {"t": 1})
            out = cops.regrid(epoch, [4, 4, 1], "avg")
            return {c[:2]: cell.avg for c, cell in out.cells()}
        db = TableDB()
        epoch_rows = self.table().slice("t", 1)
        tmp = ArrayOnTable(db, "epoch1", dims=["x", "y"], attrs=["v"])
        tmp.load_cells(((r[0], r[1]), (r[3],)) for r in epoch_rows)
        return tmp.regrid([4, 4], "avg")

    def q3(self, backend: str) -> dict[Any, float]:
        """Q3: per-epoch total flux (aggregate grouped on time)."""
        if backend == "native":
            out = cops.aggregate(self.native(), ["t"], "sum")
            return {c[0]: cell.sum for c, cell in out.cells()}
        return {
            k[0]: v for k, v in self.table().aggregate(["t"], "sum").items()
        }

    def q4(self, backend: str) -> float:
        """Q4: cook epoch 1 (counts -> radiance) and checksum it."""
        if backend == "native":
            epoch = sops.subsample(self.native(), {"t": 1})
            cooked = cops.apply(
                epoch,
                lambda c: self.cook_value(c.v),
                [("radiance", "float")],
                block_fn=lambda b: GAIN * (b["v"] - OFFSET),
            )
            return aggregate_all(cooked, "sum", attr="radiance")
        rows = self.table().slice("t", 1)
        return sum(self.cook_value(r[3]) for r in rows)

    def q5(self, backend: str) -> int:
        """Q5: detect observations (cooked value above threshold)."""
        if backend == "native":
            cooked = cops.apply(
                self.native(),
                lambda c: self.cook_value(c.v),
                [("radiance", "float")],
                block_fn=lambda b: GAIN * (b["v"] - OFFSET),
            )
            hot = cops.filter(
                cooked,
                lambda c: c.radiance > DETECT_THRESHOLD,
                block_predicate=lambda b: b["radiance"] > DETECT_THRESHOLD,
            )
            return hot.count_present()
        return sum(
            1
            for row in self.table().table.scan()
            if self.cook_value(row[3]) > DETECT_THRESHOLD
        )

    def q6(self, backend: str) -> dict[tuple, float]:
        """Q6: detection density per 8x8 spatial block (all epochs)."""
        if backend == "native":
            cooked = cops.apply(
                self.native(),
                lambda c: self.cook_value(c.v),
                [("radiance", "float")],
                block_fn=lambda b: GAIN * (b["v"] - OFFSET),
            )
            hot = cops.filter(
                cooked,
                lambda c: c.radiance > DETECT_THRESHOLD,
                block_predicate=lambda b: b["radiance"] > DETECT_THRESHOLD,
            )
            # Count detections per block from the NULL-filled plane: a
            # non-NaN cell is a surviving (PRESENT) detection.
            plane = hot.region(
                (1, 1, 1), hot.bounds, attr="radiance", fill=np.nan
            )
            present = ~np.isnan(plane)
            out: dict[tuple, float] = {}
            for bx in range((self.side + 7) // 8):
                for by in range((self.side + 7) // 8):
                    n = int(
                        present[
                            bx * 8 : (bx + 1) * 8, by * 8 : (by + 1) * 8, :
                        ].sum()
                    )
                    if n:
                        out[(bx + 1, by + 1)] = n
            return out
        groups: dict[tuple, float] = {}
        for row in self.table().table.scan():
            if self.cook_value(row[3]) > DETECT_THRESHOLD:
                key = ((row[0] - 1) // 8 + 1, (row[1] - 1) // 8 + 1)
                groups[key] = groups.get(key, 0) + 1
        return groups

    def q7(self, backend: str) -> float:
        """Q7: co-located join of epochs 1 and 2; mean absolute change."""
        if backend == "native":
            e1 = sops.remove_dimension(
                sops.subsample(self.native(), {"t": 1}), "t"
            )
            e2 = sops.remove_dimension(
                sops.subsample(self.native(), {"t": 2}), "t"
            )
            joined = sops.sjoin(e1, e2, on=[("x", "x"), ("y", "y")])
            blocks = joined.region((1, 1), joined.bounds, fill=0)
            return float(np.abs(blocks["v"] - blocks["v_r"]).mean())
        db = TableDB()
        t1 = ArrayOnTable(db, "e1", dims=["x", "y"], attrs=["v"])
        t2 = ArrayOnTable(db, "e2", dims=["x", "y"], attrs=["v"])
        t1.load_cells(((r[0], r[1]), (r[3],)) for r in self.table().slice("t", 1))
        t2.load_cells(((r[0], r[1]), (r[3],)) for r in self.table().slice("t", 2))
        joined = t1.join(t2)
        diffs = [abs(row[2] - row[5]) for row in joined]
        return sum(diffs) / len(diffs)

    def q8(self, backend: str) -> list[float]:
        """Q8: the time series of the central cell across all epochs."""
        c = self.side // 2
        if backend == "native":
            series = sops.subsample(self.native(), {"x": c, "y": c})
            return [cell.v for _, cell in series.cells(include_null=False)]
        out = []
        for t in range(1, self.epochs + 1):
            out.append(self.table().get((c, c, t))[0])
        return out

    def q9(self, backend: str) -> tuple[float, float]:
        """Q9: global mean and standard deviation of the raw data."""
        if backend == "native":
            return (
                aggregate_all(self.native(), "avg"),
                aggregate_all(self.native(), "stdev"),
            )
        values = [row[3] for row in self.table().table.scan()]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, var**0.5

    # -- driver -----------------------------------------------------------------------

    def query(self, qid: str) -> Callable[[str], Any]:
        return getattr(self, qid.lower())

    def run_all(self, backend: str) -> dict[str, Any]:
        if backend not in ("native", "table"):
            raise ValueError(f"unknown backend {backend!r}")
        return {qid: self.query(qid)(backend) for qid in SSDB_QUERIES}
