"""Shared measurement utilities for the experiment suite.

Keeps the ``benchmarks/`` modules small: timing with warmup, ratio
formatting, and a fixed-width result table that prints the same
rows/series EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = ["Measurement", "measure", "ratio", "ResultTable"]


@dataclass
class Measurement:
    """Wall-clock timing of one callable."""

    label: str
    seconds: float
    repeats: int
    result: Any = None

    @property
    def per_call(self) -> float:
        return self.seconds / self.repeats

    def __repr__(self) -> str:
        return f"<{self.label}: {self.per_call * 1e3:.3f} ms/call x{self.repeats}>"


def measure(
    fn: Callable[[], Any],
    label: str = "",
    repeats: int = 3,
    warmup: int = 1,
) -> Measurement:
    """Time *fn* with warmup; keeps the last result for validation."""
    result = None
    for _ in range(warmup):
        result = fn()
    start = time.perf_counter()
    for _ in range(repeats):
        result = fn()
    elapsed = time.perf_counter() - start
    return Measurement(label or getattr(fn, "__name__", "fn"), elapsed,
                       repeats, result)


def ratio(slow: Measurement, fast: Measurement) -> float:
    """slow/fast per-call ratio (the 'who wins by what factor' number)."""
    if fast.per_call == 0:
        return float("inf")
    return slow.per_call / fast.per_call


class ResultTable:
    """A fixed-width text table, printed the way EXPERIMENTS.md records it."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        for row in self.rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console side effect
        print()
        print(self.render())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
