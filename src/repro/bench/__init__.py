"""Benchmark kit: the science benchmark and shared measurement helpers
(Section 2.15).

"To focus the DBMS community on science requirements, we are almost
finished with a science benchmark."  The paper promises it; its published
form is SS-DB (the Standard Science DBMS Benchmark), so
:mod:`repro.bench.ssdb` implements that shape — raw imagery, a cooking
stage, derived observations, and a fixed query set Q1–Q9 — runnable on
both the native array engine and the table baseline.

:mod:`repro.bench.harness` holds the timing/result-table utilities shared
by every module under ``benchmarks/``.
"""

from .harness import Measurement, ResultTable, measure, ratio
from .ssdb import SSDB, SSDB_QUERIES

__all__ = [
    "measure",
    "ratio",
    "Measurement",
    "ResultTable",
    "SSDB",
    "SSDB_QUERIES",
]
