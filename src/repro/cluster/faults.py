"""Deterministic fault injection for the simulated grid (Section 2.7).

"Self-orchestrated ... recovery" is a stated SciDB requirement because a
grid large enough for LSST always contains broken nodes.  This module
supplies the *failures*: a seedable :class:`FaultInjector` that can

* kill nodes — immediately, or scheduled ``after`` the N-th metered
  transfer, which is how a crash lands *mid-query* deterministically
  (the grid's ledger ticks the injector on every transfer it records);
* drop or corrupt individual cell deliveries (seeded Bernoulli per
  transfer), observable in the ledger's ``dropped`` list;
* tear the tail off a node's write-ahead log mid-record, exercising the
  torn-tail path of :meth:`~repro.storage.wal.WriteAheadLog.entries`;
* inject *transient I/O faults* into the ingest path: intermittent store
  failures (seeded Bernoulli or scheduled per-site bursts) that surface
  as :class:`~repro.core.errors.TransientIOError` and are absorbed by the
  loader's bounded-retry policy, and *slow sites* whose simulated latency
  is charged to the load report instead of wall-clock;
* kill the *loader itself* at a seeded record mid-stream
  (:meth:`FaultInjector.schedule_load_crash`), which is how the
  checkpoint/resume experiments (E16) plant a deterministic crash at 25/
  50/75% of the stream.

Every injected fault is appended to :attr:`FaultInjector.events`, and the
same seed reproduces the same fault sequence byte-for-byte — the
benchmarks rely on that to report deterministic availability numbers.

**Thread-safety and keyed randomness.**  Since the parallel read path
runs under fault drills (the serial-only special case is gone), the
injector is mutated concurrently from scheduler workers.  All internal
state sits behind one re-entrant lock, and Bernoulli draws no longer
consume a single shared RNG stream (whose draw *order* would depend on
thread interleaving): each draw is keyed — hashed from ``(seed, kind,
src, dst, per-key sequence number)`` — so the verdict for the N-th
delivery on a given edge is a pure function of the seed and that edge's
history, independent of how deliveries from different edges interleave.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..core.errors import GridError, LoadInterrupted, TransientIOError
from ..obs.recorder import emit as _flight_emit

if TYPE_CHECKING:
    from .grid import Grid, Transfer
    from .node import Node

__all__ = ["FaultEvent", "FailoverEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in injection order."""

    kind: str  #: "node_kill" | "transfer_drop" | "transfer_corrupt" |
    #: "wal_tear" | "io_transient" | "io_transient_read" | "slow_store" |
    #: "slow_read" | "load_crash"
    tick: int  #: metered-transfer count at injection time
    target: int  #: node id (kills, WAL tears) or destination site (transfers)
    detail: str = ""


@dataclass(frozen=True)
class FailoverEvent:
    """One failover step a query took around a dead replica.

    ``backoff_ms`` is the *deterministic* backoff the grid's
    :class:`~repro.cluster.resilience.RetryPolicy` charges — capped
    exponential with seeded jitter keyed on ``(array, partition)``
    (simulated time — the in-process grid does not sleep it).
    """

    array: str
    partition: int
    failed_site: int
    attempt: int
    backoff_ms: float


class FaultInjector:
    """Seedable source of node, network, and log faults (thread-safe).

    Attach to a grid either via ``Grid(..., fault_injector=inj)`` or
    :meth:`attach`.  All randomness is *keyed* off ``seed`` (see the
    module docstring) so a run is reproducible from ``(workload, seed)``
    alone — even when scheduler workers exercise the injector
    concurrently.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        io_fault_rate: float = 0.0,
    ) -> None:
        if not all(
            0.0 <= r <= 1.0
            for r in (drop_rate, corrupt_rate, io_fault_rate)
        ):
            raise GridError("fault rates must be probabilities in [0, 1]")
        self.seed = seed
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.io_fault_rate = io_fault_rate
        self.events: list[FaultEvent] = []
        self.tick = 0
        self._kill_at: dict[int, int] = {}  # node_id -> tick threshold
        self._io_bursts: dict[int, int] = {}  # site -> remaining forced faults
        self._read_bursts: dict[int, int] = {}  # site -> remaining read faults
        self._slow_sites: dict[int, float] = {}  # site -> penalty_ms per store
        self._slow_reads: dict[int, float] = {}  # site -> penalty_ms per read
        self._draw_seq: dict[Any, int] = {}  # draw key -> next sequence number
        self._load_records = 0  # the loader's record clock
        self._load_crash_at: Optional[int] = None
        self.grid: Optional["Grid"] = None
        # One re-entrant lock over all mutable state: events, clocks,
        # schedules, and draw sequences are touched from scheduler worker
        # threads once reads fan out under a drill.  Re-entrant because
        # on_transfer can fire inside an intercept that already holds it.
        self._lock = threading.RLock()

    def _draw(self, kind: str, *key: Any) -> float:
        """One keyed uniform draw in [0, 1).

        The per-key sequence counter makes repeated draws on the same key
        independent, while keeping the N-th draw for a key a pure function
        of ``(seed, kind, key, N)`` — no shared RNG stream to race on.
        """
        with self._lock:
            seq = self._draw_seq.get((kind, key), 0)
            self._draw_seq[(kind, key)] = seq + 1
        payload = repr((self.seed, kind, key, seq)).encode()
        return zlib.crc32(payload) / 2**32

    def _record(self, event: FaultEvent) -> None:
        """Append *event* and mirror it into the flight recorder.

        The recorder copy carries the same tick/target/detail under the
        kind ``fault.<kind>``, so a drill's injected-fault ledger can be
        reconciled 1:1 against ``db.events()`` after the fact.
        """
        self.events.append(event)
        _flight_emit(
            "fault." + event.kind,
            node=event.target if event.target >= 0 else None,
            tick=event.tick,
            info=event.detail,
        )

    # -- wiring ------------------------------------------------------------------

    def attach(self, grid: "Grid") -> "FaultInjector":
        if self.grid is not None and self.grid is not grid:
            raise GridError("fault injector is already attached to a grid")
        self.grid = grid
        grid.faults = self
        grid.ledger.on_record = self.on_transfer
        return self

    def _require_grid(self) -> "Grid":
        if self.grid is None:
            raise GridError("fault injector is not attached to a grid")
        return self.grid

    def _node(self, node_id: int) -> "Node":
        grid = self._require_grid()
        if not 0 <= node_id < len(grid.nodes):
            raise GridError(
                f"no node {node_id} on a {len(grid.nodes)}-node grid"
            )
        return grid.nodes[node_id]

    # -- node failures -----------------------------------------------------------

    def kill(self, node_id: int) -> None:
        """Kill a node now: its storage becomes unreachable until rebuilt."""
        node = self._node(node_id)
        with self._lock:
            if node.alive:
                node.fail()
                self._record(
                    FaultEvent("node_kill", self.tick, node_id, "explicit kill")
                )

    def schedule_kill(self, node_id: int, after: int) -> None:
        """Kill *node_id* once *after* more transfers have been metered.

        Because every cross-node byte ticks the injector, this is how a
        crash is planted deterministically in the middle of a load, a
        gather, or a shuffle.
        """
        if after < 0:
            raise GridError("schedule_kill needs after >= 0")
        self._node(node_id)
        with self._lock:
            self._kill_at[node_id] = self.tick + after

    def on_transfer(self, transfer: "Transfer") -> None:
        """Ledger hook: advance simulated time, firing scheduled kills."""
        with self._lock:
            self.tick += 1
            grid = self.grid
            if grid is None:
                return
            due = [n for n, at in self._kill_at.items() if self.tick >= at]
            for node_id in due:
                del self._kill_at[node_id]
                node = grid.nodes[node_id]
                if node.alive:
                    node.fail()
                    self._record(
                        FaultEvent(
                            "node_kill", self.tick, node_id,
                            f"scheduled at transfer {self.tick}",
                        )
                    )

    # -- transfer faults -----------------------------------------------------------

    def intercept(
        self,
        src: int,
        dst: int,
        nbytes: int,
        reason: str,
        values: Optional[tuple],
    ) -> tuple[str, Optional[tuple]]:
        """Decide the fate of one cell delivery: deliver, drop, or corrupt.

        Returns ``(verdict, values)`` where verdict is ``"deliver"`` or
        ``"drop"``; a corrupted delivery still arrives, with its float
        payload deterministically perturbed.
        """
        if self.drop_rate and self._draw("drop", src, dst) < self.drop_rate:
            with self._lock:
                self._record(
                    FaultEvent("transfer_drop", self.tick, dst, reason)
                )
            return "drop", values
        if (
            self.corrupt_rate
            and values is not None
            and self._draw("corrupt", src, dst) < self.corrupt_rate
        ):
            corrupted = tuple(
                -v if isinstance(v, float) else v for v in values
            )
            with self._lock:
                self._record(
                    FaultEvent("transfer_corrupt", self.tick, dst, reason)
                )
            return "deliver", corrupted
        return "deliver", values

    # -- WAL faults ------------------------------------------------------------------

    def tear_wal_tail(self, node: "Node", nbytes: Optional[int] = None) -> int:
        """Truncate the final record of *node*'s WAL mid-write.

        Removes *nbytes* from the end of the log (default: half of the
        final record), simulating a crash during an append.  Returns the
        number of bytes torn off.
        """
        if node.wal is None:
            raise GridError(f"node {node.node_id} has no write-ahead log")
        node.wal.commit()
        path = node.wal.path
        body = path.read_bytes().rstrip(b"\n")
        if not body:
            return 0
        last_nl = body.rfind(b"\n")
        last_len = len(body) - last_nl - 1
        cut = min(nbytes if nbytes is not None else max(1, last_len // 2),
                  len(body))
        path.write_bytes(body[: len(body) - cut])
        with self._lock:
            self._record(
                FaultEvent(
                    "wal_tear", self.tick, node.node_id, f"tore {cut} bytes"
                )
            )
        return cut

    # -- transient I/O faults (the ingest path) ----------------------------------

    def schedule_transient_io(self, site: int, failures: int) -> None:
        """Force the next *failures* stores on *site* to fail transiently.

        Deterministic complement to ``io_fault_rate``: the loader's
        bounded-retry policy must absorb exactly this burst (or give up,
        when the burst exceeds ``max_retries``).
        """
        if failures < 0:
            raise GridError("schedule_transient_io needs failures >= 0")
        self._node(site)
        with self._lock:
            self._io_bursts[site] = self._io_bursts.get(site, 0) + failures

    def set_slow_site(self, site: int, penalty_ms: float) -> None:
        """Charge *penalty_ms* of simulated latency per store on *site*."""
        if penalty_ms < 0:
            raise GridError("slow-site penalty must be >= 0 ms")
        self._node(site)
        with self._lock:
            self._slow_sites[site] = penalty_ms

    def intercept_store(self, site: int) -> float:
        """Gate one store on *site*: may raise, returns latency charged.

        Raises :class:`TransientIOError` for a scheduled burst fault or a
        seeded Bernoulli ``io_fault_rate`` hit; otherwise returns the
        site's slow-site penalty (0.0 when healthy) for the caller to
        charge as simulated time.
        """
        with self._lock:
            burst = self._io_bursts.get(site, 0)
            if burst > 0:
                self._io_bursts[site] = burst - 1
                self._record(
                    FaultEvent(
                        "io_transient", self.tick, site, "scheduled burst"
                    )
                )
                raise TransientIOError(
                    f"site {site}: injected transient append failure"
                )
        if self.io_fault_rate and self._draw("io", site) < self.io_fault_rate:
            with self._lock:
                self._record(
                    FaultEvent("io_transient", self.tick, site, "bernoulli")
                )
            raise TransientIOError(
                f"site {site}: injected transient append failure"
            )
        with self._lock:
            penalty = self._slow_sites.get(site, 0.0)
            if penalty:
                self._record(
                    FaultEvent("slow_store", self.tick, site, f"{penalty} ms")
                )
        return penalty

    # -- transient faults and latency on the *read* path ---------------------------

    def schedule_transient_reads(self, site: int, failures: int) -> None:
        """Force the next *failures* partition reads from *site* to fail
        transiently.

        The read path's counterpart of :meth:`schedule_transient_io`: each
        gated read raises :class:`TransientIOError`, which the grid's
        retry policy classifies as transient and absorbs (or fails over
        past, once the node's circuit breaker opens).
        """
        if failures < 0:
            raise GridError("schedule_transient_reads needs failures >= 0")
        self._node(site)
        with self._lock:
            self._read_bursts[site] = (
                self._read_bursts.get(site, 0) + failures
            )

    def set_slow_reads(self, site: int, penalty_ms: float) -> None:
        """Delay every partition read served by *site* by *penalty_ms*.

        Unlike :meth:`set_slow_site` (pure accounting), the read penalty
        is *slept* by the reader — under a deadline, in deadline-aware
        slices — so slow-node drills exercise real tail latency and the
        hedging/deadline machinery, not just a counter.
        """
        if penalty_ms < 0:
            raise GridError("slow-read penalty must be >= 0 ms")
        self._node(site)
        with self._lock:
            self._slow_reads[site] = penalty_ms

    def intercept_read(self, site: int, partition: int, attempt: int) -> float:
        """Gate one partition read from *site*: may raise, returns the
        read-latency penalty (ms) the caller must sleep.

        Raises :class:`TransientIOError` while a scheduled read burst
        remains.  Events are tagged with ``(partition, attempt)`` so a
        drill can reconcile injected read faults against the retry
        attempts that absorbed them.
        """
        with self._lock:
            burst = self._read_bursts.get(site, 0)
            if burst > 0:
                self._read_bursts[site] = burst - 1
                self._record(
                    FaultEvent(
                        "io_transient_read", self.tick, site,
                        f"p{partition} attempt {attempt}",
                    )
                )
                raise TransientIOError(
                    f"site {site}: injected transient read failure "
                    f"(partition {partition}, attempt {attempt})"
                )
            penalty = self._slow_reads.get(site, 0.0)
            if penalty:
                self._record(
                    FaultEvent(
                        "slow_read", self.tick, site,
                        f"{penalty} ms, p{partition} attempt {attempt}",
                    )
                )
        return penalty

    # -- loader crashes ---------------------------------------------------------------

    def schedule_load_crash(self, after_records: int) -> None:
        """Kill the bulk loader once it has consumed *after_records* more.

        The loader ticks :meth:`on_load_record` per consumed record; when
        the clock hits the threshold a :class:`LoadInterrupted` is raised
        from inside the stream — a process kill planted deterministically
        at a seeded point mid-load.
        """
        if after_records < 1:
            raise GridError("schedule_load_crash needs after_records >= 1")
        with self._lock:
            self._load_crash_at = self._load_records + after_records

    def on_load_record(self) -> None:
        """Loader hook: advance the record clock, firing a scheduled crash."""
        with self._lock:
            self._load_records += 1
            if (
                self._load_crash_at is None
                or self._load_records < self._load_crash_at
            ):
                return
            self._load_crash_at = None
            self._record(
                FaultEvent(
                    "load_crash", self.tick, -1,
                    f"loader killed at record {self._load_records}",
                )
            )
            n = self._load_records
        raise LoadInterrupted(f"injected loader crash at record {n}")

    def counts(self) -> dict[str, int]:
        """Injected faults by kind — computed under the lock, over a
        snapshot, so a drill can reconcile mid-flight without tearing."""
        with self._lock:
            events = list(self.events)
        out: dict[str, int] = {}
        for e in events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out
