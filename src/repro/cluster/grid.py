"""The simulated shared-nothing grid and its movement ledger (Section 2.7).

A :class:`Grid` owns N :class:`~repro.cluster.node.Node` workers and a
:class:`DataMovementLedger`.  Every byte that crosses a node boundary —
load routing, repartitioning, join shuffles, aggregate partials, result
gathers, uncertainty replication — is recorded with a reason, so the
partitioning experiments (E6/E7) report exact, deterministic movement
instead of noisy wall-clock proxies.

Distributed operators implemented on :class:`DistributedArray`:

* ``load`` / ``write`` — route cells by the array's partitioner;
* ``load_uncertain`` — PanSTARRS-style boundary replication: an
  observation whose true position may fall in a neighbouring partition is
  stored redundantly in every candidate partition, so "uncertain spatial
  joins can be performed without moving data elements" (Section 2.13);
* ``subsample`` — window scans with per-node R-tree pruning;
* ``aggregate`` — local partial aggregation, coordinator merge (algebraic
  aggregates move only partial states; holistic ones fall back to raw
  shipment);
* ``sjoin`` — local joins when the operands are co-partitioned, otherwise
  an explicit repartition of the right operand first;
* ``repartition`` — migrate to a new partitioning scheme, as the paper's
  time-varying partitioning requires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from ..core.array import SciArray
from ..core.cells import Cell
from ..core.datatypes import ScalarType
from ..core.errors import PartitioningError, SchemaError
from ..core.ops import content as content_ops
from ..core.ops import structural as structural_ops
from ..core.schema import ArraySchema
from ..core.udf import UserAggregate, get_aggregate
from ..core.uncertainty import PositionUncertainty
from ..storage.loader import LoadRecord
from .node import Node
from .partitioning import Partitioner

__all__ = ["Transfer", "DataMovementLedger", "DistributedArray", "Grid"]

Coords = tuple[int, ...]

#: Coordinator pseudo-site in ledger entries.
COORDINATOR = -1

#: Merge functions for algebraic built-in aggregates (state x state -> state).
_ALGEBRAIC_MERGES: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "count": lambda a, b: a + b,
    "avg": lambda a, b: (a[0] + b[0], a[1] + b[1]),
    "min": lambda a, b: b if a is None else (a if b is None else min(a, b)),
    "max": lambda a, b: b if a is None else (a if b is None else max(a, b)),
    "stdev": lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
}


@dataclass(frozen=True)
class Transfer:
    """One metered inter-node transfer."""

    src: int
    dst: int
    nbytes: int
    reason: str


class DataMovementLedger:
    """Append-only record of all inter-node traffic."""

    def __init__(self) -> None:
        self.transfers: list[Transfer] = []

    def record(self, src: int, dst: int, nbytes: int, reason: str) -> None:
        if src != dst:  # local work is free by definition of shared-nothing
            self.transfers.append(Transfer(src, dst, nbytes, reason))

    def total_bytes(self, reason: Optional[str] = None) -> int:
        return sum(
            t.nbytes for t in self.transfers if reason is None or t.reason == reason
        )

    def by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.transfers:
            out[t.reason] = out.get(t.reason, 0) + t.nbytes
        return out

    def reset(self) -> None:
        self.transfers.clear()


def _cell_nbytes(schema: ArraySchema) -> int:
    """Wire-size estimate of one cell: coords + attribute payload."""
    size = 8 * schema.ndim
    for a in schema.attributes:
        if isinstance(a.type, ScalarType) and a.type.numpy_dtype != object:
            size += a.type.numpy_dtype.itemsize
        else:
            size += 32
    return size


class DistributedArray:
    """One array partitioned across the grid's nodes."""

    def __init__(
        self,
        grid: "Grid",
        name: str,
        schema: ArraySchema,
        partitioner: Partitioner,
    ) -> None:
        if partitioner.n_sites != len(grid.nodes):
            raise PartitioningError(
                f"partitioner targets {partitioner.n_sites} sites, grid has "
                f"{len(grid.nodes)} nodes"
            )
        self.grid = grid
        self.name = name
        self.schema = schema
        self.partitioner = partitioner
        self.cell_nbytes = _cell_nbytes(schema)

    # -- writes ------------------------------------------------------------------

    def write(self, coords: Coords, values: Optional[tuple]) -> None:
        site = self.partitioner.site_of(coords)
        self.grid.ledger.record(COORDINATOR, site, self.cell_nbytes, "load")
        self.grid.nodes[site].store(self.name, coords, values)

    def load(self, records: Iterable[LoadRecord]) -> int:
        n = 0
        for rec in records:
            self.write(rec.coords, rec.values)
            n += 1
        self.flush()
        return n

    def load_uncertain(
        self,
        observations: Iterable[tuple[tuple[float, ...], tuple]],
        uncertainty: PositionUncertainty,
    ) -> int:
        """Load (position, values) observations with boundary replication.

        Each observation is stored in its home cell on every site that owns
        one of its candidate cells; replicas beyond the home site are
        metered with reason ``"replication"``.
        """
        n = 0
        for position, values in observations:
            home = uncertainty.home_cell(position)
            sites = {self.partitioner.site_of(c)
                     for c in uncertainty.candidate_cells(position)}
            home_site = self.partitioner.site_of(home)
            for site in sorted(sites):
                reason = "load" if site == home_site else "replication"
                self.grid.ledger.record(COORDINATOR, site, self.cell_nbytes, reason)
                self.grid.nodes[site].store(self.name, home, values)
            n += 1
        self.flush()
        return n

    def flush(self) -> None:
        for node in self.grid.nodes:
            node.partition(self.name).flush()

    # -- reads -------------------------------------------------------------------

    def scan(self, window: Optional[tuple[Coords, Coords]] = None
             ) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """Gather (windowed) cells at the coordinator, metering the gather."""
        seen: set[Coords] = set()
        for node in self.grid.nodes:
            part = node.partition(self.name)
            for coords, cell in part.scan(window):
                if coords in seen:
                    continue  # replicas (uncertain load) deduplicate here
                seen.add(coords)
                node.counters.cells_scanned += 1
                self.grid.ledger.record(
                    node.node_id, COORDINATOR, self.cell_nbytes, "gather"
                )
                yield coords, cell

    def cell_count(self) -> int:
        """Total stored cells (replicas included) — the balance metric."""
        return sum(self.cells_per_node())

    def cells_per_node(self) -> list[int]:
        return [node.cell_count(self.name) for node in self.grid.nodes]

    def imbalance(self) -> float:
        """max/mean stored cells per node; 1.0 is perfect balance."""
        counts = self.cells_per_node()
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def subsample(self, window: tuple[Coords, Coords]) -> SciArray:
        """Window query executed with per-node bucket pruning."""
        out = SciArray(self.schema, name=f"{self.name}_window")
        for coords, cell in self.scan(window):
            out.set(coords, cell)
        return out

    def materialize(self) -> SciArray:
        out = SciArray(self.schema, name=self.name)
        for coords, cell in self.scan():
            out.set(coords, cell)
        return out

    # -- distributed operators ----------------------------------------------------

    def aggregate(
        self,
        group_dims: Sequence[str],
        agg: "str | UserAggregate",
        attr: Optional[str] = None,
    ) -> SciArray:
        """Grouped aggregation with local partials where algebraic."""
        aggregate_fn = agg if isinstance(agg, UserAggregate) else get_aggregate(agg)
        attr_name = attr or self.schema.attr_names[0]
        positions = [self.schema.dim_index(d) for d in group_dims]
        merge = _ALGEBRAIC_MERGES.get(aggregate_fn.name)

        merged: dict[Coords, Any] = {}
        if merge is not None:
            state_nbytes = 24  # partial-state wire estimate
            for node in self.grid.nodes:
                local: dict[Coords, Any] = {}
                for coords, cell in node.partition(self.name).scan():
                    if cell is None:
                        continue
                    key = tuple(coords[p] for p in positions)
                    state = local.get(key)
                    if key not in local:
                        state = aggregate_fn.initial()
                    local[key] = aggregate_fn.transition(
                        state, getattr(cell, attr_name)
                    )
                for key, state in local.items():
                    self.grid.ledger.record(
                        node.node_id, COORDINATOR, state_nbytes, "aggregate"
                    )
                    if key in merged:
                        merged[key] = merge(merged[key], state)
                    else:
                        merged[key] = state
        else:
            # Holistic user aggregate: ship raw values to the coordinator.
            for node in self.grid.nodes:
                for coords, cell in node.partition(self.name).scan():
                    if cell is None:
                        continue
                    self.grid.ledger.record(
                        node.node_id, COORDINATOR, self.cell_nbytes, "aggregate"
                    )
                    key = tuple(coords[p] for p in positions)
                    state = merged.get(key)
                    if key not in merged:
                        state = aggregate_fn.initial()
                    merged[key] = aggregate_fn.transition(
                        state, getattr(cell, attr_name)
                    )

        from ..core.schema import Attribute, Dimension
        from ..core.ops.content import _result_type

        out_schema = ArraySchema(
            name=f"{self.name}_agg",
            attributes=(Attribute(aggregate_fn.name, _result_type(aggregate_fn)),),
            dimensions=tuple(self.schema.dimensions[p] for p in positions),
        )
        out = SciArray(out_schema, name=f"{self.name}_agg")
        for key, state in merged.items():
            out.set(key, aggregate_fn.final(state))
        return out

    def sjoin(self, other: "DistributedArray",
              on: Optional[Sequence[tuple[str, str]]] = None) -> SciArray:
        """Structured join of two distributed arrays on all dimensions.

        Co-partitioned operands (equal partitioners — see
        :func:`repro.cluster.copartition.is_copartitioned`) join locally
        with **zero** shuffle; otherwise the right operand's cells are first
        repartitioned to the left's scheme (metered as ``"join_shuffle"``).
        """
        if on is None:
            on = list(zip(self.schema.dim_names, other.schema.dim_names))
        if len(on) != self.schema.ndim or len(on) != other.schema.ndim:
            raise SchemaError(
                "distributed sjoin joins all dimensions pairwise; use a "
                "local sjoin for partial-dimension joins"
            )

        if self.partitioner == other.partitioner:
            right_parts = [
                _materialize_node(other, node) for node in self.grid.nodes
            ]
        else:
            # Shuffle right cells to the node owning the matching left cell.
            right_parts = [
                SciArray(other.schema, name=f"{other.name}@n{node.node_id}")
                for node in self.grid.nodes
            ]
            for node in self.grid.nodes:
                for coords, cell in node.partition(other.name).scan():
                    target = self.partitioner.site_of(coords)
                    self.grid.ledger.record(
                        node.node_id, target, other.cell_nbytes, "join_shuffle"
                    )
                    right_parts[target].set(coords, cell)

        out: Optional[SciArray] = None
        for node, right in zip(self.grid.nodes, right_parts):
            left = _materialize_node(self, node)
            if left.count_occupied() == 0 or right.count_occupied() == 0:
                continue
            local = structural_ops.sjoin(left, right, on=on)
            self.grid.ledger.record(
                node.node_id,
                COORDINATOR,
                local.count_occupied() * (self.cell_nbytes + other.cell_nbytes),
                "gather",
            )
            if out is None:
                out = local.empty_like(name=f"{self.name}_sjoin_{other.name}")
            for coords, cell in local.cells():
                out.set(coords, cell)
        if out is None:
            # Build an empty result with the joined schema.
            left = SciArray(self.schema)
            right = SciArray(other.schema)
            out = structural_ops.sjoin(left, right, on=on)
        return out

    def filter(
        self,
        predicate,
        output_name: Optional[str] = None,
    ) -> "DistributedArray":
        """Distributed Filter: runs node-local with **zero** movement.

        Filter preserves cell addresses, so each node filters its own
        partition in place under the same partitioner — the easy
        shared-nothing case the paper's operators are designed around.
        The result is a new distributed array (no-overwrite).
        """
        out = self.grid.create_array(
            output_name or f"{self.name}_filtered", self.schema, self.partitioner
        )
        for node in self.grid.nodes:
            part = node.partition(self.name)
            target = node.partition(out.name)
            for coords, cell in part.scan():
                if cell is not None and predicate(cell):
                    target.append(coords, cell.values)
                else:
                    target.append(coords, None)
            target.flush()
        return out

    def apply(
        self,
        fn,
        output: Sequence[tuple[str, str]],
        output_name: Optional[str] = None,
    ) -> "DistributedArray":
        """Distributed Apply: node-local per-cell computation, no movement."""
        from ..core.schema import define_array

        out_schema = define_array(
            f"{self.schema.name}_applied",
            values=list(output),
            dims=[(d.name, d.size) for d in self.schema.dimensions],
        )
        out = self.grid.create_array(
            output_name or f"{self.name}_applied", out_schema, self.partitioner
        )
        n_out = len(output)
        for node in self.grid.nodes:
            part = node.partition(self.name)
            target = node.partition(out.name)
            for coords, cell in part.scan():
                if cell is None:
                    target.append(coords, None)
                    continue
                result = fn(cell)
                if n_out == 1 and not isinstance(result, tuple):
                    result = (result,)
                target.append(coords, result)
            target.flush()
        return out

    def regrid(
        self,
        factors: Sequence[int],
        agg: "str | UserAggregate" = "avg",
        attr: Optional[str] = None,
    ) -> SciArray:
        """Distributed Regrid: local partial aggregation per output block,
        merged at the coordinator (algebraic aggregates only).

        Output blocks can straddle partition boundaries, so unlike
        :meth:`filter`/:meth:`apply` this moves partial states — metered as
        ``"regrid"``.
        """
        aggregate_fn = agg if isinstance(agg, UserAggregate) else get_aggregate(agg)
        merge = _ALGEBRAIC_MERGES.get(aggregate_fn.name)
        if merge is None:
            raise SchemaError(
                f"distributed regrid needs an algebraic aggregate, "
                f"not {aggregate_fn.name!r}"
            )
        attr_name = attr or self.schema.attr_names[0]
        if len(factors) != self.schema.ndim:
            raise SchemaError(
                f"regrid needs {self.schema.ndim} factors, got {len(factors)}"
            )
        merged: dict[Coords, Any] = {}
        for node in self.grid.nodes:
            local: dict[Coords, Any] = {}
            for coords, cell in node.partition(self.name).scan():
                if cell is None:
                    continue
                key = tuple((c - 1) // f + 1 for c, f in zip(coords, factors))
                state = local.get(key)
                if key not in local:
                    state = aggregate_fn.initial()
                local[key] = aggregate_fn.transition(
                    state, getattr(cell, attr_name)
                )
            for key, state in local.items():
                self.grid.ledger.record(node.node_id, COORDINATOR, 24, "regrid")
                if key in merged:
                    merged[key] = merge(merged[key], state)
                else:
                    merged[key] = state

        from ..core.schema import Attribute, Dimension
        from ..core.ops.content import _result_type

        out_sizes = [
            (self._extent(d) + f - 1) // f
            for d, f in zip(range(self.schema.ndim), factors)
        ]
        out_schema = ArraySchema(
            name=f"{self.name}_regrid",
            attributes=(Attribute(aggregate_fn.name, _result_type(aggregate_fn)),),
            dimensions=tuple(
                Dimension(d.name, s)
                for d, s in zip(self.schema.dimensions, out_sizes)
            ),
        )
        out = SciArray(out_schema, name=f"{self.name}_regrid")
        for key, state in merged.items():
            out.set(key, aggregate_fn.final(state))
        return out

    def _extent(self, dim_index: int) -> int:
        declared = self.schema.dimensions[dim_index].size
        if declared is not None:
            return declared
        # Unbounded: take the max coordinate stored anywhere.
        hw = 0
        for node in self.grid.nodes:
            for coords, _ in node.partition(self.name).scan():
                hw = max(hw, coords[dim_index])
        return hw

    # -- repartitioning --------------------------------------------------------------

    def repartition(self, new_partitioner: Partitioner) -> int:
        """Migrate to *new_partitioner*; returns cells moved.

        Movement is metered as ``"repartition"``; cells already on their
        new home node do not move (and cost nothing).
        """
        if new_partitioner.n_sites != len(self.grid.nodes):
            raise PartitioningError("new partitioner targets a different grid size")
        moves: list[tuple[int, int, Coords, Optional[tuple]]] = []
        for node in self.grid.nodes:
            for coords, cell in node.partition(self.name).scan():
                target = new_partitioner.site_of(coords)
                if target != node.node_id:
                    moves.append(
                        (node.node_id, target, coords,
                         None if cell is None else cell.values)
                    )
        # Rebuild partitions: drop and recreate, then replay.
        survivors: dict[int, list[tuple[Coords, Optional[tuple]]]] = {
            node.node_id: [] for node in self.grid.nodes
        }
        for node in self.grid.nodes:
            for coords, cell in node.partition(self.name).scan():
                if new_partitioner.site_of(coords) == node.node_id:
                    survivors[node.node_id].append(
                        (coords, None if cell is None else cell.values)
                    )
        for node in self.grid.nodes:
            node.storage.drop_array(self.name)
            node.create_partition(self.name, self.schema)
            for coords, values in survivors[node.node_id]:
                node.store(self.name, coords, values)
        for src, dst, coords, values in moves:
            self.grid.ledger.record(src, dst, self.cell_nbytes, "repartition")
            self.grid.nodes[dst].store(self.name, coords, values)
        self.flush()
        self.partitioner = new_partitioner
        return len(moves)


def _materialize_node(array: DistributedArray, node: Node) -> SciArray:
    out = SciArray(array.schema, name=f"{array.name}@n{node.node_id}")
    for coords, cell in node.partition(array.name).scan():
        out.set(coords, cell)
    return out


class Grid:
    """A simulated shared-nothing cluster rooted at one directory."""

    def __init__(
        self,
        n_nodes: int,
        directory: "str | Path",
        memory_budget: int = 1 << 20,
    ) -> None:
        if n_nodes < 1:
            raise PartitioningError("a grid needs at least one node")
        directory = Path(directory)
        self.nodes = [
            Node(i, directory / f"node_{i:03d}", memory_budget=memory_budget)
            for i in range(n_nodes)
        ]
        self.ledger = DataMovementLedger()
        self._arrays: dict[str, DistributedArray] = {}

    def create_array(
        self,
        name: str,
        schema: ArraySchema,
        partitioner: Partitioner,
        stride: Optional[Sequence[int]] = None,
    ) -> DistributedArray:
        if name in self._arrays:
            raise PartitioningError(f"distributed array {name!r} already exists")
        for node in self.nodes:
            node.create_partition(name, schema, stride=stride)
        arr = DistributedArray(self, name, schema, partitioner)
        self._arrays[name] = arr
        return arr

    def get_array(self, name: str) -> DistributedArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise PartitioningError(f"no distributed array named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._arrays)
