"""The simulated shared-nothing grid and its movement ledger (Section 2.7).

A :class:`Grid` owns N :class:`~repro.cluster.node.Node` workers and a
:class:`DataMovementLedger`.  Every byte that crosses a node boundary —
load routing, repartitioning, join shuffles, aggregate partials, result
gathers, uncertainty replication — is recorded with a reason, so the
partitioning experiments (E6/E7) report exact, deterministic movement
instead of noisy wall-clock proxies.

Distributed operators implemented on :class:`DistributedArray`:

* ``load`` / ``write`` — route cells by the array's partitioner, to every
  replica site when ``replication`` > 1 (extra copies metered as
  ``"replication"``);
* ``load_uncertain`` — PanSTARRS-style boundary replication: an
  observation whose true position may fall in a neighbouring partition is
  stored redundantly in every candidate partition, so "uncertain spatial
  joins can be performed without moving data elements" (Section 2.13);
* ``subsample`` — window scans with per-node R-tree pruning;
* ``aggregate`` — local partial aggregation, coordinator merge (algebraic
  aggregates move only partial states; holistic ones fall back to raw
  shipment);
* ``sjoin`` — local joins when the operands are co-partitioned, otherwise
  an explicit repartition of the right operand first;
* ``repartition`` — migrate to a new partitioning scheme, as the paper's
  time-varying partitioning requires.

Fault tolerance (the common case on a grid "sufficiently large that there
will always be broken nodes"): reads are organised around *logical
partitions* — partition ``p`` is the set of cells whose primary site is
``p``, and with k-way replication it is stored on every site of
``placement.chain(p, n, k)``.  A query that finds a replica dead — even
mid-scan, when a scheduled fault fires on a metered transfer — retries
the partition on the next site of the chain under the grid's
:class:`~repro.cluster.resilience.ResiliencePolicy`: bounded attempts
with capped, seeded-jitter backoff (recorded in
:attr:`Grid.failover_log`), per-node circuit breakers that skip
repeatedly-failing nodes straight to their replicas, optional hedged
backup reads against the next replica (exactly-once preserved by
buffered metering — only the winning attempt's meters commit), and
cooperative deadlines propagated into every per-partition task.  Only
when *every* replica of some partition is dead does the query raise
:class:`~repro.core.errors.QuorumError` — unless called with
``degraded=True`` (or ``on_unavailable="partial"``), which instead
returns the partial answer plus a
:class:`~repro.cluster.replication.CoverageReport`.
:meth:`Grid.rebuild_node` brings a crashed node back by replaying its
per-node WAL and copying anything missing (metered ``"rebuild"``) from
surviving replicas.  Fault drills and parallel fan-out compose: the
injector is thread-safe and keyed-deterministic, so a drill runs at full
``parallelism`` rather than forcing the grid serial.

The *write* path gets the same treatment via
:meth:`DistributedArray.load_checkpointed`: the load stream is divided
into numbered batches committed atomically per replica chain (cursor
files + WAL ``load_commit`` records), malformed records are quarantined
instead of aborting the stream, transient I/O faults are retried with
recorded backoff, a substream whose primary dies mid-load fails over to
the replica chain (metered ``"load_failover"``), and a killed loader
resumes from the last committed batch with idempotent replay — see
:mod:`repro.storage.loader`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..core.array import SciArray
from ..core.cells import Cell
from ..core.datatypes import ScalarType
from ..core.errors import (
    DeadlineExceededError,
    GridError,
    NodeFailedError,
    PartitioningError,
    QuorumError,
    SchemaError,
    StorageError,
    TransientIOError,
)
from ..core.ops import structural as structural_ops
from ..core.schema import ArraySchema
from ..core.udf import UserAggregate, get_aggregate
from ..core.uncertainty import PositionUncertainty
from ..obs import tracing
from ..obs.recorder import emit as _flight_emit
from ..storage.loader import BulkLoader, LoadRecord, LoadReport
from ..storage.quarantine import QuarantineStore
from .faults import FailoverEvent, FaultInjector
from .node import Node
from .partitioning import Partitioner
from .resilience import (
    CircuitBreaker,
    Deadline,
    HedgePolicy,
    MeterBuffer,
    ResiliencePolicy,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    sleep_under_deadline,
)
from .rebalance import Migration, Rebalancer, RebalanceReport
from .scheduler import PartitionScheduler, default_parallelism
from .replication import (
    ChainedDeclusteringPlacement,
    CoverageReport,
    DegradedResult,
    RebuildReport,
    ReplicaPlacement,
)

__all__ = ["Transfer", "DataMovementLedger", "DistributedArray", "Grid"]

Coords = tuple[int, ...]

#: Coordinator pseudo-site in ledger entries.
COORDINATOR = -1


def _wants_partial(on_unavailable: str) -> bool:
    """Validate an ``on_unavailable`` mode; True for ``"partial"``."""
    if on_unavailable not in ("raise", "partial"):
        raise GridError(
            f"on_unavailable must be 'raise' or 'partial', "
            f"got {on_unavailable!r}"
        )
    return on_unavailable == "partial"

#: Merge functions for algebraic built-in aggregates (state x state -> state).
_ALGEBRAIC_MERGES: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "count": lambda a, b: a + b,
    "avg": lambda a, b: (a[0] + b[0], a[1] + b[1]),
    "min": lambda a, b: b if a is None else (a if b is None else min(a, b)),
    "max": lambda a, b: b if a is None else (a if b is None else max(a, b)),
    "stdev": lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
}


@dataclass(frozen=True)
class Transfer:
    """One metered inter-node transfer."""

    src: int
    dst: int
    nbytes: int
    reason: str


class DataMovementLedger:
    """Append-only record of all inter-node traffic.

    Besides delivered transfers, the ledger tracks *dropped* ones —
    deliveries addressed to a dead node or eaten by the fault injector —
    so injected faults stay observable in the same accounting that the
    partitioning experiments use.
    """

    def __init__(self) -> None:
        self.transfers: list[Transfer] = []
        self.dropped: list[Transfer] = []
        #: Optional hook called with each recorded Transfer (the fault
        #: injector's simulated clock ticks here).
        self.on_record: Optional[Callable[[Transfer], None]] = None
        # Scheduler workers meter gathers concurrently; the log append and
        # the injector tick must stay one atomic step so fault ordering is
        # a function of the transfer sequence, not thread interleaving.
        self._lock = threading.Lock()

    def record(self, src: int, dst: int, nbytes: int, reason: str) -> None:
        if src != dst:  # local work is free by definition of shared-nothing
            transfer = Transfer(src, dst, nbytes, reason)
            with self._lock:
                self.transfers.append(transfer)
                if self.on_record is not None:
                    self.on_record(transfer)
            # Whatever operator span is open absorbs this movement, so
            # per-operator bytes_moved reconciles with the ledger delta
            # by construction.
            tracing.add_current_pair("bytes_moved", nbytes, "transfers", 1)

    def record_dropped(self, src: int, dst: int, nbytes: int, reason: str) -> None:
        with self._lock:
            self.dropped.append(Transfer(src, dst, nbytes, reason))
        tracing.add_current("bytes_dropped", nbytes)

    def total_bytes(self, reason: Optional[str] = None) -> int:
        return sum(
            t.nbytes for t in self.transfers if reason is None or t.reason == reason
        )

    def dropped_bytes(self, reason: Optional[str] = None) -> int:
        return sum(
            t.nbytes for t in self.dropped if reason is None or t.reason == reason
        )

    def by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.transfers:
            out[t.reason] = out.get(t.reason, 0) + t.nbytes
        return out

    def reset(self) -> None:
        self.transfers.clear()
        self.dropped.clear()


def _cell_nbytes(schema: ArraySchema) -> int:
    """Wire-size estimate of one cell: coords + attribute payload."""
    size = 8 * schema.ndim
    for a in schema.attributes:
        if isinstance(a.type, ScalarType) and a.type.numpy_dtype != object:
            size += a.type.numpy_dtype.itemsize
        else:
            size += 32
    return size


class DistributedArray:
    """One array partitioned across the grid's nodes, ``k`` replicas deep."""

    def __init__(
        self,
        grid: "Grid",
        name: str,
        schema: ArraySchema,
        partitioner: Partitioner,
        replication: int = 1,
        placement: Optional[ReplicaPlacement] = None,
    ) -> None:
        if partitioner.n_sites != len(grid.nodes):
            raise PartitioningError(
                f"partitioner targets {partitioner.n_sites} sites, grid has "
                f"{len(grid.nodes)} nodes"
            )
        self.grid = grid
        self.name = name
        self.schema = schema
        self.partitioner = partitioner
        self.replication = replication
        self.placement = placement or ChainedDeclusteringPlacement()
        # Validate the chain for every partition up front.
        for p in partitioner.sites():
            self.chain_under(partitioner, p)
        self.cell_nbytes = _cell_nbytes(schema)
        #: in-flight elastic migration (cluster/rebalance.py), or None.
        #: While set, writes land in both homes and reads may
        #: dual-resolve against the new placement.
        self._migration: Optional["Migration"] = None
        # Per-dimension high-water marks for unbounded dimensions,
        # maintained on every stored delivery (under the grid's deliver
        # lock) — so _extent() is O(1) instead of a full rescan.
        self._dim_highwater: list[int] = [0] * schema.ndim

    # -- replica routing ---------------------------------------------------------

    def partitions(self) -> tuple[int, ...]:
        """Logical partition ids that can hold cells — every site for the
        classic partitioners, only ring members for membership-aware
        ones (a drained node's partition is empty by construction and
        must not be read or counted against coverage)."""
        return tuple(self.partitioner.sites())

    def chain_under(self, partitioner: Partitioner, p: int) -> tuple[int, ...]:
        """Replica chain for partition *p* under an arbitrary scheme.

        Membership-aware partitioners own their chains (chained
        declustering over ring members, never placing a replica on a
        drained site); the classic ones use the array's placement over
        the full site range.
        """
        chain_sites = getattr(partitioner, "chain_sites", None)
        if chain_sites is not None:
            return chain_sites(p, self.replication)
        return self.placement.chain(p, partitioner.n_sites, self.replication)

    def partition_chain(self, p: int) -> tuple[int, ...]:
        """Replica chain (primary first) for logical partition *p*."""
        return self.chain_under(self.partitioner, p)

    def replica_sites(self, coords: Coords) -> tuple[int, ...]:
        return self.partition_chain(self.partitioner.site_of(coords))

    def _note_coords(self, coords: Coords) -> None:
        """Advance the per-dimension high-water marks (grid.deliver calls
        this under its delivery lock for every stored cell)."""
        hw = self._dim_highwater
        for i, c in enumerate(coords):
            if c > hw[i]:
                hw[i] = c

    # -- writes ------------------------------------------------------------------

    def write(self, coords: Coords, values: Optional[tuple]) -> None:
        """Route one cell to all of its replica sites.

        The primary copy is metered as ``"load"``, the extras as
        ``"replication"``.  Delivery is fire-and-forget: a transfer lost
        in flight (an injected drop, or a node crashing on this very
        tick) loses that copy silently, like a real lossy fabric.  Only
        when *every* replica site is already dead — no copy could
        possibly land — does the write raise :class:`QuorumError`.
        """
        sites = self.replica_sites(coords)
        if not any(self.grid.nodes[s].alive for s in sites):
            raise QuorumError(
                f"write {coords} to {self.name!r}: every replica site of "
                f"{sites} is dead"
            )
        for i, site in enumerate(sites):
            reason = "load" if i == 0 else "replication"
            self.grid.deliver(
                COORDINATOR, site, self.cell_nbytes, reason,
                self.name, coords, values,
            )
        self._dual_write(coords, values)

    def _dual_write(self, coords: Coords, values: Optional[tuple]) -> None:
        """During an elastic migration, land the write in its *new* homes
        too (metered ``"rebalance_dual"``), so no interleaving of ticks
        and writes can lose an update: whichever placement ends up
        serving after cutover-or-abort already has the cell."""
        mig = self._migration
        if mig is None:
            return
        old_sites = set(self.replica_sites(coords))
        for site in mig.new_chain(coords):
            if site in old_sites:
                continue
            try:
                if self.grid.deliver(
                    COORDINATOR, site, self.cell_nbytes, "rebalance_dual",
                    self.name, coords, values,
                ):
                    mig.note_delivered(coords, site)
            except TransientIOError:
                # Copy lost at the receiving disk: pre-cutover
                # verification re-queues it from the old home.
                pass
        mig.note_write(coords)

    def load(self, records: Iterable[LoadRecord]) -> int:
        n = 0
        for rec in records:
            self.write(rec.coords, rec.values)
            n += 1
        self.flush()
        return n

    def write_failover(self, coords: Coords,
                       values: Optional[tuple]) -> tuple[int, bool]:
        """Write one cell, failing the serving copy over past dead sites.

        Unlike the fire-and-forget :meth:`write`, the *serving* copy of a
        cell whose primary is dead moves to the first surviving site of
        the replica chain — PR 1's placement, now used on the write path —
        metered under the ``"load_failover"`` ledger category.  Copies to
        other chain sites stay ``"replication"``; deliveries addressed to
        dead sites are recorded as dropped, exactly as :meth:`write` does.
        Returns ``(serving_site, failed_over)``; raises
        :class:`QuorumError` only when the chain is fully dead.
        """
        sites = self.replica_sites(coords)
        serving = next(
            (s for s in sites if self.grid.nodes[s].alive), None
        )
        if serving is None:
            raise QuorumError(
                f"write {coords} to {self.name!r}: every replica site of "
                f"{sites} is dead"
            )
        failed_over = serving != sites[0]
        for site in sites:
            if site == serving:
                reason = "load_failover" if failed_over else "load"
            else:
                reason = "replication"
            self.grid.deliver(
                COORDINATOR, site, self.cell_nbytes, reason,
                self.name, coords, values,
            )
        self._dual_write(coords, values)
        return serving, failed_over

    def load_checkpointed(
        self,
        stream: Iterable[LoadRecord],
        batch_size: int = 64,
        load_epoch: int = 0,
        tolerant: bool = True,
        quarantine: Optional[QuarantineStore] = None,
        max_retries: int = 3,
    ) -> LoadReport:
        """Checkpointed, fault-tolerant, resumable bulk load (Section 2.8).

        The stream is divided into numbered batches routed to per-partition
        substreams; each batch commits atomically on every surviving site
        of the partition's replica chain (cursor file + WAL ``load_commit``
        record).  The load survives:

        * **malformed records** — quarantined with reason + offset
          (``tolerant=True``), surfaced in the returned
          :class:`~repro.storage.loader.LoadReport`;
        * **transient I/O faults** — bounded retries with recorded
          exponential backoff;
        * **node death mid-load** — the substream fails over to the
          replica chain (``"load_failover"`` in the ledger);
          :class:`QuorumError` only when a chain is fully dead;
        * **loader crashes** — re-drive the same stream with the same
          ``load_epoch``: committed batches are skipped per site, the
          in-flight batch replays idempotently, and the result is
          cell-for-cell identical to an uninterrupted load.
        """
        sinks = {
            p: _PartitionLoadSink(self, p)
            for p in self.partitions()
        }
        faults = self.grid.faults
        latency_before = self.grid.store_latency_ms
        loader = BulkLoader(
            sinks,
            route=self.partitioner.site_of,
            batch_size=batch_size,
            load_epoch=load_epoch,
            tolerant=tolerant,
            quarantine=quarantine,
            max_retries=max_retries,
            backoff_base_ms=self.grid.backoff_base_ms,
            backoff_max_ms=self.grid.backoff_max_ms,
            on_record=faults.on_load_record if faults is not None else None,
        )
        with loader:
            loader.load(stream)
        report = loader.report()
        report.store_latency_ms = (
            self.grid.store_latency_ms - latency_before
        )
        return report

    def load_uncertain(
        self,
        observations: Iterable[tuple[tuple[float, ...], tuple]],
        uncertainty: PositionUncertainty,
    ) -> int:
        """Load (position, values) observations with boundary replication.

        Each observation is stored in its home cell on every site that owns
        one of its candidate cells — plus, with ``replication`` > 1, the
        home cell's replica chain; copies beyond the home site are metered
        with reason ``"replication"``.
        """
        n = 0
        for position, values in observations:
            home = uncertainty.home_cell(position)
            sites = {self.partitioner.site_of(c)
                     for c in uncertainty.candidate_cells(position)}
            replicas = self.replica_sites(home)
            sites.update(replicas)
            home_site = replicas[0]
            if not any(self.grid.nodes[s].alive for s in sites):
                raise QuorumError(
                    f"uncertain load at {home}: every candidate site of "
                    f"{sorted(sites)} is dead"
                )
            for site in sorted(sites):
                reason = "load" if site == home_site else "replication"
                self.grid.deliver(
                    COORDINATOR, site, self.cell_nbytes, reason,
                    self.name, home, values,
                )
            n += 1
        self.flush()
        return n

    def flush(self) -> None:
        for node in self.grid.alive_nodes():
            node.partition(self.name).flush()

    # -- partition reads with failover ---------------------------------------------

    def _attempt_read(
        self,
        site: int,
        p: int,
        window: Optional[tuple[Coords, Coords]],
        per_cell_reason: Optional[str],
        attempt: int,
        deadline: Optional[Deadline],
        buf: Optional[MeterBuffer] = None,
        attr_ranges: Optional[dict] = None,
    ) -> list[tuple[Coords, Optional[Cell]]]:
        """One read attempt of partition *p* against a single *site*.

        Sleeps the modeled fetch latency plus any injected slow-read
        penalty (deadline-aware slices), then scans the site's partition
        restricted to coordinates whose primary is *p*.  Metering goes to
        the grid's ledger/counters directly, or into *buf* when this is a
        hedged attempt whose meters must stay private until it wins.

        Raises :class:`NodeFailedError` (node died, possibly mid-scan),
        :class:`TransientIOError` (injected read fault), or
        :class:`DeadlineExceededError` — classification is the caller's
        job.
        """
        grid = self.grid
        node = grid.nodes[site]
        faults = grid.faults
        penalty_ms = 0.0
        if faults is not None:
            # May raise TransientIOError (scheduled read burst).
            penalty_ms = faults.intercept_read(site, p, attempt)
        wait_ms = grid.fetch_latency_ms + penalty_ms
        if wait_ms > 0.0:
            # Modeled RPC round trip (plus injected slowness) to the
            # serving site.  A real sleep (not accounting): it releases
            # the GIL, so concurrent partition fetches overlap under the
            # scheduler exactly as network waits would — and it is sliced
            # so a slow site cannot carry the query past its deadline.
            sleep_under_deadline(
                wait_ms, deadline,
                what=f"fetch of partition {p} from node {site}",
            )
        # Per-cell metering exists so the injector's transfer clock
        # ticks *during* the scan — a scheduled kill can land
        # mid-read and exercise the partial-read-discard path.
        # Without an injector the clock has no observer, and the
        # per-cell ledger/counter locks become the contention
        # hot-spot under parallel fan-out — so gathers are metered
        # as one bulk transfer per partition (same total bytes).
        meter_per_cell = per_cell_reason is not None and faults is not None
        if buf is None:
            record = grid.ledger.record
            bump = node.counters.add
        else:
            record = buf.record
            bump = lambda name, n=1: buf.counter(node, name, n)  # noqa: E731
        cells: list[tuple[Coords, Optional[Cell]]] = []
        seen = 0
        for coords, cell in node.scan_partition(
            self.name, window, attr_ranges
        ):
            seen += 1
            if deadline is not None and seen % 64 == 0:
                deadline.check(f"scan of partition {p} on node {site}")
            if self.partitioner.site_of(coords) != p:
                continue  # replica of another partition
            if meter_per_cell:
                bump("cells_scanned")
                record(
                    site, COORDINATOR, self.cell_nbytes, per_cell_reason
                )
            cells.append((coords, cell))
        if not meter_per_cell:
            # Local (un-gathered) reads count as scans too.
            bump("cells_scanned", len(cells))
            if per_cell_reason is not None and cells:
                record(
                    site, COORDINATOR,
                    len(cells) * self.cell_nbytes, per_cell_reason,
                )
        return cells

    def _hedge_backup_site(
        self, chain: tuple[int, ...], primary: int
    ) -> Optional[int]:
        """The replica a hedged read would back *primary* up with: the
        next alive site of the chain (wrapping) whose breaker admits a
        request; ``None`` when the chain offers no backup."""
        grid = self.grid
        start = chain.index(primary)
        for offset in range(1, len(chain)):
            site = chain[(start + offset) % len(chain)]
            if site == primary or not grid.nodes[site].alive:
                continue
            if grid.breakers[site].allow():
                return site
        return None

    def _hedged_attempt(
        self,
        site: int,
        backup: int,
        p: int,
        window: Optional[tuple[Coords, Coords]],
        per_cell_reason: Optional[str],
        attempt: int,
        deadline: Optional[Deadline],
        attr_ranges: Optional[dict] = None,
    ) -> tuple[int, list[tuple[Coords, Optional[Cell]]]]:
        """Read partition *p* from *site*, hedging against *backup*.

        The primary attempt runs in a helper thread, metering into a
        private :class:`MeterBuffer`.  If it has not answered within the
        hedge delay, a backup attempt is launched against *backup* and
        the first success wins; the winner's buffer is committed (on this
        thread, so the open operator span absorbs the movement) and the
        loser's is discarded — exactly-once accounting by construction.
        Each attempt settles its own site's breaker.  Raises the primary
        attempt's failure only after *both* attempts have failed.
        """
        grid = self.grid
        policy = grid.resilience
        results: "queue.Queue[tuple[int, Any, Optional[BaseException]]]" = (
            queue.Queue()
        )

        def run(attempt_site: int) -> None:
            buf = MeterBuffer()
            try:
                cells = self._attempt_read(
                    attempt_site, p, window, per_cell_reason,
                    attempt, deadline, buf, attr_ranges,
                )
            except BaseException as exc:  # classified by the consumer
                results.put((attempt_site, None, exc))
            else:
                results.put((attempt_site, (cells, buf), None))

        threading.Thread(
            target=run, args=(site,),
            name=f"repro-hedge-p{p}", daemon=True,
        ).start()
        launched = [site]
        delay_s = (policy.hedge.delay_ms or 0.0) / 1e3
        failures: list[tuple[int, BaseException]] = []
        deadline_exc: Optional[DeadlineExceededError] = None
        while True:
            try:
                timeout: Optional[float]
                if len(launched) == 1:
                    timeout = delay_s
                elif deadline is not None:
                    timeout = max(deadline.remaining_ms(), 1.0) / 1e3
                else:
                    timeout = None
                got = results.get(timeout=timeout)
            except queue.Empty:
                if len(launched) == 1:
                    # Hedge delay elapsed: launch the backup read.
                    grid._count_resilience("hedges")
                    tracing.add_current("hedges", 1)
                    threading.Thread(
                        target=run, args=(backup,),
                        name=f"repro-hedge-p{p}b", daemon=True,
                    ).start()
                    launched.append(backup)
                    continue
                # Both in flight and the deadline ran out while waiting.
                grid._count_resilience("deadline_misses")
                raise DeadlineExceededError(
                    deadline.budget_ms if deadline is not None else 0.0,
                    f"hedged read of partition {p}",
                )
            attempt_site, payload, exc = got
            if exc is None:
                cells, buf = payload
                buf.commit(grid)
                grid.breakers[attempt_site].record_success()
                if attempt_site != site:
                    grid._count_resilience("hedge_wins")
                    tracing.add_current("hedge_wins", 1)
                return attempt_site, cells
            if isinstance(exc, DeadlineExceededError):
                grid.breakers[attempt_site].abandon()
                deadline_exc = exc
            elif policy.retry.retryable(exc):
                grid.breakers[attempt_site].record_failure()
                failures.append((attempt_site, exc))
            else:
                grid.breakers[attempt_site].abandon()
                raise exc
            if len(launched) == 1:
                # Primary failed before the hedge fired: no point hedging
                # a request we can simply retry on the next chain site.
                break
            if len(failures) + (deadline_exc is not None) >= len(launched):
                break
        # The caller logs the *primary* site's failover when we raise; any
        # other failed attempt is logged here, attributed to its own site.
        for failed_site, _exc in failures:
            if failed_site != site:
                grid._log_failover(self.name, p, failed_site, attempt)
        if deadline_exc is not None:
            # Out of time beats out of retries: the deadline propagates.
            grid._count_resilience("deadline_misses")
            raise deadline_exc
        raise next((e for s, e in failures if s == site), failures[0][1])

    def _read_partition(
        self,
        p: int,
        window: Optional[tuple[Coords, Coords]] = None,
        per_cell_reason: Optional[str] = None,
        degraded: bool = False,
        attr_ranges: Optional[dict] = None,
    ) -> tuple[Optional[int], Optional[list[tuple[Coords, Optional[Cell]]]]]:
        """Read logical partition *p* from the first surviving replica,
        under the grid's :class:`~repro.cluster.resilience.ResiliencePolicy`.

        Walks the replica chain for up to ``retry.max_attempts`` passes.
        Per attempt: the ambient deadline is checked (cooperative
        cancellation), dead nodes are skipped (logged as failovers with
        capped, seeded-jitter backoff), nodes whose circuit breaker is
        open are skipped straight to their replicas (except on the final
        pass, where the breaker is forced as a half-open probe so an open
        breaker can never manufacture a :class:`QuorumError` against a
        reachable replica), and — when hedging is enabled and a backup
        replica exists — a backup read races the primary after the hedge
        delay.  A node dying *mid-scan* discards the partial read and
        fails over; transient read faults are absorbed the same way.

        Returns ``(serving_site, cells)`` where cells are restricted to
        coordinates whose primary is *p* — which both deduplicates
        replicas and makes per-partition reads exactly-once for
        aggregation.  With ``per_cell_reason`` set, each returned cell is
        metered as a transfer from the serving site to the coordinator.

        Raises :class:`QuorumError` when the chain is exhausted, or
        returns ``(None, None)`` instead if *degraded* is True;
        :class:`DeadlineExceededError` always propagates.
        """
        chain = self.partition_chain(p)
        grid = self.grid
        policy = grid.resilience
        deadline = current_deadline()
        attempt = 0
        for pass_no in range(1, policy.retry.max_attempts + 1):
            final_pass = pass_no == policy.retry.max_attempts
            for site in chain:
                attempt += 1
                if deadline is not None and deadline.expired:
                    grid._count_resilience("deadline_misses")
                    tracing.add_current("deadline_misses", 1)
                    deadline.check(f"read of partition {p}")
                node = grid.nodes[site]
                if not node.alive:
                    grid._log_failover(self.name, p, site, attempt)
                    continue
                breaker = grid.breakers[site]
                if not breaker.allow(force=final_pass):
                    grid._count_resilience("breaker_skips")
                    tracing.add_current("breaker_skips", 1)
                    continue
                backup = (
                    self._hedge_backup_site(chain, site)
                    if policy.hedge.enabled else None
                )
                try:
                    if backup is not None:
                        served, cells = self._hedged_attempt(
                            site, backup, p, window, per_cell_reason,
                            attempt, deadline, attr_ranges,
                        )
                    else:
                        cells = self._attempt_read(
                            site, p, window, per_cell_reason,
                            attempt, deadline, attr_ranges=attr_ranges,
                        )
                        breaker.record_success()
                        served = site
                except DeadlineExceededError:
                    if backup is None:
                        # The budget ran out, not the node: don't judge it.
                        breaker.abandon()
                        grid._count_resilience("deadline_misses")
                    tracing.add_current("deadline_misses", 1)
                    raise
                except Exception as exc:
                    if not policy.retry.retryable(exc):
                        if backup is None:
                            breaker.abandon()
                        raise
                    if backup is None:
                        breaker.record_failure()
                    # Failed over: charge the policy's capped backoff.
                    grid._log_failover(self.name, p, site, attempt)
                    continue
                if served != chain[0]:
                    grid.nodes[served].counters.add("failovers_served")
                tracing.mark_current("nodes", served)
                tracing.add_current("cells_scanned", len(cells))
                return served, cells
        fallback = self._dual_resolve_read(
            p, window, per_cell_reason, attr_ranges
        )
        if fallback is not None:
            return fallback
        if degraded:
            return None, None
        raise QuorumError(
            f"partition {p} of {self.name!r}: no surviving replica among "
            f"sites {chain} after {attempt} attempts"
        )

    def _dual_resolve_read(
        self,
        p: int,
        window: Optional[tuple[Coords, Coords]],
        per_cell_reason: Optional[str],
        attr_ranges: Optional[dict] = None,
    ) -> Optional[tuple[int, list[tuple[Coords, Optional[Cell]]]]]:
        """Serve partition *p* from the migration's *new* homes after the
        old chain is exhausted.

        During an elastic migration every already-moved (or dual-written)
        cell also lives at its new-placement sites; when the old chain is
        fully dead the read fails over to those copies.  Exactly-once is
        preserved: only cells whose *old* primary is *p* are served (the
        same dedup rule every chain read applies), each at most once; and
        metering follows the PR-6 :class:`MeterBuffer` pattern — buffered
        per contributing site and committed all-or-nothing, so a partial
        union scan that cannot cover the partition meters nothing.

        Returns ``None`` (not an error) when there is no migration or the
        new homes cannot account for every known cell of *p* — the caller
        then degrades or raises :class:`QuorumError` exactly as before.
        """
        mig = self._migration
        if mig is None:
            return None
        grid = self.grid
        deadline = current_deadline()
        buf = MeterBuffer()
        got: dict[Coords, tuple[int, Optional[Cell]]] = {}
        for site in mig.new_partitioner.sites():
            node = grid.nodes[site]
            if not node.alive:
                continue
            try:
                for coords, cell in node.scan_partition(
                    self.name, window, attr_ranges
                ):
                    if deadline is not None and len(got) % 64 == 0:
                        deadline.check(
                            f"dual-resolve of partition {p} on node {site}"
                        )
                    if self.partitioner.site_of(coords) != p:
                        continue  # belongs to another old partition
                    if coords in got:
                        continue  # already served by an earlier member
                    if not mig.trusted(coords, site):
                        continue  # stale resurrection: never serve it
                    got[coords] = (site, cell)
            except (NodeFailedError, TransientIOError):
                continue  # another member may still cover these cells
        # Completeness: every cell the migration knows belongs to p (and
        # the window) must have been found, else the answer would be
        # silently partial — fall back to the ordinary failure path.
        with mig._lock:
            known = list(mig.known)
        for coords in known:
            if self.partitioner.site_of(coords) != p:
                continue
            if window is not None and not all(
                l <= c <= h
                for c, l, h in zip(coords, window[0], window[1])
            ):
                continue
            if coords not in got:
                return None
        # Commit the buffered accounting only now that the read is known
        # complete: per-site bulk meters plus scan counters.
        per_site: dict[int, int] = {}
        for site, _cell in got.values():
            per_site[site] = per_site.get(site, 0) + 1
        for site, count in per_site.items():
            buf.counter(grid.nodes[site], "cells_scanned", count)
            if per_cell_reason is not None:
                buf.record(
                    site, COORDINATOR,
                    count * self.cell_nbytes, per_cell_reason,
                )
        buf.commit(grid)
        grid._count_resilience("dual_reads")
        served = (
            max(per_site, key=lambda s: (per_site[s], -s))
            if per_site
            else next(
                (
                    s for s in mig.new_partitioner.sites()
                    if grid.nodes[s].alive
                ),
                None,
            )
        )
        if served is None:
            return None
        cells = sorted(
            ((coords, cell) for coords, (_s, cell) in got.items()),
        )
        tracing.mark_current("nodes", served)
        tracing.add_current("cells_scanned", len(cells))
        tracing.add_current("dual_reads", 1)
        grid.nodes[served].counters.add("failovers_served")
        return served, cells

    def _read_partitions(
        self,
        window: Optional[tuple[Coords, Coords]] = None,
        per_cell_reason: Optional[str] = None,
        degraded: bool = False,
        partitions: Optional[Sequence[int]] = None,
        tolerate_deadline: bool = False,
        attr_ranges: Optional[dict] = None,
    ) -> list[tuple[Optional[int], Optional[list[tuple[Coords, Optional[Cell]]]]]]:
        """Fan :meth:`_read_partition` across partitions via the scheduler.

        Results come back in partition order regardless of which worker
        finished first, so every caller merges exactly as the serial path
        did.  A fully dead chain raises :class:`QuorumError` (first failing
        partition wins deterministically) unless *degraded* is set, in
        which case its slot is ``(None, None)``.  With *tolerate_deadline*
        (the ``on_unavailable="partial"`` path) a partition whose read ran
        out of deadline budget is likewise returned as ``(None, None)`` —
        partial coverage instead of a failed query.
        """
        if partitions is None:
            partitions = self.partitions()

        def read_one(p: int) -> tuple:
            try:
                return self._read_partition(
                    p, window, per_cell_reason, degraded, attr_ranges
                )
            except DeadlineExceededError:
                if not tolerate_deadline:
                    raise
                return None, None

        return self.grid.scheduler.map(
            [(lambda p=p: read_one(p)) for p in partitions]
        )

    # -- reads -------------------------------------------------------------------

    def scan(
        self,
        window: Optional[tuple[Coords, Coords]] = None,
        degraded: bool = False,
        attr_ranges: Optional[dict] = None,
    ) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """Gather (windowed) cells at the coordinator, metering the gather.

        Reads each logical partition from its first surviving replica, so
        the scan survives up to ``replication - 1`` failures per chain.
        A partition with no surviving replica raises
        :class:`~repro.core.errors.QuorumError` — or, with
        ``degraded=True``, is silently skipped (partial answer).
        *attr_ranges* forwards the planner's value-pruning intervals to
        every node's storage manager (chunk skipping; pruned buckets'
        occupied cells come back NULL).
        """
        for p, (_site, cells) in zip(
            self.partitions(),
            self._read_partitions(
                window, "gather", degraded, attr_ranges=attr_ranges
            ),
        ):
            if cells is None:
                if degraded:
                    continue
                # Defensive: _read_partition raises before returning None
                # on the strict path, but an error here must never be an
                # assert — `python -O` would turn a dead chain into
                # silent data loss.
                raise QuorumError(
                    f"partition {p} of {self.name!r}: no surviving replica"
                )
            yield from cells

    def cell_count(self) -> int:
        """Total stored cells (replicas included) — the balance metric."""
        return sum(self.cells_per_node())

    def cells_per_node(self) -> list[int]:
        """Stored cells per node; dead nodes report 0 (unreachable)."""
        return [
            node.cell_count(self.name) if node.alive else 0
            for node in self.grid.nodes
        ]

    def imbalance(self) -> float:
        """max/mean stored cells per *alive* node; 1.0 is perfect balance.

        Dead nodes report 0 cells because they are unreachable, not
        because they are empty — including them in the mean would inflate
        the metric every time a node crashes, even when the survivors are
        perfectly balanced.
        """
        counts = [
            node.cell_count(self.name)
            for node in self.grid.nodes
            if node.alive
        ]
        if not counts:
            return 0.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def subsample(
        self,
        window: tuple[Coords, Coords],
        degraded: bool = False,
        deadline: Optional[Deadline] = None,
        on_unavailable: str = "raise",
        attr_ranges: Optional[dict] = None,
    ) -> "SciArray | DegradedResult":
        """Window query executed with per-node bucket pruning.

        With ``degraded=True``, partitions that lost every replica are
        skipped and the partial answer comes back with a coverage report
        instead of a :class:`QuorumError`.  *deadline* bounds the query's
        wall time (installed as the ambient deadline for every partition
        task); *on_unavailable* decides what an unservable partition —
        dead chain or deadline-starved read — does: ``"raise"`` (default)
        propagates the error, ``"partial"`` marks the partition missing
        and returns a :class:`DegradedResult` within the budget.
        """
        partial = degraded or _wants_partial(on_unavailable)
        out = SciArray(self.schema, name=f"{self.name}_window")
        missing: list[tuple[str, int]] = []
        with deadline_scope(deadline):
            for p, (_site, cells) in zip(
                self.partitions(),
                self._read_partitions(
                    window, "gather", partial,
                    tolerate_deadline=_wants_partial(on_unavailable),
                    attr_ranges=attr_ranges,
                ),
            ):
                if cells is None:
                    missing.append((self.name, p))
                    continue
                for coords, cell in cells:
                    out.set_unchecked(
                        coords, None if cell is None else cell.values
                    )
        if partial:
            report = CoverageReport(len(self.partitions()), tuple(missing))
            return DegradedResult(out, report)
        return out

    def materialize(self, attr_ranges: Optional[dict] = None) -> SciArray:
        # Partition reads yield schema-conforming cells at 1-based coords,
        # so the checked set() path (coord normalisation, bounds, record
        # coercion) is pure overhead here — and this loop is the gather
        # hot path for every distributed operator.
        out = SciArray(self.schema, name=self.name)
        unchecked = out.set_unchecked
        for coords, cell in self.scan(attr_ranges=attr_ranges):
            unchecked(coords, None if cell is None else cell.values)
        return out

    # -- distributed operators ----------------------------------------------------

    def aggregate(
        self,
        group_dims: Sequence[str],
        agg: "str | UserAggregate",
        attr: Optional[str] = None,
        degraded: bool = False,
        deadline: Optional[Deadline] = None,
        on_unavailable: str = "raise",
    ) -> "SciArray | DegradedResult":
        """Grouped aggregation with local partials where algebraic.

        Each logical partition is aggregated exactly once, at the serving
        site of its replica chain — so the partials stay node-local even
        when the primary is dead, and replicas are never double-counted.
        *deadline* / *on_unavailable* behave as in :meth:`subsample`.
        """
        aggregate_fn = agg if isinstance(agg, UserAggregate) else get_aggregate(agg)
        attr_name = attr or self.schema.attr_names[0]
        positions = [self.schema.dim_index(d) for d in group_dims]
        merge = _ALGEBRAIC_MERGES.get(aggregate_fn.name)
        tolerate_deadline = _wants_partial(on_unavailable)
        partial_mode = degraded or tolerate_deadline

        merged: dict[Coords, Any] = {}
        missing: list[tuple[str, int]] = []
        with deadline_scope(deadline):
            self._aggregate_partials(
                merge, aggregate_fn, attr_name, positions,
                partial_mode, tolerate_deadline, merged, missing,
            )

        from ..core.schema import Attribute
        from ..core.ops.content import _result_type

        out_schema = ArraySchema(
            name=f"{self.name}_agg",
            attributes=(Attribute(aggregate_fn.name, _result_type(aggregate_fn)),),
            dimensions=tuple(self.schema.dimensions[p] for p in positions),
        )
        out = SciArray(out_schema, name=f"{self.name}_agg")
        for key, state in merged.items():
            out.set(key, aggregate_fn.final(state))
        if partial_mode:
            report = CoverageReport(len(self.partitions()), tuple(missing))
            return DegradedResult(out, report)
        return out

    def _aggregate_partials(
        self,
        merge: Optional[Callable[[Any, Any], Any]],
        aggregate_fn: UserAggregate,
        attr_name: str,
        positions: list[int],
        degraded: bool,
        tolerate_deadline: bool,
        merged: dict[Coords, Any],
        missing: list[tuple[str, int]],
    ) -> None:
        """Run :meth:`aggregate`'s read/transition phase into *merged*."""
        if merge is not None:
            # Algebraic: the local phase (scan + per-group transitions)
            # runs in scheduler workers; the coordinator merges partial
            # states in partition order, so float accumulation order — and
            # therefore the result, bit for bit — matches the serial path.
            def local_phase(p: int) -> Optional[tuple[int, dict[Coords, Any]]]:
                try:
                    site, cells = self._read_partition(p, degraded=degraded)
                except DeadlineExceededError:
                    if not tolerate_deadline:
                        raise
                    return None
                if cells is None:
                    return None
                local: dict[Coords, Any] = {}
                for coords, cell in cells:
                    if cell is None:
                        continue
                    key = tuple(coords[q] for q in positions)
                    state = local.get(key)
                    if key not in local:
                        state = aggregate_fn.initial()
                    local[key] = aggregate_fn.transition(
                        state, getattr(cell, attr_name)
                    )
                return site, local

            partials = self.grid.scheduler.map(
                [
                    (lambda p=p: local_phase(p))
                    for p in self.partitions()
                ]
            )
            state_nbytes = 24  # partial-state wire estimate
            for p, partial in zip(self.partitions(), partials):
                if partial is None:
                    missing.append((self.name, p))
                    continue
                site, local = partial
                for key, state in local.items():
                    self.grid.ledger.record(
                        site, COORDINATOR, state_nbytes, "aggregate"
                    )
                    if key in merged:
                        merged[key] = merge(merged[key], state)
                    else:
                        merged[key] = state
        else:
            # Holistic user aggregate: ship raw values to the coordinator.
            # Reads fan out; the transitions themselves stay coordinator-
            # side and in partition order (holistic state is not mergeable,
            # and order-dependent aggregates must see the serial order).
            for p, (site, cells) in zip(
                self.partitions(),
                self._read_partitions(
                    degraded=degraded, tolerate_deadline=tolerate_deadline
                ),
            ):
                if cells is None:
                    missing.append((self.name, p))
                    continue
                for coords, cell in cells:
                    if cell is None:
                        continue
                    self.grid.ledger.record(
                        site, COORDINATOR, self.cell_nbytes, "aggregate"
                    )
                    key = tuple(coords[q] for q in positions)
                    state = merged.get(key)
                    if key not in merged:
                        state = aggregate_fn.initial()
                    merged[key] = aggregate_fn.transition(
                        state, getattr(cell, attr_name)
                    )

    def sjoin(
        self,
        other: "DistributedArray",
        on: Optional[Sequence[tuple[str, str]]] = None,
        degraded: bool = False,
    ) -> "SciArray | DegradedResult":
        """Structured join of two distributed arrays on all dimensions.

        Co-partitioned operands (equal partitioners — see
        :func:`repro.cluster.copartition.is_copartitioned`) join locally
        with **zero** shuffle; otherwise the right operand's cells are first
        repartitioned to the left's scheme (metered as ``"join_shuffle"``).
        Either side failing over to a replica keeps the join running; a
        partition with no surviving replica raises :class:`QuorumError`
        unless ``degraded=True``.
        """
        if on is None:
            on = list(zip(self.schema.dim_names, other.schema.dim_names))
        if len(on) != self.schema.ndim or len(on) != other.schema.ndim:
            raise SchemaError(
                "distributed sjoin joins all dimensions pairwise; use a "
                "local sjoin for partial-dimension joins"
            )

        missing: list[tuple[str, int]] = []
        copartitioned = self.partitioner == other.partitioner

        # Read every left partition in parallel (no per-cell metering: the
        # join runs at the serving site, which holds the cells locally).
        left_served: dict[int, tuple[int, list]] = {}
        for p, (site, cells) in zip(
            self.partitions(), self._read_partitions(degraded=degraded)
        ):
            if cells is None:
                missing.append((self.name, p))
                continue
            left_served[p] = (site, cells)

        # Assemble the right side per left partition.
        right_parts: dict[int, SciArray] = {
            p: SciArray(other.schema, name=f"{other.name}@p{p}")
            for p in left_served
        }
        total_partitions = len(self.partitions())
        if copartitioned:
            live = sorted(left_served)
            right_reads = other._read_partitions(
                degraded=degraded, partitions=live
            )
            for p, (r_site, r_cells) in zip(live, right_reads):
                if r_cells is None:
                    missing.append((other.name, p))
                    continue
                left_site = left_served[p][0]
                for coords, cell in r_cells:
                    if r_site != left_site:
                        # Replica chains diverge (different k/placement):
                        # the right cells must travel to the join site.
                        self.grid.ledger.record(
                            r_site, left_site, other.cell_nbytes, "join_shuffle"
                        )
                    right_parts[p].set(coords, cell)
        else:
            # Shuffle right cells to the site joining the matching left cell.
            total_partitions += len(other.partitions())
            for q, (r_site, r_cells) in zip(
                other.partitions(),
                other._read_partitions(degraded=degraded),
            ):
                if r_cells is None:
                    missing.append((other.name, q))
                    continue
                for coords, cell in r_cells:
                    target = self.partitioner.site_of(coords)
                    if target not in left_served:
                        continue  # left side lost: nothing to join against
                    left_site = left_served[target][0]
                    if r_site != left_site:
                        self.grid.ledger.record(
                            r_site, left_site, other.cell_nbytes, "join_shuffle"
                        )
                    right_parts[target].set(coords, cell)

        # Local joins are pure per partition: fan them out, merge the
        # results (and meter the gathers) serially in partition order.
        def local_join(
            p: int, left_site: int, cells: list
        ) -> Optional[SciArray]:
            left = SciArray(self.schema, name=f"{self.name}@p{p}")
            for coords, cell in cells:
                left.set(coords, cell)
            right = right_parts[p]
            if left.count_occupied() == 0 or right.count_occupied() == 0:
                return None
            return structural_ops.sjoin(left, right, on=on)

        ordered = sorted(left_served)
        locals_ = self.grid.scheduler.map(
            [
                (lambda p=p: local_join(p, *left_served[p]))
                for p in ordered
            ]
        )
        out: Optional[SciArray] = None
        for p, local in zip(ordered, locals_):
            if local is None:
                continue
            left_site = left_served[p][0]
            self.grid.ledger.record(
                left_site,
                COORDINATOR,
                local.count_occupied() * (self.cell_nbytes + other.cell_nbytes),
                "gather",
            )
            if out is None:
                out = local.empty_like(name=f"{self.name}_sjoin_{other.name}")
            for coords, cell in local.cells():
                out.set(coords, cell)
        if out is None:
            # Build an empty result with the joined schema.
            left = SciArray(self.schema)
            right = SciArray(other.schema)
            out = structural_ops.sjoin(left, right, on=on)
        if degraded:
            report = CoverageReport(total_partitions, tuple(missing))
            return DegradedResult(out, report)
        return out

    def filter(
        self,
        predicate,
        output_name: Optional[str] = None,
    ) -> "DistributedArray":
        """Distributed Filter: runs node-local with **zero** movement.

        Filter preserves cell addresses, so each node filters its own
        partition in place under the same partitioner — replica copies
        included, which keeps the output replicated exactly like the
        input.  Nodes that die mid-filter are skipped: their partitions'
        surviving replicas still produce complete output copies.
        """
        self._check_coverage()
        out = self.grid.create_array(
            output_name or f"{self.name}_filtered", self.schema,
            self.partitioner, replication=self.replication,
            placement=self.placement,
        )
        # Filter preserves addresses, so the extent high-water carries over.
        out._dim_highwater = list(self._dim_highwater)

        def filter_node(node: Node) -> None:
            try:
                target = node.partition(out.name)
                for coords, cell in node.scan_partition(self.name):
                    if cell is not None and predicate(cell):
                        target.append(coords, cell.values)
                    else:
                        target.append(coords, None)
                target.flush()
            except NodeFailedError:
                pass  # replicas on surviving nodes cover this partition

        # Node-local, zero movement: one task per node touches only that
        # node's storage, so the fan-out needs no cross-task coordination.
        self.grid.scheduler.map(
            [
                (lambda node=node: filter_node(node))
                for node in self.grid.alive_nodes()
            ]
        )
        return out

    def apply(
        self,
        fn,
        output: Sequence[tuple[str, str]],
        output_name: Optional[str] = None,
    ) -> "DistributedArray":
        """Distributed Apply: node-local per-cell computation, no movement."""
        from ..core.schema import define_array

        self._check_coverage()
        out_schema = define_array(
            f"{self.schema.name}_applied",
            values=list(output),
            dims=[(d.name, d.size) for d in self.schema.dimensions],
        )
        out = self.grid.create_array(
            output_name or f"{self.name}_applied", out_schema,
            self.partitioner, replication=self.replication,
            placement=self.placement,
        )
        out._dim_highwater = list(self._dim_highwater)
        n_out = len(output)

        def apply_node(node: Node) -> None:
            try:
                target = node.partition(out.name)
                for coords, cell in node.scan_partition(self.name):
                    if cell is None:
                        target.append(coords, None)
                        continue
                    result = fn(cell)
                    if n_out == 1 and not isinstance(result, tuple):
                        result = (result,)
                    target.append(coords, result)
                target.flush()
            except NodeFailedError:
                pass

        self.grid.scheduler.map(
            [
                (lambda node=node: apply_node(node))
                for node in self.grid.alive_nodes()
            ]
        )
        return out

    def _check_coverage(self) -> None:
        """Raise QuorumError if any partition has lost every replica."""
        for p in self.partitions():
            chain = self.partition_chain(p)
            if not any(self.grid.nodes[s].alive for s in chain):
                raise QuorumError(
                    f"partition {p} of {self.name!r}: every replica site "
                    f"of {chain} is dead"
                )

    def regrid(
        self,
        factors: Sequence[int],
        agg: "str | UserAggregate" = "avg",
        attr: Optional[str] = None,
    ) -> SciArray:
        """Distributed Regrid: local partial aggregation per output block,
        merged at the coordinator (algebraic aggregates only).

        Output blocks can straddle partition boundaries, so unlike
        :meth:`filter`/:meth:`apply` this moves partial states — metered as
        ``"regrid"``.
        """
        aggregate_fn = agg if isinstance(agg, UserAggregate) else get_aggregate(agg)
        merge = _ALGEBRAIC_MERGES.get(aggregate_fn.name)
        if merge is None:
            raise SchemaError(
                f"distributed regrid needs an algebraic aggregate, "
                f"not {aggregate_fn.name!r}"
            )
        attr_name = attr or self.schema.attr_names[0]
        if len(factors) != self.schema.ndim:
            raise SchemaError(
                f"regrid needs {self.schema.ndim} factors, got {len(factors)}"
            )
        def local_phase(p: int) -> tuple[int, dict[Coords, Any]]:
            site, cells = self._read_partition(p)
            if site is None or cells is None:  # pragma: no cover - defensive
                raise QuorumError(
                    f"partition {p} of {self.name!r}: no surviving replica"
                )
            local: dict[Coords, Any] = {}
            for coords, cell in cells:
                if cell is None:
                    continue
                key = tuple((c - 1) // f + 1 for c, f in zip(coords, factors))
                state = local.get(key)
                if key not in local:
                    state = aggregate_fn.initial()
                local[key] = aggregate_fn.transition(
                    state, getattr(cell, attr_name)
                )
            return site, local

        partials = self.grid.scheduler.map(
            [
                (lambda p=p: local_phase(p))
                for p in self.partitions()
            ]
        )
        merged: dict[Coords, Any] = {}
        for site, local in partials:
            for key, state in local.items():
                self.grid.ledger.record(site, COORDINATOR, 24, "regrid")
                if key in merged:
                    merged[key] = merge(merged[key], state)
                else:
                    merged[key] = state

        from ..core.schema import Attribute, Dimension
        from ..core.ops.content import _result_type

        out_sizes = [
            (self._extent(d) + f - 1) // f
            for d, f in zip(range(self.schema.ndim), factors)
        ]
        out_schema = ArraySchema(
            name=f"{self.name}_regrid",
            attributes=(Attribute(aggregate_fn.name, _result_type(aggregate_fn)),),
            dimensions=tuple(
                Dimension(d.name, s)
                for d, s in zip(self.schema.dimensions, out_sizes)
            ),
        )
        out = SciArray(out_schema, name=f"{self.name}_regrid")
        for key, state in merged.items():
            out.set(key, aggregate_fn.final(state))
        return out

    def _extent(self, dim_index: int) -> int:
        declared = self.schema.dimensions[dim_index].size
        if declared is not None:
            return declared
        # Unbounded: the per-dimension high-water mark maintained on every
        # write/ingest (see _note_coords) — O(1), no storage rescans.
        return self._dim_highwater[dim_index]

    # -- repartitioning --------------------------------------------------------------

    def repartition(self, new_partitioner: Partitioner) -> int:
        """Migrate to *new_partitioner*; returns cells whose primary moved.

        Movement is metered as ``"repartition"``; replica copies already
        resident on their (new) target node do not move (and cost
        nothing).  Reads fail over to surviving replicas, so a
        repartition can run through a node failure.
        """
        if new_partitioner.n_sites != len(self.grid.nodes):
            raise PartitioningError("new partitioner targets a different grid size")
        # Gather every logical cell once (in parallel), remembering who
        # served it; redistribution below stays serial so the delivery —
        # and with it fault ordering — is deterministic.
        collected: list[tuple[int, Coords, Optional[tuple]]] = []
        for p, (site, cells) in zip(self.partitions(), self._read_partitions()):
            if site is None or cells is None:  # pragma: no cover - defensive
                raise QuorumError(
                    f"partition {p} of {self.name!r}: no surviving replica"
                )
            for coords, cell in cells:
                collected.append(
                    (site, coords, None if cell is None else cell.values)
                )
        # Snapshot current physical placement: copies already on their new
        # home are free.
        prior: dict[int, frozenset[Coords]] = {}
        for node in self.grid.alive_nodes():
            prior[node.node_id] = node.partition(self.name).live_coords()
        # Rebuild partitions on every live node, then replay.
        for node in self.grid.alive_nodes():
            node.storage.drop_array(self.name)
            node.create_partition(self.name, self.schema)
        moved = 0
        for src_site, coords, values in collected:
            new_primary = new_partitioner.site_of(coords)
            if new_primary != self.partitioner.site_of(coords):
                moved += 1
            chain = self.chain_under(new_partitioner, new_primary)
            for dst in chain:
                if coords in prior.get(dst, ()):
                    # Already resident before the migration: free.
                    node = self.grid.nodes[dst]
                    if node.alive:
                        node.store(self.name, coords, values)
                    continue
                self.grid.deliver(
                    src_site, dst, self.cell_nbytes, "repartition",
                    self.name, coords, values,
                )
        self.flush()
        self.partitioner = new_partitioner
        return moved


class _PartitionLoadSink:
    """One logical partition's substream target for the checkpointed loader.

    The :class:`~repro.storage.loader.BulkLoader` sees the same sink
    surface a :class:`~repro.storage.manager.PersistentArray` offers
    (``schema``/``append``/``flush``/``load_cursor``/``commit_load_batch``)
    but every append routes through the grid's failover write and every
    checkpoint commits on each surviving site of the partition's replica
    chain — so the checkpoint survives exactly the failures the data does.
    """

    def __init__(self, array: DistributedArray, partition: int) -> None:
        self.array = array
        self.partition = partition
        self.schema = array.schema
        self._serving: Optional[int] = None

    def _alive_chain(self) -> list["Node"]:
        grid = self.array.grid
        return [
            grid.nodes[s]
            for s in self.array.partition_chain(self.partition)
            if grid.nodes[s].alive
        ]

    def append(self, coords: Coords, values: Optional[tuple]) -> None:
        serving, failed_over = self.array.write_failover(coords, values)
        if failed_over and serving != self._serving:
            # One failover event per serving-site transition, not per cell.
            primary = self.array.partition_chain(self.partition)[0]
            self.array.grid._log_failover(
                self.array.name, self.partition, primary, attempt=1
            )
        self._serving = serving

    def flush(self) -> None:
        for node in self._alive_chain():
            node.partition(self.array.name).flush()

    def _cursor_key(self, epoch: "int | str") -> str:
        # Replica chains overlap (chained declustering guarantees it), so
        # one node's partition store backs several logical partitions.
        # Scoping the cursor key by partition keeps one substream's
        # commits from making a sibling substream skip its own batches.
        return f"{epoch}/p{self.partition}"

    def load_cursor(self, epoch: "int | str" = 0) -> int:
        """Furthest batch any surviving replica committed for *this*
        partition's substream.

        ``max`` is sound because commits happen only after the batch's
        cells were delivered to the whole chain: a replica whose cursor
        lags still holds (or can WAL-replay) every cell of the batch.
        """
        key = self._cursor_key(epoch)
        cursors = [
            node.partition(self.array.name).load_cursor(key)
            for node in self._alive_chain()
        ]
        return max(cursors, default=-1)

    def commit_load_batch(self, epoch: "int | str", seq: int) -> None:
        nodes = self._alive_chain()
        if not nodes:
            raise QuorumError(
                f"commit of load batch {seq} for partition "
                f"{self.partition} of {self.array.name!r}: chain is dead"
            )
        key = self._cursor_key(epoch)
        for node in nodes:
            node.commit_load_batch(self.array.name, key, seq)


class Grid:
    """A simulated shared-nothing cluster rooted at one directory."""

    def __init__(
        self,
        n_nodes: int,
        directory: "str | Path",
        memory_budget: int = 1 << 20,
        fault_injector: Optional[FaultInjector] = None,
        default_replication: int = 1,
        max_read_retries: int = 2,
        backoff_base_ms: float = 1.0,
        backoff_max_ms: float = 64.0,
        parallelism: Optional[int] = None,
        chunk_cache_bytes: int = 8 << 20,
        fetch_latency_ms: float = 0.0,
        resilience: Optional[ResiliencePolicy] = None,
        hedge_delay_ms: Optional[float] = None,
    ) -> None:
        if n_nodes < 1:
            raise PartitioningError("a grid needs at least one node")
        directory = Path(directory)
        # Remembered for elastic growth: add_node() provisions new
        # workers with the same storage knobs as the founding members.
        self.directory = directory
        self.memory_budget = memory_budget
        self.chunk_cache_bytes = chunk_cache_bytes
        self.nodes = [
            Node(
                i,
                directory / f"node_{i:03d}",
                memory_budget=memory_budget,
                chunk_cache_bytes=chunk_cache_bytes,
            )
            for i in range(n_nodes)
        ]
        self.ledger = DataMovementLedger()
        self.default_replication = default_replication
        # The resilience bundle: an explicit policy wins; otherwise one is
        # assembled from the legacy knobs (max_read_retries, backoff_*),
        # seeded from the fault injector so jitter is drill-reproducible.
        if resilience is None:
            resilience = ResiliencePolicy(
                retry=RetryPolicy(
                    max_attempts=max_read_retries,
                    backoff_base_ms=backoff_base_ms,
                    backoff_max_ms=backoff_max_ms,
                    seed=fault_injector.seed if fault_injector is not None
                    else 0,
                ),
                hedge=HedgePolicy(delay_ms=hedge_delay_ms),
            )
        elif hedge_delay_ms is not None:
            resilience = ResiliencePolicy(
                retry=resilience.retry,
                breaker=resilience.breaker,
                hedge=HedgePolicy(delay_ms=hedge_delay_ms),
            )
        self.resilience = resilience
        self.max_read_retries = resilience.retry.max_attempts
        self.backoff_base_ms = resilience.retry.backoff_base_ms
        self.backoff_max_ms = resilience.retry.backoff_max_ms
        self.breakers = [
            CircuitBreaker(f"node_{i}", resilience.breaker)
            for i in range(n_nodes)
        ]
        self._resilience_lock = threading.Lock()
        self.resilience_counters: dict[str, int] = {
            "hedges": 0,
            "hedge_wins": 0,
            "breaker_skips": 0,
            "deadline_misses": 0,
            "dual_reads": 0,
        }
        self.failover_log: list[FailoverEvent] = []
        #: simulated latency charged by slow-site faults (the grid never sleeps)
        self.store_latency_ms = 0.0
        #: modeled per-partition-fetch RPC latency, realised as a *real*
        #: sleep inside each partition read.  Unlike ``store_latency_ms``
        #: (pure accounting), this knob makes wall-clock behave like a
        #: networked grid so intra-query fan-out can be measured
        #: honestly — fetches overlap under the scheduler even when the
        #: decode work itself cannot.  Off (0.0) by default; benchmarks
        #: opt in explicitly.
        self.fetch_latency_ms = float(fetch_latency_ms)
        self.faults: Optional[FaultInjector] = None
        if fault_injector is not None:
            fault_injector.attach(self)
        # Intra-query fan-out.  Fault drills run at full parallelism too:
        # the injector is thread-safe and its randomness is keyed (not a
        # shared stream), so a drill is reproducible from (workload, seed)
        # even when scheduler workers race — the old force-serial special
        # case for fault-injected grids is gone.
        if parallelism is None:
            parallelism = default_parallelism(n_nodes)
        self.parallelism = parallelism
        self.scheduler = PartitionScheduler(parallelism)
        # Writes and failover logging are cross-node critical sections.
        self._deliver_lock = threading.RLock()
        self._failover_lock = threading.Lock()
        self._arrays: dict[str, DistributedArray] = {}
        # Elastic-operations bookkeeping: in-flight migrations, finished
        # migration reports, and node rebuild reports — all surfaced in
        # metrics_snapshot() / explain.
        self.active_rebalancers: list[Rebalancer] = []
        self.rebalance_log: list[RebalanceReport] = []
        self.rebuilds: list[RebuildReport] = []

    # -- liveness --------------------------------------------------------------------

    def alive_nodes(self) -> list[Node]:
        return [node for node in self.nodes if node.alive]

    def members(self) -> tuple[int, ...]:
        """Node ids currently part of the grid.  Retired slots are
        excluded but never renumbered — a node id is forever."""
        return tuple(n.node_id for n in self.nodes if not n.retired)

    # -- elastic membership ----------------------------------------------------------

    def _ring_target(
        self, arr: "DistributedArray", members: tuple[int, ...]
    ) -> Partitioner:
        """The partitioner *arr* should migrate to for *members*.

        Ring-partitioned arrays keep their ring with the membership
        delta applied — that is what bounds movement at ~1/(N+1) per
        added/removed member.  Any other scheme converts to a consistent
        hash ring, a one-time full reshuffle that buys every later
        membership change the cheap path.
        """
        from .partitioning import ConsistentHashPartitioner

        if len(members) < arr.replication:
            raise PartitioningError(
                f"array {arr.name!r} needs {arr.replication} members for "
                f"its replica chains; membership would be {members}"
            )
        current = arr.partitioner
        if isinstance(current, ConsistentHashPartitioner):
            out = current
            for m in sorted(set(members) - set(current.members)):
                out = out.with_member(m)
            for m in sorted(set(current.members) - set(members)):
                out = out.without_member(m)
            return out
        return ConsistentHashPartitioner(len(self.nodes), members=members)

    def add_node(
        self,
        max_transfer_cells_per_tick: int = 64,
        interleave: Optional[Callable[[], None]] = None,
    ) -> tuple[int, list[RebalanceReport]]:
        """Grow the grid by one worker, online.

        Provisions the node with the grid's storage knobs, then migrates
        every array to a ring including the new member — throttled
        background copies (metered ``"rebalance"``) interleaved with
        serving traffic, moving only ~1/(N+1) of each array's cells.
        Returns the new node id and one report per migrated array.
        """
        nid = len(self.nodes)
        node = Node(
            nid,
            self.directory / f"node_{nid:03d}",
            memory_budget=self.memory_budget,
            chunk_cache_bytes=self.chunk_cache_bytes,
        )
        self.nodes.append(node)
        self.breakers.append(
            CircuitBreaker(f"node_{nid}", self.resilience.breaker)
        )
        for name in self.names():
            node.create_partition(name, self._arrays[name].schema)
        _flight_emit("node_add", node=nid, members=len(self.nodes))
        members = self.members()
        reports: list[RebalanceReport] = []
        for name in self.names():
            arr = self._arrays[name]
            reports.append(
                self.rebalance(
                    name, self._ring_target(arr, members),
                    max_transfer_cells_per_tick=max_transfer_cells_per_tick,
                    interleave=interleave,
                )
            )
        return nid, reports

    def drain_node(
        self,
        node_id: int,
        max_transfer_cells_per_tick: int = 64,
        interleave: Optional[Callable[[], None]] = None,
    ) -> list[RebalanceReport]:
        """Move every chunk off *node_id*, online.

        The node stays up as an empty standby (it serves old-chain reads
        until each array's cutover) — :meth:`remove_node` retires it for
        good.  Each array migrates to its ring minus the drained member;
        with replication, sources come from surviving chain copies, so a
        drain can even evacuate a dead node's logical data.
        """
        node = self.nodes[node_id]
        if node.retired:
            raise GridError(f"node {node_id} is retired")
        members = tuple(m for m in self.members() if m != node_id)
        if not members:
            raise GridError("cannot drain the grid's last member")
        _flight_emit("node_drain", node=node_id, remaining=len(members))
        reports: list[RebalanceReport] = []
        for name in self.names():
            arr = self._arrays[name]
            target = self._ring_target(arr, members)
            if target.descriptor() == arr.partitioner.descriptor():
                continue  # already places nothing on node_id
            reports.append(
                self.rebalance(
                    name, target,
                    max_transfer_cells_per_tick=max_transfer_cells_per_tick,
                    interleave=interleave,
                )
            )
        return reports

    def remove_node(
        self,
        node_id: int,
        max_transfer_cells_per_tick: int = 64,
        interleave: Optional[Callable[[], None]] = None,
    ) -> list[RebalanceReport]:
        """Drain *node_id*, then retire it (``alive=False``,
        ``retired=True``).  If any drain migration aborts the node is
        left in place, still serving — removal is all-or-nothing."""
        node = self.nodes[node_id]
        if node.retired:
            raise GridError(f"node {node_id} is already retired")
        reports = self.drain_node(
            node_id,
            max_transfer_cells_per_tick=max_transfer_cells_per_tick,
            interleave=interleave,
        )
        failed = [r.array for r in reports if r.aborted]
        if failed:
            raise GridError(
                f"drain of node {node_id} aborted for {failed}; "
                f"node not removed"
            )
        node.retired = True
        node.alive = False
        _flight_emit("node_remove", node=node_id)
        return reports

    # -- online rebalancing ----------------------------------------------------------

    def start_rebalance(
        self,
        array_name: str,
        new_partitioner: Partitioner,
        max_transfer_cells_per_tick: int = 64,
    ) -> Rebalancer:
        """Plan a throttled migration and attach it to the array
        (dual-homed writes, dual-resolve read fallback) without running
        it — chaos drills drive ``tick()``/``finalize()`` themselves so
        kills and scans can land between any two ticks."""
        arr = self.get_array(array_name)
        rb = Rebalancer(
            self, arr, new_partitioner,
            max_transfer_cells_per_tick=max_transfer_cells_per_tick,
        )
        rb.plan()
        self.active_rebalancers.append(rb)
        return rb

    def rebalance(
        self,
        array_name: str,
        new_partitioner: Partitioner,
        max_transfer_cells_per_tick: int = 64,
        interleave: Optional[Callable[[], None]] = None,
        max_ticks: Optional[int] = None,
    ) -> RebalanceReport:
        """Migrate one array to *new_partitioner* as a throttled
        background task; *interleave* — the serving traffic the
        migration must not starve — runs between ticks."""
        rb = self.start_rebalance(
            array_name, new_partitioner,
            max_transfer_cells_per_tick=max_transfer_cells_per_tick,
        )
        return rb.run(interleave=interleave, max_ticks=max_ticks)

    def _rebalance_done(
        self, rebalancer: Rebalancer, report: RebalanceReport
    ) -> None:
        if rebalancer in self.active_rebalancers:
            self.active_rebalancers.remove(rebalancer)
        self.rebalance_log.append(report)

    def rebalance_snapshot(self) -> dict[str, Any]:
        """Progress of in-flight migrations plus finished-run totals."""
        return {
            "active": [rb.progress() for rb in self.active_rebalancers],
            "completed": [asdict(r) for r in self.rebalance_log],
            "cells_moved": sum(r.cells_moved for r in self.rebalance_log),
            "copies_delivered": sum(
                r.copies_delivered for r in self.rebalance_log
            ),
            "throttle_hits": sum(
                r.throttle_hits for r in self.rebalance_log
            ) + sum(rb.throttle_hits for rb in self.active_rebalancers),
            "aborted": sum(1 for r in self.rebalance_log if r.aborted),
        }

    # -- observability ---------------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        """One unified, JSON-able view of the grid's accounting: the
        movement ledger, per-node work counters and storage stats, the
        failover log, and simulated store latency."""
        return {
            "parallelism": self.parallelism,
            "ledger": {
                "total_bytes": self.ledger.total_bytes(),
                "by_reason": self.ledger.by_reason(),
                "transfers": len(self.ledger.transfers),
                "dropped_bytes": self.ledger.dropped_bytes(),
                "dropped": len(self.ledger.dropped),
            },
            "nodes": [
                {
                    "node_id": node.node_id,
                    "alive": node.alive,
                    "retired": node.retired,
                    **node.counters.snapshot(),
                    "storage": node.storage.total_stats(),
                    "chunk_cache": (
                        node.storage.chunk_cache.stats()
                        if node.storage.chunk_cache is not None
                        else None
                    ),
                }
                for node in self.nodes
            ],
            "failovers": len(self.failover_log),
            "store_latency_ms": self.store_latency_ms,
            "fetch_latency_ms": self.fetch_latency_ms,
            "resilience": self.resilience_snapshot(),
            "rebalance": self.rebalance_snapshot(),
            "rebuilds": [asdict(r) for r in self.rebuilds],
            "arrays": sorted(self._arrays),
        }

    def resilience_snapshot(self) -> dict[str, Any]:
        """Retry/breaker/hedge accounting for reconciliation: policy
        parameters, the grid-wide counters, and per-node breaker states
        (with their full transition counts)."""
        with self._resilience_lock:
            counters = dict(self.resilience_counters)
        return {
            "policy": self.resilience.describe(),
            "failovers": len(self.failover_log),
            **counters,
            "breaker_transitions": sum(
                len(b.transitions) for b in self.breakers
            ),
            "breakers": [b.snapshot() for b in self.breakers],
        }

    def _count_resilience(self, name: str, n: int = 1) -> None:
        with self._resilience_lock:
            self.resilience_counters[name] = (
                self.resilience_counters.get(name, 0) + n
            )
        if name == "deadline_misses":
            _flight_emit("deadline_miss", count=n)

    def _log_failover(self, array: str, partition: int, site: int,
                      attempt: int) -> None:
        backoff_ms = self.resilience.retry.backoff_ms(
            attempt, key=(array, partition)
        )
        with self._failover_lock:
            self.failover_log.append(
                FailoverEvent(array, partition, site, attempt, backoff_ms)
            )
        self.nodes[site].counters.add("read_retries")
        tracing.add_current("failovers", 1)

    # -- the delivery fabric -----------------------------------------------------------

    def deliver(
        self,
        src: int,
        dst: int,
        nbytes: int,
        reason: str,
        array_name: str,
        coords: Coords,
        values: Optional[tuple],
    ) -> bool:
        """Send one cell to a node, through the fault injector.

        Returns True when the cell was stored.  Deliveries to a dead node
        — or eaten by an injected drop — are recorded in the ledger's
        ``dropped`` list instead of the transfer log.  Metering happens
        *before* the store, so a scheduled kill firing on this transfer
        loses the cell, exactly like a real crash between receive and ack.
        """
        # One delivery at a time grid-wide: the injector's RNG draw, the
        # liveness check, the metered record (which may fire a kill) and
        # the store must stay one atomic sequence even when scheduler
        # workers (parallel repartition/rebuild) deliver concurrently.
        with self._deliver_lock:
            node = self.nodes[dst]
            if not node.alive:
                self.ledger.record_dropped(src, dst, nbytes, reason)
                return False
            if self.faults is not None:
                verdict, values = self.faults.intercept(
                    src, dst, nbytes, reason, values
                )
                if verdict == "drop":
                    self.ledger.record_dropped(src, dst, nbytes, reason)
                    return False
                # Transient I/O fault at the receiving disk: the bytes moved
                # but nothing was stored.  Recorded as dropped, then raised
                # for the loader's bounded-retry policy to absorb.
                try:
                    self.store_latency_ms += self.faults.intercept_store(dst)
                except TransientIOError:
                    self.ledger.record_dropped(src, dst, nbytes, reason)
                    raise
            self.ledger.record(src, dst, nbytes, reason)  # may fire a kill
            if not node.alive:
                return False
            node.counters.add("bytes_received", nbytes)
            if 0 <= src < len(self.nodes):
                self.nodes[src].counters.add("bytes_sent", nbytes)
            node.store(array_name, coords, values)
            arr = self._arrays.get(array_name)
            if arr is not None:
                arr._note_coords(coords)
            return True

    # -- catalog ------------------------------------------------------------------------

    def create_array(
        self,
        name: str,
        schema: ArraySchema,
        partitioner: Partitioner,
        stride: Optional[Sequence[int]] = None,
        replication: Optional[int] = None,
        placement: Optional[ReplicaPlacement] = None,
    ) -> DistributedArray:
        if name in self._arrays:
            raise PartitioningError(f"distributed array {name!r} already exists")
        for node in self.alive_nodes():
            node.create_partition(name, schema, stride=stride)
        arr = DistributedArray(
            self, name, schema, partitioner,
            replication=replication if replication is not None
            else self.default_replication,
            placement=placement,
        )
        self._arrays[name] = arr
        return arr

    def get_array(self, name: str) -> DistributedArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise PartitioningError(f"no distributed array named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._arrays)

    # -- node rebuild -------------------------------------------------------------------

    def rebuild_node(self, node_id: int) -> RebuildReport:
        """Bring a crashed node back: WAL replay plus replica copy-back.

        The node restarts with empty storage (a crash loses all in-memory
        state; only the per-node write-ahead log survives on disk).  The
        rebuild then (1) re-creates every registered partition, (2)
        replays the WAL — a torn tail legally ends the replay early — and
        (3) copies every cell the node should hold but doesn't (WAL gaps,
        writes that happened while it was down) from the first surviving
        replica in each affected chain, metered as ``"rebuild"``.
        """
        node = self.nodes[node_id]
        if node.retired:
            raise GridError(f"node {node_id} is retired; nothing to rebuild")
        node.restart()
        try:
            for name, arr in self._arrays.items():
                node.create_partition(name, arr.schema)
            from_wal = node.replay_wal(set(self._arrays))
        except StorageError:
            # A damaged WAL aborts the rebuild; the node must not come
            # back up half-empty pretending to be healthy.
            node.fail()
            raise
        before = self.ledger.total_bytes("rebuild")

        def copy_partition(name: str, arr: DistributedArray, p: int,
                           have: frozenset[Coords]) -> int:
            """Copy partition *p*'s missing cells from a surviving replica.

            `have` is a task-local snapshot: the coords each task copies
            belong to its own partition only (filtered by ``site_of``), so
            partition tasks never race on the same cell address.
            """
            chain = arr.partition_chain(p)
            local_have = set(have)
            copied = 0
            sources = [
                s for s in chain
                if s != node_id and self.nodes[s].alive
            ]
            for source in sources:
                try:
                    for coords, cell in self.nodes[source].scan_partition(
                        name
                    ):
                        if arr.partitioner.site_of(coords) != p:
                            continue
                        if coords in local_have:
                            continue
                        values = None if cell is None else cell.values
                        if self.deliver(
                            source, node_id, arr.cell_nbytes, "rebuild",
                            name, coords, values,
                        ):
                            local_have.add(coords)
                            copied += 1
                    break  # one surviving source suffices
                except NodeFailedError:
                    continue  # source died mid-copy: try the next one
            return copied

        tasks = []
        for name, arr in self._arrays.items():
            have = frozenset(node.partition(name).live_coords())
            for p in arr.partitions():
                if node_id not in arr.partition_chain(p):
                    continue
                tasks.append(
                    lambda name=name, arr=arr, p=p, have=have:
                        copy_partition(name, arr, p, have)
                )
        from_replicas = sum(self.scheduler.map(tasks))
        for name in self._arrays:
            node.partition(name).flush()
        # A rebuilt node is healthy by construction: close its breaker so
        # queries stop detouring past it for a stale cooldown.
        self.breakers[node_id].record_success()
        report = RebuildReport(
            node_id=node_id,
            cells_from_wal=from_wal,
            cells_from_replicas=from_replicas,
            bytes_moved=self.ledger.total_bytes("rebuild") - before,
            load_cursors_restored=node.load_cursors_restored,
        )
        self.rebuilds.append(report)
        _flight_emit(
            "node_rebuild",
            node=node_id,
            cells_from_wal=from_wal,
            cells_from_replicas=from_replicas,
            bytes_moved=report.bytes_moved,
        )
        return report
