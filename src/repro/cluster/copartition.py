"""Co-partitioning of arrays sharing a coordinate system (Section 2.7).

"One research problem we plan to consider is the co-partitioning of
multiple arrays with a common co-ordinate system.  Such arrays would all be
partitioned the same way, so that comparison operations including joins do
not require data movement."

:func:`copartition` creates a family of distributed arrays under one
partitioner after checking they genuinely share a coordinate system
(same dimension count; compatible bounds).  :func:`is_copartitioned` is the
predicate the join planner uses to take the zero-shuffle path — experiment
E7 measures the difference.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.errors import PartitioningError
from ..core.schema import ArraySchema
from .grid import DistributedArray, Grid
from .partitioning import Partitioner

__all__ = ["copartition", "is_copartitioned"]


def _common_coordinate_system(schemas: Sequence[ArraySchema]) -> None:
    first = schemas[0]
    for other in schemas[1:]:
        if other.ndim != first.ndim:
            raise PartitioningError(
                f"arrays {first.name!r} and {other.name!r} have different "
                "dimension counts; they do not share a coordinate system"
            )
        for d1, d2 in zip(first.dimensions, other.dimensions):
            if d1.size is not None and d2.size is not None and d1.size != d2.size:
                raise PartitioningError(
                    f"dimension {d1.name!r}={d1.size} vs {d2.name!r}={d2.size}: "
                    "bounds differ; not a common coordinate system"
                )


def copartition(
    grid: Grid,
    schemas: Sequence[tuple[str, ArraySchema]],
    partitioner: Partitioner,
    stride: Optional[Sequence[int]] = None,
    replication: Optional[int] = None,
    placement: Optional[object] = None,
) -> list[DistributedArray]:
    """Create several distributed arrays under one shared partitioner.

    All schemas must share a coordinate system (dimension count and
    compatible bounds); the returned arrays satisfy
    :func:`is_copartitioned` pairwise, so grid joins between them move no
    data.  ``replication``/``placement`` apply to every member — a family
    replicated together fails over together, keeping joins shuffle-free
    even after a node loss.
    """
    if not schemas:
        raise PartitioningError("copartition needs at least one array")
    _common_coordinate_system([s for _, s in schemas])
    return [
        grid.create_array(name, schema, partitioner, stride=stride,
                          replication=replication, placement=placement)
        for name, schema in schemas
    ]


def is_copartitioned(a: DistributedArray, b: DistributedArray) -> bool:
    """Whether joins between *a* and *b* can run with zero data movement.

    True when both live on the same grid under structurally equal
    partitioners (see :meth:`Partitioner.descriptor`).
    """
    return a.grid is b.grid and a.partitioner == b.partitioner
