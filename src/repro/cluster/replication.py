"""k-way chunk replication for the shared-nothing grid (Section 2.7).

At LSST/LHC scale "the system will be sufficiently large that there will
always be broken nodes" (Becla et al., *Designing a Multi-petabyte
Database for LSST*) — so every logical partition is stored on ``k``
distinct sites chosen by a :class:`ReplicaPlacement` policy.  The first
site in a chain is the partition's *primary*; the rest are failover
targets that queries fall back to when the primary is dead, and rebuild
sources when it comes back.

Two policies:

* :class:`ChainedDeclusteringPlacement` — the Gamma-lineage classic:
  replica *i* of partition *p* lives on site ``(p + i*offset) % n``.
  Neighbouring sites back each other up, so a single failure shifts load
  onto exactly one survivor.
* :class:`ScatterPlacement` — replicas spread pseudo-randomly (seeded,
  deterministic) across the whole grid, so rebuild traffic after a
  failure is drawn from many sites instead of one.

The extra write traffic replication causes is metered in the grid's
:class:`~repro.cluster.grid.DataMovementLedger` under the
``"replication"`` reason; ``benchmarks/bench_faults.py`` quantifies the
overhead against the availability it buys.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.errors import ReplicationError

if TYPE_CHECKING:
    from ..core.array import SciArray

__all__ = [
    "ReplicaPlacement",
    "ChainedDeclusteringPlacement",
    "ScatterPlacement",
    "CoverageReport",
    "DegradedResult",
    "RebuildReport",
]


class ReplicaPlacement:
    """Policy mapping a primary site to its ordered replica chain."""

    def chain(self, primary: int, n_sites: int, k: int) -> tuple[int, ...]:
        """``k`` distinct sites for a partition whose primary is *primary*.

        The primary is always first; failover walks the chain in order.
        """
        raise NotImplementedError

    def _check(self, primary: int, n_sites: int, k: int) -> None:
        if not 1 <= k <= n_sites:
            raise ReplicationError(
                f"replication factor {k} needs 1 <= k <= {n_sites} sites"
            )
        if not 0 <= primary < n_sites:
            raise ReplicationError(
                f"primary site {primary} outside grid of {n_sites}"
            )


class ChainedDeclusteringPlacement(ReplicaPlacement):
    """Replica *i* of partition *p* lives on ``(p + i*offset) % n``."""

    def __init__(self, offset: int = 1) -> None:
        if offset < 1:
            raise ReplicationError("chain offset must be >= 1")
        self.offset = offset

    def chain(self, primary: int, n_sites: int, k: int) -> tuple[int, ...]:
        self._check(primary, n_sites, k)
        sites: list[int] = []
        s = primary
        for _ in range(n_sites):
            if s not in sites:
                sites.append(s)
                if len(sites) == k:
                    return tuple(sites)
            s = (s + self.offset) % n_sites
        raise ReplicationError(
            f"offset {self.offset} cannot reach {k} distinct sites "
            f"on a {n_sites}-site grid"
        )

    def __repr__(self) -> str:
        return f"<ChainedDeclusteringPlacement offset={self.offset}>"


class ScatterPlacement(ReplicaPlacement):
    """Replicas scattered by a seeded hash of (salt, partition, site).

    Deterministic across processes (crc32, not Python's salted hash).
    """

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def chain(self, primary: int, n_sites: int, k: int) -> tuple[int, ...]:
        self._check(primary, n_sites, k)
        others = sorted(
            (s for s in range(n_sites) if s != primary),
            key=lambda s: zlib.crc32(f"{self.salt}:{primary}:{s}".encode()),
        )
        return (primary, *others[: k - 1])

    def __repr__(self) -> str:
        return f"<ScatterPlacement salt={self.salt}>"


@dataclass(frozen=True)
class CoverageReport:
    """Which logical partitions a degraded query actually served.

    ``missing`` lists ``(array_name, partition)`` pairs for which every
    replica was dead after bounded retries.
    """

    total_partitions: int
    missing: tuple[tuple[str, int], ...] = ()

    @property
    def served_partitions(self) -> int:
        return self.total_partitions - len(self.missing)

    @property
    def fraction(self) -> float:
        if self.total_partitions == 0:
            return 1.0
        return self.served_partitions / self.total_partitions

    @property
    def complete(self) -> bool:
        return not self.missing

    def __str__(self) -> str:
        if self.complete:
            return f"coverage {self.served_partitions}/{self.total_partitions}"
        lost = ", ".join(f"{a}[{p}]" for a, p in self.missing)
        return (
            f"coverage {self.served_partitions}/{self.total_partitions} "
            f"(lost: {lost})"
        )


@dataclass(frozen=True)
class DegradedResult:
    """A partial query answer plus the coverage it achieved.

    Returned by grid queries called with ``degraded=True`` instead of
    raising :class:`~repro.core.errors.QuorumError` when partitions have
    lost every replica.
    """

    array: "SciArray"
    coverage: CoverageReport


@dataclass(frozen=True)
class RebuildReport:
    """Accounting for one node rebuild after a crash."""

    node_id: int
    cells_from_wal: int
    cells_from_replicas: int
    bytes_moved: int
    #: checkpointed-load cursors restored from WAL ``load_commit`` records,
    #: so a resumed ingest can keep skipping batches this node committed
    #: before it crashed
    load_cursors_restored: int = 0

    @property
    def cells_recovered(self) -> int:
        return self.cells_from_wal + self.cells_from_replicas
