"""Resilience policies for the parallel grid read path (Section 2.7).

The paper's shared-nothing requirement assumes queries keep answering —
fast and correctly — while individual nodes misbehave.  Replication
(PR 1) supplies the *copies*; this module supplies the *policies* that
decide how a query spends its time among them:

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  seeded jitter and a transient-error classifier, replacing the ad-hoc
  unbounded ``base * 2**(attempt-1)`` failover accounting.  Only
  *transient* failures (a node dying under a scan, an intermittent I/O
  fault) are worth retrying; programming and quorum errors propagate
  immediately.
* :class:`Deadline` — an absolute time budget propagated from
  :class:`~repro.database.SciDB` entry points through the
  :class:`~repro.cluster.scheduler.PartitionScheduler` into every
  per-partition task, checked cooperatively at operator boundaries and
  inside partition scans, surfacing as the typed
  :class:`~repro.core.errors.DeadlineExceededError`.
* :class:`CircuitBreaker` — per-node closed/open/half-open state so a
  node that keeps failing is skipped straight to its replicas instead of
  paying a fresh retry storm for every partition that touches it.  An
  open breaker cools down over a fixed number of skipped requests, then
  admits a single half-open probe; the probe's outcome closes or
  re-opens it.  Request-count cooldowns (not wall-clock) keep drills
  deterministic on the simulated grid.
* :class:`HedgePolicy` — after ``delay_ms`` without an answer from the
  serving replica, a backup read is launched against the next replica in
  the chain and the first success wins.  Exactly-once accounting is
  preserved because each hedged attempt meters into a private
  :class:`MeterBuffer`; only the winner's buffer is committed to the
  movement ledger and node counters — the loser's meters are discarded.

All policies are bundled in a :class:`ResiliencePolicy` attached to each
:class:`~repro.cluster.grid.Grid`.  Defaults are conservative: retries
capped and jittered, breakers armed, hedging off (it trades extra reads
for latency — benchmarks and latency-sensitive callers opt in).
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

from ..core.errors import (
    DeadlineExceededError,
    GridError,
    NodeFailedError,
    QueryCancelledError,
    TransientIOError,
)
from ..obs.recorder import emit as _flight_emit

if TYPE_CHECKING:
    from .grid import Grid
    from .node import Node

__all__ = [
    "RetryPolicy",
    "Deadline",
    "DeadlineExceededError",
    "QueryCancelledError",
    "current_deadline",
    "deadline_scope",
    "check_deadline",
    "sleep_under_deadline",
    "BreakerConfig",
    "CircuitBreaker",
    "BreakerOpenError",
    "HedgePolicy",
    "ResiliencePolicy",
    "MeterBuffer",
]


def _unit_hash(*key: Any) -> float:
    """Deterministic uniform draw in [0, 1) from a structured key.

    crc32-based (like :class:`~repro.cluster.replication.ScatterPlacement`)
    so the value is stable across processes and interpreter hash seeds —
    the property that makes jitter reproducible per ``(partition,
    attempt)`` even when worker threads interleave arbitrarily.
    """
    return zlib.crc32(repr(key).encode()) / 2**32


# -- retry policy ----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped, seeded-jitter exponential backoff over transient failures.

    ``max_attempts`` bounds the number of passes a read makes over a
    partition's replica chain.  Backoff for attempt *n* is
    ``min(base * 2**(n-1), cap)`` scaled by a deterministic jitter drawn
    from ``(seed, key, n)`` — the same attempt against the same partition
    always charges the same backoff, regardless of thread interleaving.
    """

    max_attempts: int = 2
    backoff_base_ms: float = 1.0
    backoff_max_ms: float = 64.0
    jitter_frac: float = 0.1
    seed: int = 0
    #: transient failures worth retrying; everything else propagates
    retryable_types: tuple = (NodeFailedError, TransientIOError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise GridError("retry policy needs max_attempts >= 1")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise GridError("backoff must be >= 0 ms")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise GridError("jitter_frac must be in [0, 1]")

    def retryable(self, exc: BaseException) -> bool:
        """Is *exc* a transient failure a retry could outlive?"""
        return isinstance(exc, self.retryable_types)

    def backoff_ms(self, attempt: int, key: Any = None) -> float:
        """Backoff charged before retry *attempt* (1-based), capped and
        deterministically jittered per ``(seed, key, attempt)``."""
        if attempt < 1:
            raise GridError("backoff attempts are 1-based")
        raw = self.backoff_base_ms * 2 ** (attempt - 1)
        if self.jitter_frac:
            raw *= 1.0 + self.jitter_frac * _unit_hash(self.seed, key, attempt)
        # The cap is a hard ceiling, jitter included: the recorded value
        # never exceeds backoff_max_ms no matter the attempt count.
        return min(raw, self.backoff_max_ms)


# -- deadlines --------------------------------------------------------------------


class Deadline:
    """An absolute wall-clock budget for one query.

    Created at an entry point (``Deadline.after_ms(250)``), propagated
    through the scheduler into worker threads, and checked cooperatively:
    at operator boundaries, before every replica attempt, and every few
    dozen cells inside a partition scan.  Expiry raises
    :class:`~repro.core.errors.DeadlineExceededError`.

    A deadline can also be *cancelled* from another thread
    (:meth:`cancel`): the next cooperative check raises
    :class:`~repro.core.errors.QueryCancelledError` instead.  That is
    how the query service's ``/cancel`` endpoint and slow-query killer
    stop a running statement — they never interrupt it mid-operator,
    they just make every subsequent check fail.  ``Deadline.unbounded()``
    builds a cancel-only deadline (infinite budget) so even statements
    submitted without a timeout stay killable.
    """

    __slots__ = ("budget_ms", "t_deadline", "_cancelled", "_cancel_reason")

    def __init__(self, budget_ms: float) -> None:
        if budget_ms <= 0:
            raise GridError(f"deadline budget must be > 0 ms, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self.t_deadline = time.perf_counter() + self.budget_ms / 1e3
        self._cancelled = False
        self._cancel_reason = ""

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        return cls(budget_ms)

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires on its own but can be cancelled."""
        return cls(float("inf"))

    def remaining_ms(self) -> float:
        return max(0.0, (self.t_deadline - time.perf_counter()) * 1e3)

    def cancel(self, reason: str = "") -> None:
        """Mark the deadline cancelled (idempotent, any thread).

        A plain boolean write — atomic under the GIL, and checked on the
        hot path without a lock.  The first reason given wins.
        """
        if not self._cancelled:
            self._cancel_reason = reason
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        return self._cancelled or time.perf_counter() >= self.t_deadline

    def check(self, what: str = "") -> None:
        if self._cancelled:
            raise QueryCancelledError(self._cancel_reason or what)
        if time.perf_counter() >= self.t_deadline:
            raise DeadlineExceededError(self.budget_ms, what)

    def __repr__(self) -> str:
        if self._cancelled:
            return f"<Deadline cancelled ({self._cancel_reason or 'no reason'})>"
        return (
            f"<Deadline {self.budget_ms:g} ms, "
            f"{self.remaining_ms():.1f} ms remaining>"
        )


_local = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline governing this thread, if any."""
    return getattr(_local, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install *deadline* as this thread's ambient deadline for the block.

    ``None`` is a pass-through: an enclosing scope's deadline (if any)
    stays in force, so nested calls can always wrap unconditionally.
    """
    prev = current_deadline()
    _local.deadline = deadline if deadline is not None else prev
    try:
        yield current_deadline()
    finally:
        _local.deadline = prev


def check_deadline(what: str = "") -> None:
    """Cooperative cancellation point: raise if the ambient deadline
    expired; free when none is set."""
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(what)


def sleep_under_deadline(
    ms: float,
    deadline: Optional[Deadline] = None,
    slice_ms: float = 5.0,
    what: str = "",
) -> None:
    """Really sleep *ms* (GIL released), but wake for deadline expiry.

    Sleeps in ``slice_ms`` slices so a modeled slow site cannot carry a
    query past its budget: the moment the deadline expires mid-wait, a
    :class:`~repro.core.errors.DeadlineExceededError` is raised instead
    of finishing the nap.
    """
    if ms <= 0:
        return
    if deadline is None:
        time.sleep(ms / 1e3)
        return
    remaining = ms
    while remaining > 0:
        deadline.check(what)
        step = min(remaining, slice_ms, deadline.remaining_ms() + 0.1)
        time.sleep(step / 1e3)
        remaining -= step
    deadline.check(what)


# -- circuit breakers -------------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpenError(GridError):
    """A read was short-circuited past a node whose breaker is open."""


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for per-node circuit breakers.

    ``failure_threshold`` consecutive failures open the breaker;
    ``cooldown`` requests are then skipped before a single half-open
    probe is admitted.  Counts, not wall-clock: the simulated grid never
    sleeps, and count-based cooldowns keep drills deterministic.
    """

    failure_threshold: int = 3
    cooldown: int = 8

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise GridError("breaker failure_threshold must be >= 1")
        if self.cooldown < 1:
            raise GridError("breaker cooldown must be >= 1")


class CircuitBreaker:
    """Closed/open/half-open failure gate for one grid node (thread-safe).

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    * **open** — :meth:`allow` refuses the next ``cooldown`` requests
      (counted as *skips* — the read goes straight to a replica), then
      transitions to half-open.
    * **half-open** — exactly one probe request is admitted; its success
      closes the breaker, its failure re-opens it for another cooldown.

    Every state change is appended to :attr:`transitions` so drills can
    reconcile breaker activity against injected faults.
    """

    def __init__(self, name: str, config: Optional[BreakerConfig] = None) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self.transitions: list[tuple[str, str]] = []
        self.skips = 0
        self._consecutive_failures = 0
        self._skips_left = 0
        self._probe_in_flight = False
        self._lock = threading.Lock()

    def _transition(self, new_state: str) -> None:
        self.transitions.append((self.state, new_state))
        _flight_emit(
            "breaker_" + new_state, breaker=self.name, was=self.state
        )
        self.state = new_state

    def allow(self, force: bool = False) -> bool:
        """May a request proceed against this node right now?

        *force* admits the request regardless (used on a read's final
        pass so an open breaker can never turn a reachable replica into
        a wrong :class:`~repro.core.errors.QuorumError`); it counts as a
        half-open probe.
        """
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                if not force:
                    self._skips_left -= 1
                    if self._skips_left > 0:
                        self.skips += 1
                        return False
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return True
            # HALF_OPEN: one probe at a time.
            if force or not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            self.skips += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self.state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self.state == HALF_OPEN:
                self._transition(OPEN)
                self._skips_left = self.config.cooldown
                return
            self._consecutive_failures += 1
            if (
                self.state == CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._transition(OPEN)
                self._skips_left = self.config.cooldown

    def abandon(self) -> None:
        """Release an admitted probe without judging the node (e.g. the
        query's deadline expired mid-read: that is the budget's fault,
        not the node's)."""
        with self._lock:
            self._probe_in_flight = False

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "state": self.state,
                "transitions": len(self.transitions),
                "skips": self.skips,
                "consecutive_failures": self._consecutive_failures,
            }

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name} {self.state}>"


# -- hedged reads -----------------------------------------------------------------


@dataclass(frozen=True)
class HedgePolicy:
    """Backup-read policy: after ``delay_ms`` without an answer from the
    serving replica, read the next replica too and take the first
    success.  ``None`` disables hedging (the default — hedges trade
    duplicate reads for tail latency)."""

    delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.delay_ms is not None and self.delay_ms < 0:
            raise GridError("hedge delay must be >= 0 ms")

    @property
    def enabled(self) -> bool:
        return self.delay_ms is not None


class MeterBuffer:
    """Deferred metering for one hedged read attempt.

    Hedging launches two reads for one logical partition, but the
    accounting contract is exactly-once: each attempt meters into its own
    buffer, and only the *winning* attempt's buffer is committed to the
    movement ledger and node counters.  The loser's buffer is simply
    dropped — its bytes never existed as far as the ledger, the explain
    report, or the fault injector's transfer clock are concerned.
    """

    def __init__(self) -> None:
        self.records: list[tuple[int, int, int, str]] = []
        self.counters: list[tuple["Node", str, int]] = []

    def record(self, src: int, dst: int, nbytes: int, reason: str) -> None:
        self.records.append((src, dst, nbytes, reason))

    def counter(self, node: "Node", name: str, n: int = 1) -> None:
        self.counters.append((node, name, n))

    def commit(self, grid: "Grid") -> None:
        """Replay the buffered meters for the winning attempt."""
        for src, dst, nbytes, reason in self.records:
            grid.ledger.record(src, dst, nbytes, reason)
        for node, name, n in self.counters:
            node.counters.add(name, n)


# -- the bundle -------------------------------------------------------------------


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the grid read path consults when nodes misbehave."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)

    def describe(self) -> dict[str, Any]:
        return {
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "backoff_base_ms": self.retry.backoff_base_ms,
                "backoff_max_ms": self.retry.backoff_max_ms,
                "jitter_frac": self.retry.jitter_frac,
            },
            "breaker": {
                "failure_threshold": self.breaker.failure_threshold,
                "cooldown": self.breaker.cooldown,
            },
            "hedge": {"delay_ms": self.hedge.delay_ms},
        }
