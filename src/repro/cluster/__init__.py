"""Shared-nothing grid orientation (Section 2.7).

LSST-scale data "must run on a grid (cloud) of shared-nothing computers";
the open design questions the paper lists — which partitioning scheme, how
to change it over time, how to co-partition arrays sharing a coordinate
system so joins need no data movement, and how to auto-design partitionings
from a sample workload — are all implemented here against a *simulated*
cluster: in-process :class:`~repro.cluster.node.Node` objects, each with
its own storage manager, connected by an explicitly metered message fabric
(:class:`~repro.cluster.grid.DataMovementLedger`).

The simulation substitutes for physical distribution (see DESIGN.md §2):
every design question above is a question about data *placement and
movement*, which the ledger accounts exactly and deterministically.

At grid scale node failure is the common case, so the cluster layer also
carries a fault-tolerance stack: a deterministic, thread-safe
:class:`~repro.cluster.faults.FaultInjector`, k-way chunk replication
(:mod:`~repro.cluster.replication`), a resilience layer
(:mod:`~repro.cluster.resilience`) of retry policies with capped seeded
backoff, query deadlines, per-node circuit breakers and hedged replica
reads, degraded-mode partial results, and WAL-driven node rebuild
(:meth:`~repro.cluster.grid.Grid.rebuild_node`).  Cluster failures raise
the :class:`~repro.core.errors.GridError` family re-exported here.
"""

from ..core.errors import (
    GridError,
    NodeFailedError,
    QuorumError,
    ReplicationError,
)
from .node import Node
from .partitioning import (
    BlockCyclicPartitioner,
    BlockPartitioner,
    ConsistentHashPartitioner,
    HashPartitioner,
    HashRing,
    Partitioner,
    RangePartitioner,
    TimeEpochPartitioner,
)
from .faults import FaultEvent, FaultInjector, FailoverEvent
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    HedgePolicy,
    ResiliencePolicy,
    RetryPolicy,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from .replication import (
    ChainedDeclusteringPlacement,
    CoverageReport,
    DegradedResult,
    RebuildReport,
    ReplicaPlacement,
    ScatterPlacement,
)
from .grid import DataMovementLedger, DistributedArray, Grid
from .rebalance import Migration, RebalanceReport, Rebalancer
from .scheduler import PartitionScheduler, default_parallelism
from .copartition import copartition, is_copartitioned
from .designer import (
    AutomaticDesigner,
    DesignCandidate,
    RebalanceAdvisor,
    WorkloadQuery,
)

__all__ = [
    "Node",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "BlockPartitioner",
    "BlockCyclicPartitioner",
    "TimeEpochPartitioner",
    "ConsistentHashPartitioner",
    "HashRing",
    "Grid",
    "DistributedArray",
    "DataMovementLedger",
    "PartitionScheduler",
    "default_parallelism",
    "copartition",
    "is_copartitioned",
    "AutomaticDesigner",
    "WorkloadQuery",
    "DesignCandidate",
    "RebalanceAdvisor",
    # elastic rebalancing
    "Rebalancer",
    "RebalanceReport",
    "Migration",
    # fault tolerance & replication
    "GridError",
    "NodeFailedError",
    "QuorumError",
    "ReplicationError",
    "FaultInjector",
    "FaultEvent",
    "FailoverEvent",
    "ReplicaPlacement",
    "ChainedDeclusteringPlacement",
    "ScatterPlacement",
    "CoverageReport",
    "DegradedResult",
    "RebuildReport",
    # resilience: retries, deadlines, breakers, hedged reads
    "ResiliencePolicy",
    "RetryPolicy",
    "Deadline",
    "DeadlineExceededError",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
    "BreakerConfig",
    "CircuitBreaker",
    "HedgePolicy",
]
