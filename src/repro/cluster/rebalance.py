"""Online elastic rebalancing: throttled background chunk migration.

The paper's §2 grid requirement is a cluster that grows by adding
commodity nodes; ROADMAP item 4 makes that concrete: adding node ``N+1``
must move only ~``1/(N+1)`` of chunks, as a background task interleaved
with serving reads.  This module is the migration engine behind
:meth:`Grid.add_node`, :meth:`Grid.drain_node` and
:meth:`Grid.remove_node`:

* a :class:`Migration` tracks one array's move from its current
  partitioner to a target (usually two
  :class:`~repro.cluster.partitioning.ConsistentHashPartitioner` rings
  differing by one member);
* a :class:`Rebalancer` drives it in throttled ticks
  (``max_transfer_cells_per_tick``), copying each relocating cell from a
  surviving holder of its *old* replica chain to every site of its *new*
  chain — metered as ``"rebalance"`` in the movement ledger;
* between ticks the grid keeps serving: reads resolve against the old
  placement until cutover (falling back to the new homes only when an
  old chain is fully dead — see
  ``DistributedArray._dual_resolve_read``), and writes land in *both*
  homes (``"rebalance_dual"`` copies) so no tick ordering can lose an
  update;
* a verification pass before cutover re-checks every logical cell is
  resident at all of its new homes (copies lost to crashes, drops or
  transient I/O are re-queued), then the partitioner is swapped and
  stale old-home copies are deleted through the WAL — so a crash after
  cutover replays the cleanup too;
* under :meth:`Rebalancer.run`, a node death mid-migration either never
  blocks a move (the run completes) or deterministically aborts with a
  diagnosis; an abort rolls back every delivered copy and leaves the
  old placement serving, untouched.

Trust rule: an existing copy at a destination only counts if the site is
part of the cell's old chain, or this migration delivered it.  A copy
resurrected by WAL replay on a node that was dead during some earlier
cutover (so its deletes were never logged) is *not* trusted and gets
overwritten — stale values can never be promoted to serving copies.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..core.errors import (
    GridError,
    NodeFailedError,
    PartitioningError,
    QuorumError,
    StorageError,
    TransientIOError,
)
from ..obs.recorder import emit as _flight_emit
from .partitioning import Partitioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .grid import DistributedArray, Grid

__all__ = ["Migration", "Rebalancer", "RebalanceReport"]

Coords = tuple[int, ...]


@dataclass
class RebalanceReport:
    """The accounting for one finished (or aborted) migration."""

    array: str
    old_descriptor: tuple
    new_descriptor: tuple
    #: logical cells enumerated when the migration was planned
    cells_total: int
    #: logical cells that needed at least one copy delivered
    cells_moved: int
    #: physical copies delivered, metered as ``"rebalance"``
    copies_delivered: int
    #: stale old-home copies deleted at cutover
    cells_dropped: int
    #: writes that landed in both homes during the migration window
    dual_writes: int
    bytes_moved: int
    ticks: int
    throttle_hits: int
    aborted: bool
    reason: str = ""

    def moved_fraction(self, stored_cells: int) -> float:
        """Delivered copies as a fraction of *stored_cells* (the
        replicas-included count the ≤1.5/(N+1) acceptance bound is
        stated against)."""
        return self.copies_delivered / stored_cells if stored_cells else 0.0


class Migration:
    """Shared state of one in-flight migration (array ↔ write path ↔
    rebalancer).  Thread-safe: ingest writers note dual writes from
    scheduler workers while the rebalancer ticks."""

    def __init__(
        self, array: "DistributedArray", new_partitioner: Partitioner
    ) -> None:
        self.array = array
        self.new_partitioner = new_partitioner
        self._lock = threading.RLock()
        #: every logical cell address the migration knows about — the
        #: planned population plus anything written during the window.
        #: This is what pre-cutover verification checks against.
        self.known: set[Coords] = set()
        #: cells still owing a copy to some new home
        self.pending: deque[Coords] = deque()
        self._pending_set: set[Coords] = set()
        #: (coords, site) copies this migration delivered — the trust set
        #: and the abort rollback list
        self.delivered: list[tuple[Coords, int]] = []
        self._fresh: set[tuple[Coords, int]] = set()
        #: cells for which at least one copy was delivered
        self.moved_cells: set[Coords] = set()
        self.dual_writes = 0

    # -- routing -----------------------------------------------------------------

    def new_chain(self, coords: Coords) -> tuple[int, ...]:
        """The cell's replica chain under the *target* partitioner."""
        p = self.new_partitioner.site_of(coords)
        return self.array.chain_under(self.new_partitioner, p)

    def old_chain(self, coords: Coords) -> tuple[int, ...]:
        return self.array.replica_sites(coords)

    # -- bookkeeping ---------------------------------------------------------------

    def note_write(self, coords: Coords) -> None:
        """A write landed during the migration window (dual-homed by the
        caller); make sure verification covers it."""
        with self._lock:
            self.known.add(coords)
            self.dual_writes += 1

    def note_delivered(self, coords: Coords, site: int) -> None:
        with self._lock:
            self.delivered.append((coords, site))
            self._fresh.add((coords, site))

    def trusted(self, coords: Coords, site: int) -> bool:
        """Is an existing copy of *coords* at *site* authoritative?

        Old-chain copies are (they are what the array is serving); so are
        copies this migration delivered.  Anything else — e.g. a stale
        copy WAL-resurrected on a rebuilt node — must be overwritten.
        """
        if site in self.old_chain(coords):
            return True
        with self._lock:
            return (coords, site) in self._fresh

    def enqueue(self, coords: Coords) -> None:
        with self._lock:
            if coords not in self._pending_set:
                self._pending_set.add(coords)
                self.pending.append(coords)

    def pop(self) -> Optional[Coords]:
        with self._lock:
            if not self.pending:
                return None
            coords = self.pending.popleft()
            self._pending_set.discard(coords)
            return coords

    def pending_count(self) -> int:
        with self._lock:
            return len(self.pending)


class Rebalancer:
    """Drives one array's migration in throttled, interleavable ticks.

    :meth:`run` is the background-task shape — tick, let the caller
    serve (``interleave``), repeat, verify, cut over.  Chaos drills and
    the elastic grid operations drive :meth:`tick` / :meth:`finalize`
    directly so kills and scans can land between any two ticks.
    """

    #: consecutive zero-progress full passes tolerated before an abort
    STALL_LIMIT = 2

    def __init__(
        self,
        grid: "Grid",
        array: "DistributedArray",
        new_partitioner: Partitioner,
        max_transfer_cells_per_tick: int = 64,
    ) -> None:
        if max_transfer_cells_per_tick < 1:
            raise GridError("max_transfer_cells_per_tick must be positive")
        if new_partitioner.n_sites != len(grid.nodes):
            raise PartitioningError(
                f"target partitioner addresses {new_partitioner.n_sites} "
                f"sites, grid has {len(grid.nodes)} nodes"
            )
        if array._migration is not None:
            raise GridError(
                f"array {array.name!r} is already rebalancing"
            )
        # The target must be able to host the replication factor.
        array.chain_under(
            new_partitioner, new_partitioner.sites()[0]
        )
        self.grid = grid
        self.array = array
        # Captured now: after cutover the array serves the new scheme.
        self._old_descriptor = array.partitioner.descriptor()
        self.throttle = int(max_transfer_cells_per_tick)
        self.migration = Migration(array, new_partitioner)
        self.ticks = 0
        self.throttle_hits = 0
        self.copies_delivered = 0
        self.cells_dropped = 0
        self.finished = False
        self.aborted = False
        self.reason = ""
        self._planned = False

    # -- lifecycle -----------------------------------------------------------------

    def plan(self) -> int:
        """Enumerate the logical population and queue relocating cells.

        Uses the ordinary failover read path (no metering reason: the
        plan ships coordinates, not values — values are re-read per cell
        at tick time so the freshest write always wins).  Attaches the
        migration to the array, which turns on dual-homed writes and the
        dual-resolve read fallback.  Returns the number of queued cells.
        """
        if self._planned:
            raise GridError("rebalance already planned")
        arr, mig = self.array, self.migration
        for p, (_site, cells) in zip(
            arr.partitions(), arr._read_partitions()
        ):
            if cells is None:  # pragma: no cover - defensive
                raise QuorumError(
                    f"partition {p} of {arr.name!r}: no surviving replica"
                )
            for coords, _cell in cells:
                mig.known.add(coords)
                if self._wants_copies(coords):
                    mig.enqueue(coords)
        self._planned = True
        arr._migration = mig
        _flight_emit(
            "rebalance_plan",
            array=arr.name,
            cells_total=len(mig.known),
            cells_queued=mig.pending_count(),
        )
        return mig.pending_count()

    def tick(self) -> int:
        """Move up to ``max_transfer_cells_per_tick`` cells; returns how
        many made progress.  Blocked cells (dead destination, no live
        source *right now*) re-queue — a later tick, after a rebuild,
        can still complete them."""
        if not self._planned:
            raise GridError("plan() the rebalance before ticking it")
        if self.finished:
            raise GridError("this rebalance already finished")
        mig = self.migration
        self.ticks += 1
        if mig.pending_count() > self.throttle:
            # The backlog didn't fit this tick's budget: that's the
            # transfer-rate throttle visibly holding traffic back.
            self.throttle_hits += 1
        moved = 0
        requeue: list[Coords] = []
        for _ in range(self.throttle):
            coords = mig.pop()
            if coords is None:
                break
            outcome = self._move_cell(coords)
            if outcome == "blocked":
                requeue.append(coords)
            elif outcome == "moved":
                moved += 1
            # "done": already fully resident — progress, nothing moved.
        for coords in requeue:
            mig.enqueue(coords)
        self.array.flush()
        _flight_emit(
            "rebalance_tick",
            array=self.array.name,
            tick=self.ticks,
            moved=moved,
            pending=mig.pending_count(),
        )
        return moved

    def finalize(self) -> bool:
        """Verify-and-cutover: returns True when the cutover happened.

        Re-checks every known cell is resident (and trusted) at all of
        its new homes, re-queueing any gap; with an empty queue and a
        clean verify, swaps the partitioner and deletes stale old-home
        copies through the WAL.  Returns False when cells are still
        pending — tick more (possibly after a rebuild) and try again.
        """
        if self.finished:
            return not self.aborted
        mig = self.migration
        if mig.pending_count() > 0:
            return False
        if self._verify():
            return False
        self._cutover()
        return True

    def run(
        self,
        interleave: Optional[Callable[[], None]] = None,
        max_ticks: Optional[int] = None,
    ) -> RebalanceReport:
        """Throttled background migration to completion (or abort).

        *interleave* runs between ticks — the serving traffic the
        migration must not starve.  Deterministic failure semantics: a
        node death that never blocks a move lets the run complete; one
        that does (dead destination, or a cell with no surviving trusted
        source) aborts after :data:`STALL_LIMIT` zero-progress passes,
        with the first blocked cell diagnosed in ``reason``.
        """
        if not self._planned:
            self.plan()
        stalled = 0
        while not self.finished:
            if max_ticks is not None and self.ticks >= max_ticks:
                self.abort(f"tick budget {max_ticks} exhausted")
                break
            moved = self.tick()
            if interleave is not None:
                interleave()
            if self.finalize():
                break
            if moved == 0:
                stalled += 1
                if stalled >= self.STALL_LIMIT:
                    self.abort(self._diagnose())
                    break
            else:
                stalled = 0
        return self.report()

    def abort(self, reason: str) -> RebalanceReport:
        """Roll the migration back: delete every copy it delivered (where
        the holder is alive and the copy is not also an old-chain copy)
        and detach — the old placement was never touched and keeps
        serving."""
        if self.finished:
            raise GridError("this rebalance already finished")
        arr, grid, mig = self.array, self.grid, self.migration
        arr._migration = None
        rolled_back = 0
        for coords, site in mig.delivered:
            node = grid.nodes[site]
            if not node.alive:
                continue
            if site in mig.old_chain(coords):
                continue  # also a legitimate old-home copy: keep it
            if node.delete(arr.name, coords):
                rolled_back += 1
        self.aborted = True
        self.finished = True
        self.reason = reason
        self.cells_dropped = rolled_back
        _flight_emit(
            "rebalance_abort",
            array=arr.name,
            reason=reason,
            rolled_back=rolled_back,
        )
        report = self.report()
        grid._rebalance_done(self, report)
        return report

    # -- the per-cell move ---------------------------------------------------------

    def _wants_copies(self, coords: Coords) -> bool:
        mig, grid, arr = self.migration, self.grid, self.array
        for site in mig.new_chain(coords):
            if not (
                grid.nodes[site].has_cell(arr.name, coords)
                and mig.trusted(coords, site)
            ):
                return True
        return False

    def _move_cell(self, coords: Coords) -> str:
        """Copy *coords* to every new home it is missing from.

        Returns ``"done"`` (already resident), ``"moved"`` (delivered at
        least one copy and owes none), or ``"blocked"`` (dead
        destination / no live trusted source / delivery lost — re-queue
        and retry later)."""
        mig, grid, arr = self.migration, self.grid, self.array
        dsts = [
            s for s in mig.new_chain(coords)
            if not (
                grid.nodes[s].has_cell(arr.name, coords)
                and mig.trusted(coords, s)
            )
        ]
        if not dsts:
            return "done"
        if any(not grid.nodes[s].alive for s in dsts):
            return "blocked"
        source = self._source_for(coords, dsts)
        if source is None:
            return "blocked"
        src_site, values = source
        complete = True
        delivered_here = 0
        for dst in dsts:
            try:
                ok = grid.deliver(
                    src_site, dst, arr.cell_nbytes, "rebalance",
                    arr.name, coords, values,
                )
            except TransientIOError:
                ok = False  # bytes moved, store failed: retry next tick
            if ok:
                delivered_here += 1
                mig.note_delivered(coords, dst)
            else:
                complete = False
        self.copies_delivered += delivered_here
        if delivered_here:
            mig.moved_cells.add(coords)
        return "moved" if complete else "blocked"

    def _source_for(
        self, coords: Coords, dsts: list[int]
    ) -> Optional[tuple[int, Optional[tuple]]]:
        """A live trusted holder of *coords* and its current value."""
        grid, arr, mig = self.grid, self.array, self.migration
        candidates = list(mig.old_chain(coords)) + list(
            mig.new_chain(coords)
        )
        for site in candidates:
            node = grid.nodes[site]
            if site in dsts or not node.has_cell(arr.name, coords):
                continue
            if not mig.trusted(coords, site):
                continue
            try:
                cell = node.partition(arr.name).get(coords)
            except (NodeFailedError, StorageError):
                continue  # died under us / raced a delete: next candidate
            return site, None if cell is None else cell.values
        return None

    def _verify(self) -> int:
        """Re-queue every known cell missing a trusted copy at any new
        home; returns how many were re-queued."""
        mig, grid, arr = self.migration, self.grid, self.array
        with mig._lock:
            known = list(mig.known)
        requeued = 0
        for coords in known:
            for site in mig.new_chain(coords):
                if not (
                    grid.nodes[site].has_cell(arr.name, coords)
                    and mig.trusted(coords, site)
                ):
                    mig.enqueue(coords)
                    requeued += 1
                    break
        return requeued

    def _cutover(self) -> None:
        """Swap the serving placement and clean up old-home copies.

        Deletions go through :meth:`Node.delete` (WAL-logged), so a
        crash-and-replay after cutover re-applies them instead of
        resurrecting the stale copies.  Only old-chain copies of known
        cells are touched — boundary-replicated copies from
        ``load_uncertain`` live outside replica chains and survive.
        """
        arr, grid, mig = self.array, self.grid, self.migration
        old_partitioner = arr.partitioner
        arr._migration = None
        arr.partitioner = mig.new_partitioner
        dropped = 0
        with mig._lock:
            known = list(mig.known)
        for coords in known:
            new_sites = set(mig.new_chain(coords))
            old_chain = arr.chain_under(
                old_partitioner, old_partitioner.site_of(coords)
            )
            for site in old_chain:
                if site in new_sites:
                    continue
                node = grid.nodes[site]
                if not node.alive:
                    continue  # WAL replay at rebuild resurrects these,
                    # but they are untrusted and never serve (see module
                    # docstring's trust rule).
                if node.delete(arr.name, coords):
                    dropped += 1
        self.cells_dropped = dropped
        self.finished = True
        _flight_emit(
            "rebalance_cutover",
            array=arr.name,
            cells_moved=len(mig.moved_cells),
            old_copies_dropped=dropped,
            ticks=self.ticks,
        )
        report = self.report()
        grid._rebalance_done(self, report)

    def _diagnose(self) -> str:
        """Name the first blocked cell's problem for the abort reason."""
        mig, grid, arr = self.migration, self.grid, self.array
        with mig._lock:
            head = mig.pending[0] if mig.pending else None
        if head is None:
            return "stalled with an empty queue"
        dead_dsts = [
            s for s in mig.new_chain(head) if not grid.nodes[s].alive
        ]
        if dead_dsts:
            return (
                f"cell {head}: destination node(s) {dead_dsts} dead"
            )
        return f"cell {head}: no surviving trusted source"

    # -- observability --------------------------------------------------------------

    def progress(self) -> dict:
        mig = self.migration
        return {
            "array": self.array.name,
            "cells_total": len(mig.known),
            "cells_moved": len(mig.moved_cells),
            "cells_remaining": mig.pending_count(),
            "copies_delivered": self.copies_delivered,
            "dual_writes": mig.dual_writes,
            "ticks": self.ticks,
            "throttle_hits": self.throttle_hits,
            "finished": self.finished,
            "aborted": self.aborted,
        }

    def report(self) -> RebalanceReport:
        mig = self.migration
        return RebalanceReport(
            array=self.array.name,
            old_descriptor=self._old_descriptor,
            new_descriptor=mig.new_partitioner.descriptor(),
            cells_total=len(mig.known),
            cells_moved=len(mig.moved_cells),
            copies_delivered=self.copies_delivered,
            cells_dropped=self.cells_dropped,
            dual_writes=mig.dual_writes,
            bytes_moved=self.copies_delivered * self.array.cell_nbytes,
            ticks=self.ticks,
            throttle_hits=self.throttle_hits,
            aborted=self.aborted,
            reason=self.reason,
        )
