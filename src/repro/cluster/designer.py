"""The automatic database designer (Section 2.7).

"Like C-Store and H-Store, we plan an automatic data base designer which
will use a sample workload to do the partitioning.  This designer can be
run periodically on the actual workload, and suggest modifications."

The designer scores candidate partitioners against a sample workload —
a weighted set of window queries and join declarations over a cell
population — on two axes:

* **balance**: max/mean stored cells per site (hot nodes slow everything);
* **movement**: bytes a join would shuffle (zero when the joined arrays
  land co-partitioned) plus the coordination cost of queries that touch
  many sites.

Scores combine into a single cost (lower is better); :meth:`suggest`
returns candidates ranked by it.  Run it again later with fresh statistics
and it will recommend a repartitioning when the workload has drifted —
exactly the paper's periodic re-design loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.errors import PartitioningError
from .partitioning import Partitioner

__all__ = ["WorkloadQuery", "DesignCandidate", "AutomaticDesigner"]

Coords = tuple[int, ...]


@dataclass(frozen=True)
class WorkloadQuery:
    """One sample query: a window scan or a join, with a frequency weight.

    ``kind`` is ``"window"`` (uses *window*) or ``"join"`` (uses
    *join_with*: the name of the other array; joins shuffle unless
    co-partitioned).
    """

    kind: str
    weight: float = 1.0
    window: Optional[tuple[Coords, Coords]] = None
    join_with: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("window", "join"):
            raise PartitioningError(f"unknown query kind {self.kind!r}")
        if self.kind == "window" and self.window is None:
            raise PartitioningError("window queries need a window")
        if self.kind == "join" and self.join_with is None:
            raise PartitioningError("join queries need join_with")


@dataclass
class DesignCandidate:
    """A scored candidate partitioning."""

    partitioner: Partitioner
    balance: float
    movement: float
    cost: float

    def __repr__(self) -> str:
        return (
            f"<DesignCandidate {self.partitioner!r} balance={self.balance:.3f} "
            f"movement={self.movement:.1f} cost={self.cost:.3f}>"
        )


class AutomaticDesigner:
    """Scores candidate partitioners against sampled cells and queries.

    Parameters
    ----------
    cells:
        A sample of stored cell coordinates (the data distribution).
    partitioner_pool:
        Candidate schemes to evaluate (all targeting the same site count).
    balance_weight / movement_weight:
        Relative importance of load balance vs data movement in the cost.
    """

    def __init__(
        self,
        cells: Sequence[Coords],
        partitioner_pool: Sequence[Partitioner],
        balance_weight: float = 1.0,
        movement_weight: float = 1.0,
    ) -> None:
        if not cells:
            raise PartitioningError("designer needs a non-empty cell sample")
        if not partitioner_pool:
            raise PartitioningError("designer needs candidate partitioners")
        sites = {p.n_sites for p in partitioner_pool}
        if len(sites) != 1:
            raise PartitioningError("candidates must target one site count")
        self.cells = list(cells)
        self.pool = list(partitioner_pool)
        self.n_sites = sites.pop()
        self.balance_weight = balance_weight
        self.movement_weight = movement_weight

    # -- scoring ------------------------------------------------------------------

    def _balance(self, partitioner: Partitioner) -> float:
        counts = [0] * self.n_sites
        for c in self.cells:
            counts[partitioner.site_of(c)] += 1
        mean = len(self.cells) / self.n_sites
        return max(counts) / mean if mean else 0.0

    def _movement(
        self,
        partitioner: Partitioner,
        workload: Sequence[WorkloadQuery],
        partitioners_by_array: dict[str, Partitioner],
    ) -> float:
        movement = 0.0
        for q in workload:
            if q.kind == "join":
                other = partitioners_by_array.get(q.join_with)
                if other is None or other != partitioner:
                    # Full shuffle of the sampled population, weighted.
                    movement += q.weight * len(self.cells)
            else:
                lo, hi = q.window
                touched = {
                    partitioner.site_of(c)
                    for c in self.cells
                    if all(l <= v <= h for v, l, h in zip(c, lo, hi))
                }
                # Each extra site touched adds coordination traffic.
                movement += q.weight * max(0, len(touched) - 1)
        return movement

    def score(
        self,
        partitioner: Partitioner,
        workload: Sequence[WorkloadQuery],
        partitioners_by_array: Optional[dict[str, Partitioner]] = None,
    ) -> DesignCandidate:
        balance = self._balance(partitioner)
        movement = self._movement(
            partitioner, workload, partitioners_by_array or {}
        )
        # Normalise movement by the sample size so the two axes are
        # comparable; balance has a natural floor of 1.0.
        cost = (
            self.balance_weight * (balance - 1.0)
            + self.movement_weight * movement / len(self.cells)
        )
        return DesignCandidate(partitioner, balance, movement, cost)

    def suggest(
        self,
        workload: Sequence[WorkloadQuery],
        partitioners_by_array: Optional[dict[str, Partitioner]] = None,
    ) -> list[DesignCandidate]:
        """Candidates ranked best-first."""
        scored = [
            self.score(p, workload, partitioners_by_array) for p in self.pool
        ]
        scored.sort(key=lambda c: c.cost)
        return scored

    def recommend(
        self,
        workload: Sequence[WorkloadQuery],
        current: Optional[Partitioner] = None,
        improvement_threshold: float = 0.05,
        partitioners_by_array: Optional[dict[str, Partitioner]] = None,
    ) -> Optional[DesignCandidate]:
        """The periodic re-design loop: suggest a change only when the best
        candidate beats the current scheme by *improvement_threshold*."""
        ranked = self.suggest(workload, partitioners_by_array)
        best = ranked[0]
        if current is None:
            return best
        current_score = self.score(current, workload, partitioners_by_array)
        if current_score.cost - best.cost > improvement_threshold:
            return best
        return None
