"""The automatic database designer (Section 2.7).

"Like C-Store and H-Store, we plan an automatic data base designer which
will use a sample workload to do the partitioning.  This designer can be
run periodically on the actual workload, and suggest modifications."

The designer scores candidate partitioners against a sample workload —
a weighted set of window queries and join declarations over a cell
population — on two axes:

* **balance**: max/mean stored cells per site (hot nodes slow everything);
* **movement**: bytes a join would shuffle (zero when the joined arrays
  land co-partitioned) plus the coordination cost of queries that touch
  many sites.

Scores combine into a single cost (lower is better); :meth:`suggest`
returns candidates ranked by it.  Run it again later with fresh statistics
and it will recommend a repartitioning when the workload has drifted —
exactly the paper's periodic re-design loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from ..core.errors import PartitioningError
from .partitioning import ConsistentHashPartitioner, Partitioner
from .rebalance import RebalanceReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .grid import DistributedArray, Grid

__all__ = [
    "WorkloadQuery",
    "DesignCandidate",
    "AutomaticDesigner",
    "RebalanceAdvisor",
]

Coords = tuple[int, ...]


@dataclass(frozen=True)
class WorkloadQuery:
    """One sample query: a window scan or a join, with a frequency weight.

    ``kind`` is ``"window"`` (uses *window*) or ``"join"`` (uses
    *join_with*: the name of the other array; joins shuffle unless
    co-partitioned).
    """

    kind: str
    weight: float = 1.0
    window: Optional[tuple[Coords, Coords]] = None
    join_with: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("window", "join"):
            raise PartitioningError(f"unknown query kind {self.kind!r}")
        if self.kind == "window" and self.window is None:
            raise PartitioningError("window queries need a window")
        if self.kind == "join" and self.join_with is None:
            raise PartitioningError("join queries need join_with")


@dataclass
class DesignCandidate:
    """A scored candidate partitioning."""

    partitioner: Partitioner
    balance: float
    movement: float
    cost: float

    def __repr__(self) -> str:
        return (
            f"<DesignCandidate {self.partitioner!r} balance={self.balance:.3f} "
            f"movement={self.movement:.1f} cost={self.cost:.3f}>"
        )


class AutomaticDesigner:
    """Scores candidate partitioners against sampled cells and queries.

    Parameters
    ----------
    cells:
        A sample of stored cell coordinates (the data distribution).
    partitioner_pool:
        Candidate schemes to evaluate (all targeting the same site count).
    balance_weight / movement_weight:
        Relative importance of load balance vs data movement in the cost.
    """

    def __init__(
        self,
        cells: Sequence[Coords],
        partitioner_pool: Sequence[Partitioner],
        balance_weight: float = 1.0,
        movement_weight: float = 1.0,
    ) -> None:
        if not cells:
            raise PartitioningError("designer needs a non-empty cell sample")
        if not partitioner_pool:
            raise PartitioningError("designer needs candidate partitioners")
        sites = {p.n_sites for p in partitioner_pool}
        if len(sites) != 1:
            raise PartitioningError("candidates must target one site count")
        self.cells = list(cells)
        self.pool = list(partitioner_pool)
        self.n_sites = sites.pop()
        self.balance_weight = balance_weight
        self.movement_weight = movement_weight

    # -- scoring ------------------------------------------------------------------

    def _balance(self, partitioner: Partitioner) -> float:
        counts = [0] * self.n_sites
        for c in self.cells:
            counts[partitioner.site_of(c)] += 1
        mean = len(self.cells) / self.n_sites
        return max(counts) / mean if mean else 0.0

    def _movement(
        self,
        partitioner: Partitioner,
        workload: Sequence[WorkloadQuery],
        partitioners_by_array: dict[str, Partitioner],
    ) -> float:
        movement = 0.0
        for q in workload:
            if q.kind == "join":
                other = partitioners_by_array.get(q.join_with)
                if other is None or other != partitioner:
                    # Full shuffle of the sampled population, weighted.
                    movement += q.weight * len(self.cells)
            else:
                lo, hi = q.window
                touched = {
                    partitioner.site_of(c)
                    for c in self.cells
                    if all(l <= v <= h for v, l, h in zip(c, lo, hi))
                }
                # Each extra site touched adds coordination traffic.
                movement += q.weight * max(0, len(touched) - 1)
        return movement

    def score(
        self,
        partitioner: Partitioner,
        workload: Sequence[WorkloadQuery],
        partitioners_by_array: Optional[dict[str, Partitioner]] = None,
    ) -> DesignCandidate:
        balance = self._balance(partitioner)
        movement = self._movement(
            partitioner, workload, partitioners_by_array or {}
        )
        # Normalise movement by the sample size so the two axes are
        # comparable; balance has a natural floor of 1.0.
        cost = (
            self.balance_weight * (balance - 1.0)
            + self.movement_weight * movement / len(self.cells)
        )
        return DesignCandidate(partitioner, balance, movement, cost)

    def suggest(
        self,
        workload: Sequence[WorkloadQuery],
        partitioners_by_array: Optional[dict[str, Partitioner]] = None,
    ) -> list[DesignCandidate]:
        """Candidates ranked best-first."""
        scored = [
            self.score(p, workload, partitioners_by_array) for p in self.pool
        ]
        scored.sort(key=lambda c: c.cost)
        return scored

    def recommend(
        self,
        workload: Sequence[WorkloadQuery],
        current: Optional[Partitioner] = None,
        improvement_threshold: float = 0.05,
        partitioners_by_array: Optional[dict[str, Partitioner]] = None,
    ) -> Optional[DesignCandidate]:
        """The periodic re-design loop: suggest a change only when the best
        candidate beats the current scheme by *improvement_threshold*."""
        ranked = self.suggest(workload, partitioners_by_array)
        best = ranked[0]
        if current is None:
            return best
        current_score = self.score(current, workload, partitioners_by_array)
        if current_score.cost - best.cost > improvement_threshold:
            return best
        return None


class RebalanceAdvisor:
    """The periodic re-design loop, closed: watch ``imbalance()`` and
    auto-trigger a throttled online rebalance when it drifts too far.

    "This designer can be run periodically on the actual workload, and
    suggest modifications" — here the suggestion is *acted on*: when an
    array's max/mean stored-cells ratio exceeds *threshold* (a skewed
    ingest hotspot, a membership change that was never rebalanced), the
    advisor samples the stored coordinates, asks an
    :class:`AutomaticDesigner` to pick the best-balanced consistent-hash
    layout for that population from a pool of ring seeds, and migrates
    the array to it with :meth:`Grid.rebalance
    <repro.cluster.grid.Grid.rebalance>` — throttled, interleaved with
    serving traffic, abortable.  Every check lands in :attr:`history`
    (the imbalance trajectory E20 plots).
    """

    def __init__(
        self,
        grid: "Grid",
        threshold: float = 1.25,
        max_transfer_cells_per_tick: int = 64,
        vnodes: int = 96,
        ring_seeds: Sequence[int] = (0, 1, 2, 3),
        min_cells: int = 32,
    ) -> None:
        if threshold < 1.0:
            raise PartitioningError(
                "imbalance threshold below 1.0 can never be satisfied"
            )
        self.grid = grid
        self.threshold = float(threshold)
        self.max_transfer_cells_per_tick = int(max_transfer_cells_per_tick)
        self.vnodes = int(vnodes)
        self.ring_seeds = tuple(ring_seeds)
        self.min_cells = int(min_cells)
        #: one record per check: array, imbalance, triggered, and (when
        #: a migration ran) the imbalance it recovered to
        self.history: list[dict] = []

    def _sample_coords(self, arr: "DistributedArray") -> list[Coords]:
        """The stored population, coordinator-side: coordinates only, no
        values, no metered movement (placement metadata, not a query)."""
        seen: set[Coords] = set()
        for node in self.grid.alive_nodes():
            try:
                seen.update(node.partition(arr.name).live_coords())
            except Exception:
                continue  # not created here / raced a drop: skip
        return sorted(seen)

    def _target_for(
        self, arr: "DistributedArray", cells: Sequence[Coords]
    ) -> Optional[Partitioner]:
        """The best-balanced ring over current members for *cells*."""
        members = self.grid.members()
        if len(members) < arr.replication:
            return None
        pool = [
            ConsistentHashPartitioner(
                len(self.grid.nodes), members=members,
                vnodes=self.vnodes, seed=s,
            )
            for s in self.ring_seeds
        ]
        designer = AutomaticDesigner(cells, pool)
        return designer.suggest([])[0].partitioner

    def check(
        self,
        array_name: str,
        interleave: Optional[Callable[[], None]] = None,
    ) -> Optional[RebalanceReport]:
        """One tick of the loop: measure, and migrate if drifted.

        Returns the migration report when one ran, else None.  A check
        never stacks migrations: an array already mid-rebalance just
        records its trajectory point.
        """
        arr = self.grid.get_array(array_name)
        imbalance = arr.imbalance()
        entry: dict = {
            "array": array_name,
            "imbalance": imbalance,
            "threshold": self.threshold,
            "triggered": False,
        }
        cells = self._sample_coords(arr)
        if (
            imbalance <= self.threshold
            or arr._migration is not None
            or len(cells) < self.min_cells
        ):
            self.history.append(entry)
            return None
        target = self._target_for(arr, cells)
        if (
            target is None
            or target.descriptor() == arr.partitioner.descriptor()
        ):
            self.history.append(entry)
            return None
        report = self.grid.rebalance(
            array_name, target,
            max_transfer_cells_per_tick=self.max_transfer_cells_per_tick,
            interleave=interleave,
        )
        entry["triggered"] = True
        entry["aborted"] = report.aborted
        entry["imbalance_after"] = arr.imbalance()
        self.history.append(entry)
        return report
