"""A worker node in the simulated shared-nothing grid (Section 2.7).

Each node owns a private :class:`~repro.storage.manager.StorageManager`
(shared-nothing: no node ever touches another's storage) and counts the
work it does.  The grid layer is the only channel between nodes, and every
transfer through it is metered.

Fault-tolerance additions: a node can **fail** (``alive`` flips to False
and every storage access raises
:class:`~repro.core.errors.NodeFailedError`, including mid-scan — which is
how queries detect a crash under them) and later **restart**: a restart
wipes the in-memory storage state, exactly like a process crash, leaving
only the per-node write-ahead log on disk.  Recovery replays that WAL and
:meth:`Grid.rebuild_node <repro.cluster.grid.Grid.rebuild_node>` fills any
gap (e.g. a torn WAL tail) from surviving replicas.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..core.cells import Cell
from ..core.errors import NodeFailedError
from ..core.schema import ArraySchema
from ..obs.recorder import emit as _flight_emit
from ..storage.manager import PersistentArray, StorageManager
from ..storage.wal import WriteAheadLog

__all__ = ["Node", "NodeCounters"]

Coords = tuple[int, ...]


@dataclass
class NodeCounters:
    """Per-node work accounting (thread-safe via :meth:`add`)."""

    cells_stored: int = 0
    cells_scanned: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    local_queries: int = 0
    failovers_served: int = 0
    read_retries: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, counter: str, n: int = 1) -> None:
        """Atomically bump one counter — scheduler workers share a node."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict view for metrics reporting."""
        return {
            "cells_stored": self.cells_stored,
            "cells_scanned": self.cells_scanned,
            "bytes_received": self.bytes_received,
            "bytes_sent": self.bytes_sent,
            "local_queries": self.local_queries,
            "failovers_served": self.failovers_served,
            "read_retries": self.read_retries,
        }


class Node:
    """One shared-nothing worker: local storage, a WAL, plus counters."""

    def __init__(
        self,
        node_id: int,
        directory: "str | Path",
        memory_budget: int = 1 << 20,
        wal: bool = True,
        chunk_cache_bytes: int = 8 << 20,
    ) -> None:
        self.node_id = node_id
        self.directory = Path(directory)
        self.memory_budget = memory_budget
        self.chunk_cache_bytes = chunk_cache_bytes
        self.storage = StorageManager(
            self.directory,
            memory_budget=memory_budget,
            chunk_cache_bytes=chunk_cache_bytes,
        )
        self.counters = NodeCounters()
        self.alive = True
        #: removed from the grid for good (post-drain); node ids are
        #: never renumbered, so a retired node keeps its slot forever.
        self.retired = False
        #: load-batch cursors recovered by the last :meth:`replay_wal`
        self.load_cursors_restored = 0
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog(self.directory / "node.wal") if wal else None
        )

    # -- liveness ------------------------------------------------------------------

    def check_alive(self) -> None:
        if not self.alive:
            raise NodeFailedError(self.node_id)

    def fail(self) -> None:
        """Crash this node: storage unreachable until :meth:`restart`."""
        self.alive = False
        _flight_emit("node_down", node=self.node_id)

    def restart(self) -> None:
        """Come back from a crash with empty storage (the WAL survives).

        A crash loses all in-memory state (write buffers, bucket catalog,
        R-trees); the simulated restart therefore discards the whole
        storage manager and deletes stale bucket files.  Partitions must
        be re-created and repopulated — from the WAL plus surviving
        replicas — by :meth:`Grid.rebuild_node`.
        """
        for stale in self.directory.glob("*/bucket_*.bkt"):
            stale.unlink(missing_ok=True)
        # Load cursors die with the crash too; WAL load_commit records
        # bring them back consistently with the replayed cells.
        for stale in self.directory.glob("*/load_cursor.json"):
            stale.unlink(missing_ok=True)
        self.storage = StorageManager(
            self.directory,
            memory_budget=self.memory_budget,
            chunk_cache_bytes=self.chunk_cache_bytes,
        )
        self.alive = True
        _flight_emit("node_up", node=self.node_id)

    # -- storage ----------------------------------------------------------------------

    def create_partition(
        self,
        array_name: str,
        schema: ArraySchema,
        stride: Optional[Sequence[int]] = None,
        codec: str = "auto",
    ) -> PersistentArray:
        """Create this node's partition of a distributed array."""
        self.check_alive()
        return self.storage.create_array(
            array_name, schema, stride=stride, codec=codec
        )

    def partition(self, array_name: str) -> PersistentArray:
        self.check_alive()
        return self.storage.get_array(array_name)

    def store(self, array_name: str, coords: tuple, values: Optional[tuple]) -> None:
        """WAL-then-store one cell (write-ahead: log before acknowledge)."""
        self.check_alive()
        if self.wal is not None:
            self.wal.log_write(array_name, coords, values)
        self.partition(array_name).append(coords, values)
        self.counters.add("cells_stored")

    def delete(self, array_name: str, coords: tuple) -> bool:
        """WAL-then-delete one cell (rebalance cutover cleanup).

        Logged before applying so a crash after the cleanup replays the
        delete too — otherwise WAL replay would resurrect replica copies
        the ring no longer places here.
        """
        self.check_alive()
        if self.wal is not None:
            self.wal.log_delete(array_name, coords)
        return self.partition(array_name).delete(coords)

    def has_cell(self, array_name: str, coords: tuple) -> bool:
        """O(1): does this node currently hold *coords*?  False when the
        node is down — a dead node can't serve anything."""
        if not self.alive:
            return False
        try:
            return self.storage.get_array(array_name).contains(coords)
        except Exception:
            return False

    def commit_load_batch(
        self, array_name: str, epoch: "int | str", seq: int
    ) -> None:
        """Durably commit one load batch on this node's partition.

        WAL-first like :meth:`store`: the ``load_commit`` marker lands in
        the log (after the batch's cell writes, which :meth:`store`
        already logged), then the partition spills and persists its
        cursor atomically.  *epoch* may be a scoped string key (e.g.
        ``"0/p2"``) when one node's storage backs several replica chains.
        """
        self.check_alive()
        if self.wal is not None:
            self.wal.log_load_commit(array_name, epoch, seq)
            self.wal.commit()
        self.partition(array_name).commit_load_batch(epoch, seq)

    def scan_partition(
        self,
        array_name: str,
        window: Optional[tuple[Coords, Coords]] = None,
        attr_ranges: Optional[dict] = None,
    ) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """Scan a partition, re-checking liveness at every cell.

        A node killed mid-scan (a scheduled fault firing on a metered
        transfer) raises :class:`NodeFailedError` at the next cell, which
        the grid's failover logic catches and retries on a replica.

        *attr_ranges* enables the storage layer's value pruning: buckets
        whose statistics prove no cell can satisfy the ranges are skipped
        without I/O (their occupied coordinates come back as NULL cells).
        """
        self.check_alive()
        for coords, cell in self.partition(array_name).scan(
            window, attr_ranges=attr_ranges
        ):
            self.check_alive()
            yield coords, cell

    def cell_count(self, array_name: str) -> int:
        """Distinct cells stored in a partition — O(1) via the live-cell
        counter, not a full scan."""
        return self.partition(array_name).live_cells

    # -- recovery ---------------------------------------------------------------------

    def replay_wal(self, array_names: "set[str] | None" = None) -> int:
        """Replay write records from the per-node WAL into live partitions.

        Partitions must already exist.  Records for unknown arrays (e.g.
        arrays since dropped) are skipped.  A torn final record ends the
        replay silently; mid-log corruption raises ``StorageError``.
        Returns the number of cells restored.  Replayed cells are applied
        directly (not re-logged), so the WAL does not self-amplify.
        """
        self.load_cursors_restored = 0
        if self.wal is None:
            return 0
        # Drop a torn final record *on disk* before replaying: post-recovery
        # appends must not concatenate onto the partial line, which would
        # turn a legal torn tail into mid-log corruption.
        self.wal.truncate_torn_tail()
        known = array_names if array_names is not None else set(
            self.storage.names()
        )
        restored = 0
        for record in self.wal.entries():
            op = record.get("op")
            if op == "load_commit" and record["array"] in known:
                # The marker follows its batch's cell writes in the log,
                # so the cursor never claims cells the replay lacks.
                self.partition(record["array"]).restore_load_cursor(
                    record["epoch"], record["seq"]
                )
                self.load_cursors_restored += 1
                continue
            if op == "delete" and record["array"] in known:
                # Cutover cleanup must survive a crash: without replaying
                # deletes, the write records earlier in the log would
                # resurrect copies the ring has since moved elsewhere.
                self.partition(record["array"]).delete(
                    tuple(record["coords"])
                )
                continue
            if op != "write" or record["array"] not in known:
                continue
            values = record["values"]
            self.partition(record["array"]).append(
                tuple(record["coords"]),
                None if values is None else tuple(values),
            )
            restored += 1
        return restored

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.node_id} [{state}]: {self.storage.names()}>"
