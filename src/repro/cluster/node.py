"""A worker node in the simulated shared-nothing grid (Section 2.7).

Each node owns a private :class:`~repro.storage.manager.StorageManager`
(shared-nothing: no node ever touches another's storage) and counts the
work it does.  The grid layer is the only channel between nodes, and every
transfer through it is metered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..core.schema import ArraySchema
from ..storage.manager import PersistentArray, StorageManager

__all__ = ["Node", "NodeCounters"]


@dataclass
class NodeCounters:
    """Per-node work accounting."""

    cells_stored: int = 0
    cells_scanned: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    local_queries: int = 0


class Node:
    """One shared-nothing worker: local storage plus counters."""

    def __init__(
        self,
        node_id: int,
        directory: "str | Path",
        memory_budget: int = 1 << 20,
    ) -> None:
        self.node_id = node_id
        self.storage = StorageManager(Path(directory), memory_budget=memory_budget)
        self.counters = NodeCounters()

    def create_partition(
        self,
        array_name: str,
        schema: ArraySchema,
        stride: Optional[Sequence[int]] = None,
        codec: str = "auto",
    ) -> PersistentArray:
        """Create this node's partition of a distributed array."""
        return self.storage.create_array(
            array_name, schema, stride=stride, codec=codec
        )

    def partition(self, array_name: str) -> PersistentArray:
        return self.storage.get_array(array_name)

    def store(self, array_name: str, coords: tuple, values: Optional[tuple]) -> None:
        self.partition(array_name).append(coords, values)
        self.counters.cells_stored += 1

    def cell_count(self, array_name: str) -> int:
        part = self.partition(array_name)
        part.flush()
        return sum(1 for _ in part.scan())

    def __repr__(self) -> str:
        return f"<Node {self.node_id}: {self.storage.names()}>"
