"""The intra-query partition scheduler (Section 2.7).

The paper's shared-nothing requirement is that queries run "in parallel
over the partitions"; until this module existed every distributed read
walked partitions one at a time on the coordinator thread, so a 16-node
grid performed like a 1-node grid with extra bookkeeping.

:class:`PartitionScheduler` is a bounded worker pool that fans a batch
of per-partition (or per-node) thunks out across threads:

* **Determinism** — results come back in *task order*, regardless of
  completion order, so the coordinator merges partitions exactly as the
  serial path did; with ``parallelism=1`` the tasks run inline on the
  calling thread and the execution is bit-identical to the pre-scheduler
  serial code (no pool, no reordering, no extra frames).
* **Failure policy** — every task runs to completion (or failure); if
  any raised, the exception of the *lowest-indexed* failing task is
  re-raised, so a multi-partition :class:`~repro.core.errors.QuorumError`
  is attributed deterministically.  The *other* tasks' failures are not
  dropped: they are attached to the re-raised exception as ``__notes__``
  (:meth:`BaseException.add_note`, where available) and as a
  ``sibling_failures`` attribute, so multi-partition fault diagnostics
  survive.  Degraded-mode reads never raise — their tasks return
  ``(None, None)`` markers that the coordinator folds into a coverage
  report.
* **Deadline propagation** — the calling thread's ambient
  :class:`~repro.cluster.resilience.Deadline` (if any) is re-installed
  inside every worker, so per-partition tasks observe the same
  cooperative cancellation budget the coordinator does.
* **Observability** — the batch is metered through the process registry
  (``scheduler.tasks``, ``scheduler.batches``) and the coordinator's
  open operator span is adopted inside each worker
  (:func:`repro.obs.tracing.adopt`), so per-cell gather metering and the
  explain report's bytes-moved reconciliation survive the fan-out.  The
  span is annotated with the configured ``parallelism`` so
  ``SciDB.explain`` can report the fan-out per operator.

Worker threads genuinely overlap on this engine's read path because the
expensive parts release the GIL: bucket file reads, codec decompression
(zlib and friends) and numpy plane slicing all run concurrently; only
the final per-cell assembly is serialized by the interpreter.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from ..core.errors import GridError
from ..obs import tracing
from ..obs.metrics import get_registry
from .resilience import current_deadline, deadline_scope

__all__ = ["PartitionScheduler", "default_parallelism"]


def default_parallelism(n_nodes: int) -> int:
    """The grid's default intra-query fan-out: ``min(8, n_nodes)``."""
    return max(1, min(8, n_nodes))


class PartitionScheduler:
    """A bounded thread pool with deterministic, task-ordered results."""

    def __init__(self, parallelism: int) -> None:
        if parallelism < 1:
            raise GridError(
                f"scheduler parallelism must be >= 1, got {parallelism}"
            )
        self.parallelism = parallelism

    def map(self, tasks: Sequence[Callable[[], Any]]) -> List[Any]:
        """Run *tasks*, returning their results in task order.

        With ``parallelism == 1`` (or a single task) the tasks execute
        inline, in order, on the calling thread — the serial path.
        Otherwise up to ``parallelism`` worker threads execute them
        concurrently; the call returns only when every task finished,
        and re-raises the first (lowest-index) failure if any.
        """
        tasks = list(tasks)
        registry = get_registry()
        registry.counter("scheduler.batches").inc()
        registry.counter("scheduler.tasks").inc(len(tasks))
        tracing.annotate_current(parallelism=self.parallelism)
        if self.parallelism == 1 or len(tasks) <= 1:
            return [task() for task in tasks]

        parent = tracing.current_span()
        recorder = tracing.get_recorder()
        deadline = current_deadline()

        def run(task: Callable[[], Any]) -> Any:
            # The active recorder is per-thread (so concurrent queries'
            # profile trees stay disjoint); re-install the coordinator's
            # inside each worker before adopting its open span.
            with tracing.use(recorder), tracing.adopt(parent), \
                    deadline_scope(deadline):
                return task()

        workers = min(self.parallelism, len(tasks))
        results: List[Any] = []
        first_error: Optional[BaseException] = None
        siblings: List[tuple[int, BaseException]] = []
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-sched"
        ) as pool:
            futures = [pool.submit(run, task) for task in tasks]
            for i, future in enumerate(futures):
                try:
                    results.append(future.result())
                except BaseException as exc:  # deterministic: lowest index wins
                    if first_error is None:
                        first_error = exc
                    else:
                        siblings.append((i, exc))
                    results.append(None)
        if first_error is not None:
            # The lowest-indexed failure is raised; the rest ride along as
            # notes + a structured attribute instead of vanishing.
            first_error.sibling_failures = tuple(e for _, e in siblings)
            if hasattr(first_error, "add_note"):  # py >= 3.11
                for i, exc in siblings:
                    first_error.add_note(
                        f"[scheduler] task {i} also failed: "
                        f"{type(exc).__name__}: {exc}"
                    )
            raise first_error
        return results

    def __repr__(self) -> str:
        return f"<PartitionScheduler parallelism={self.parallelism}>"
