"""Partitioning schemes for distributing arrays across nodes (Section 2.7).

Gamma-style hash and range partitioning, the fixed spatial (block) scheme
that "will probably work well" for full-sky surveys and satellite imagery,
block-cyclic placement, and the paper's answer to steerable (skewed)
science: :class:`TimeEpochPartitioner`, where "a first partitioning scheme
is used for time less than T and a second partitioning scheme for
time > T".

A partitioner is a pure function from cell coordinates to a site id in
``range(n_sites)``; equality of partitioners is structural, which is what
lets the grid detect co-partitioned arrays (joins without movement).
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Sequence

from ..core.errors import PartitioningError

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "BlockPartitioner",
    "BlockCyclicPartitioner",
    "TimeEpochPartitioner",
]

Coords = tuple[int, ...]


class Partitioner:
    """Base class: maps cell coordinates to one of ``n_sites`` sites."""

    def __init__(self, n_sites: int) -> None:
        if n_sites < 1:
            raise PartitioningError("a grid needs at least one site")
        self.n_sites = n_sites

    def site_of(self, coords: Coords) -> int:
        raise NotImplementedError

    def descriptor(self) -> tuple:
        """Structural identity; equal descriptors => co-partitioned."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Partitioner) and self.descriptor() == other.descriptor()
        )

    def __hash__(self) -> int:
        return hash(self.descriptor())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.descriptor()!r}>"


class HashPartitioner(Partitioner):
    """Gamma-style hash partitioning on a subset of dimensions.

    ``dims`` are 0-based dimension positions; ``None`` hashes all of them.
    Deterministic across processes (crc32, not Python's salted hash).
    """

    def __init__(self, n_sites: int, dims: Optional[Sequence[int]] = None) -> None:
        super().__init__(n_sites)
        self.dims = tuple(dims) if dims is not None else None

    def site_of(self, coords: Coords) -> int:
        key = coords if self.dims is None else tuple(coords[d] for d in self.dims)
        # Packed little-endian int64s, not a per-cell string join: same
        # process-stable crc32 digest family, a fraction of the cost on
        # this per-cell hot path.  Placements are pinned by a golden-value
        # test so on-grid data and WAL replay stay routable across
        # releases.
        payload = struct.pack(f"<{len(key)}q", *key)
        return zlib.crc32(payload) % self.n_sites

    def descriptor(self) -> tuple:
        return ("hash", self.n_sites, self.dims)


class RangePartitioner(Partitioner):
    """Gamma-style range partitioning on one dimension.

    ``boundaries`` are the inclusive upper edges of the first
    ``len(boundaries)`` sites; coordinates beyond the last boundary go to
    the final site.  ``RangePartitioner(3, dim=0, boundaries=[100, 200])``
    sends x<=100 to site 0, x<=200 to site 1, the rest to site 2.
    """

    def __init__(self, n_sites: int, dim: int, boundaries: Sequence[int]) -> None:
        super().__init__(n_sites)
        if len(boundaries) != n_sites - 1:
            raise PartitioningError(
                f"{n_sites} sites need {n_sites - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        if any(b >= a for b, a in zip(boundaries, boundaries[1:])):
            # Strictly ascending: a duplicate boundary ([100, 100]) would
            # create a site whose range is empty by construction — it can
            # never receive a cell, permanently skewing placement and the
            # imbalance metric.
            raise PartitioningError(
                "range boundaries must be strictly ascending, got "
                f"{list(boundaries)}"
            )
        self.dim = dim
        self.boundaries = tuple(boundaries)

    def site_of(self, coords: Coords) -> int:
        value = coords[self.dim]
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                return i
        return self.n_sites - 1

    def descriptor(self) -> tuple:
        return ("range", self.n_sites, self.dim, self.boundaries)


class BlockPartitioner(Partitioner):
    """Fixed spatial partitioning: the coordinate space is cut into a grid
    of equal blocks assigned to sites in row-major round-robin order.

    This is the scheme that "will probably work well" for periodic full-sky
    or full-earth scans — and the one experiment E6 shows failing on
    steerable hotspots.

    ``bounds`` is the coordinate-space extent per dimension; ``blocks`` the
    number of cuts per dimension.
    """

    def __init__(
        self, n_sites: int, bounds: Sequence[int], blocks: Sequence[int]
    ) -> None:
        super().__init__(n_sites)
        if len(bounds) != len(blocks):
            raise PartitioningError("bounds and blocks must align")
        if any(b < 1 for b in bounds) or any(k < 1 for k in blocks):
            raise PartitioningError("bounds and blocks must be positive")
        self.bounds = tuple(int(b) for b in bounds)
        self.blocks = tuple(int(k) for k in blocks)
        self.block_side = tuple(
            -(-b // k) for b, k in zip(self.bounds, self.blocks)
        )  # ceil division

    def block_of(self, coords: Coords) -> tuple[int, ...]:
        return tuple(
            min((c - 1) // s, k - 1)
            for c, s, k in zip(coords, self.block_side, self.blocks)
        )

    def site_of(self, coords: Coords) -> int:
        block = self.block_of(coords)
        flat = 0
        for b, k in zip(block, self.blocks):
            flat = flat * k + b
        return flat % self.n_sites

    def descriptor(self) -> tuple:
        return ("block", self.n_sites, self.bounds, self.blocks)


class BlockCyclicPartitioner(Partitioner):
    """Blocks of fixed side dealt to sites cyclically by hashed block id.

    Spreads spatial hotspots across sites while preserving within-block
    locality — the middle ground between block and hash.
    """

    def __init__(self, n_sites: int, block_side: Sequence[int]) -> None:
        super().__init__(n_sites)
        if any(s < 1 for s in block_side):
            raise PartitioningError("block sides must be positive")
        self.block_side = tuple(int(s) for s in block_side)

    def site_of(self, coords: Coords) -> int:
        block = tuple((c - 1) // s for c, s in zip(coords, self.block_side))
        payload = ",".join(str(b) for b in block).encode()
        return zlib.crc32(payload) % self.n_sites

    def descriptor(self) -> tuple:
        return ("block_cyclic", self.n_sites, self.block_side)


class TimeEpochPartitioner(Partitioner):
    """Partitioning that changes over time (the paper's dynamic scheme).

    ``epochs`` is a list of ``(threshold, partitioner)`` pairs plus a final
    partitioner: coordinates whose ``time_dim`` value is <= the first
    threshold use the first scheme, and so on; beyond the last threshold the
    final scheme applies.  The paper's two-scheme case is
    ``TimeEpochPartitioner(n, time_dim, [(T, scheme_a)], scheme_b)``.
    """

    def __init__(
        self,
        n_sites: int,
        time_dim: int,
        epochs: Sequence[tuple[int, Partitioner]],
        final: Partitioner,
    ) -> None:
        super().__init__(n_sites)
        thresholds = [t for t, _ in epochs]
        if thresholds != sorted(thresholds):
            raise PartitioningError("epoch thresholds must be ascending")
        for _, p in list(epochs) + [(None, final)]:
            if p.n_sites != n_sites:
                raise PartitioningError(
                    "every epoch's partitioner must target the same site count"
                )
        self.time_dim = time_dim
        self.epochs = tuple(epochs)
        self.final = final

    def scheme_for(self, coords: Coords) -> Partitioner:
        t = coords[self.time_dim]
        for threshold, scheme in self.epochs:
            if t <= threshold:
                return scheme
        return self.final

    def site_of(self, coords: Coords) -> int:
        return self.scheme_for(coords).site_of(coords)

    def descriptor(self) -> tuple:
        return (
            "time_epoch",
            self.n_sites,
            self.time_dim,
            tuple((t, p.descriptor()) for t, p in self.epochs),
            self.final.descriptor(),
        )
