"""Partitioning schemes for distributing arrays across nodes (Section 2.7).

Gamma-style hash and range partitioning, the fixed spatial (block) scheme
that "will probably work well" for full-sky surveys and satellite imagery,
block-cyclic placement, and the paper's answer to steerable (skewed)
science: :class:`TimeEpochPartitioner`, where "a first partitioning scheme
is used for time less than T and a second partitioning scheme for
time > T".

A partitioner is a pure function from cell coordinates to a site id in
``range(n_sites)``; equality of partitioners is structural, which is what
lets the grid detect co-partitioned arrays (joins without movement).
"""

from __future__ import annotations

import bisect
import struct
import zlib
from typing import Optional, Sequence

from ..core.errors import PartitioningError

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "BlockPartitioner",
    "BlockCyclicPartitioner",
    "TimeEpochPartitioner",
    "HashRing",
    "ConsistentHashPartitioner",
]

Coords = tuple[int, ...]


class Partitioner:
    """Base class: maps cell coordinates to one of ``n_sites`` sites."""

    def __init__(self, n_sites: int) -> None:
        if n_sites < 1:
            raise PartitioningError("a grid needs at least one site")
        self.n_sites = n_sites

    def site_of(self, coords: Coords) -> int:
        raise NotImplementedError

    def sites(self) -> tuple[int, ...]:
        """Site ids this partitioner can route cells to.

        For the classic schemes that is every site; membership-aware
        schemes (the consistent-hash ring) return only current members,
        so read paths can skip partitions that are empty by construction
        — a drained node's partition must not count against coverage.
        """
        return tuple(range(self.n_sites))

    def descriptor(self) -> tuple:
        """Structural identity; equal descriptors => co-partitioned."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Partitioner) and self.descriptor() == other.descriptor()
        )

    def __hash__(self) -> int:
        return hash(self.descriptor())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.descriptor()!r}>"


class HashPartitioner(Partitioner):
    """Gamma-style hash partitioning on a subset of dimensions.

    ``dims`` are 0-based dimension positions; ``None`` hashes all of them.
    Deterministic across processes (crc32, not Python's salted hash).
    """

    def __init__(self, n_sites: int, dims: Optional[Sequence[int]] = None) -> None:
        super().__init__(n_sites)
        self.dims = tuple(dims) if dims is not None else None

    def site_of(self, coords: Coords) -> int:
        key = coords if self.dims is None else tuple(coords[d] for d in self.dims)
        # Packed little-endian int64s, not a per-cell string join: same
        # process-stable crc32 digest family, a fraction of the cost on
        # this per-cell hot path.  Placements are pinned by a golden-value
        # test so on-grid data and WAL replay stay routable across
        # releases.
        payload = struct.pack(f"<{len(key)}q", *key)
        return zlib.crc32(payload) % self.n_sites

    def descriptor(self) -> tuple:
        return ("hash", self.n_sites, self.dims)


class RangePartitioner(Partitioner):
    """Gamma-style range partitioning on one dimension.

    ``boundaries`` are the inclusive upper edges of the first
    ``len(boundaries)`` sites; coordinates beyond the last boundary go to
    the final site.  ``RangePartitioner(3, dim=0, boundaries=[100, 200])``
    sends x<=100 to site 0, x<=200 to site 1, the rest to site 2.
    """

    def __init__(self, n_sites: int, dim: int, boundaries: Sequence[int]) -> None:
        super().__init__(n_sites)
        if len(boundaries) != n_sites - 1:
            raise PartitioningError(
                f"{n_sites} sites need {n_sites - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        if any(b >= a for b, a in zip(boundaries, boundaries[1:])):
            # Strictly ascending: a duplicate boundary ([100, 100]) would
            # create a site whose range is empty by construction — it can
            # never receive a cell, permanently skewing placement and the
            # imbalance metric.
            raise PartitioningError(
                "range boundaries must be strictly ascending, got "
                f"{list(boundaries)}"
            )
        self.dim = dim
        self.boundaries = tuple(boundaries)

    def site_of(self, coords: Coords) -> int:
        value = coords[self.dim]
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                return i
        return self.n_sites - 1

    def descriptor(self) -> tuple:
        return ("range", self.n_sites, self.dim, self.boundaries)


class BlockPartitioner(Partitioner):
    """Fixed spatial partitioning: the coordinate space is cut into a grid
    of equal blocks assigned to sites in row-major round-robin order.

    This is the scheme that "will probably work well" for periodic full-sky
    or full-earth scans — and the one experiment E6 shows failing on
    steerable hotspots.

    ``bounds`` is the coordinate-space extent per dimension; ``blocks`` the
    number of cuts per dimension.
    """

    def __init__(
        self, n_sites: int, bounds: Sequence[int], blocks: Sequence[int]
    ) -> None:
        super().__init__(n_sites)
        if len(bounds) != len(blocks):
            raise PartitioningError("bounds and blocks must align")
        if any(b < 1 for b in bounds) or any(k < 1 for k in blocks):
            raise PartitioningError("bounds and blocks must be positive")
        self.bounds = tuple(int(b) for b in bounds)
        self.blocks = tuple(int(k) for k in blocks)
        self.block_side = tuple(
            -(-b // k) for b, k in zip(self.bounds, self.blocks)
        )  # ceil division

    def block_of(self, coords: Coords) -> tuple[int, ...]:
        return tuple(
            min((c - 1) // s, k - 1)
            for c, s, k in zip(coords, self.block_side, self.blocks)
        )

    def site_of(self, coords: Coords) -> int:
        block = self.block_of(coords)
        flat = 0
        for b, k in zip(block, self.blocks):
            flat = flat * k + b
        return flat % self.n_sites

    def descriptor(self) -> tuple:
        return ("block", self.n_sites, self.bounds, self.blocks)


class BlockCyclicPartitioner(Partitioner):
    """Blocks of fixed side dealt to sites cyclically by hashed block id.

    Spreads spatial hotspots across sites while preserving within-block
    locality — the middle ground between block and hash.
    """

    def __init__(self, n_sites: int, block_side: Sequence[int]) -> None:
        super().__init__(n_sites)
        if any(s < 1 for s in block_side):
            raise PartitioningError("block sides must be positive")
        self.block_side = tuple(int(s) for s in block_side)

    def site_of(self, coords: Coords) -> int:
        block = tuple((c - 1) // s for c, s in zip(coords, self.block_side))
        payload = ",".join(str(b) for b in block).encode()
        return zlib.crc32(payload) % self.n_sites

    def descriptor(self) -> tuple:
        return ("block_cyclic", self.n_sites, self.block_side)


class TimeEpochPartitioner(Partitioner):
    """Partitioning that changes over time (the paper's dynamic scheme).

    ``epochs`` is a list of ``(threshold, partitioner)`` pairs plus a final
    partitioner: coordinates whose ``time_dim`` value is <= the first
    threshold use the first scheme, and so on; beyond the last threshold the
    final scheme applies.  The paper's two-scheme case is
    ``TimeEpochPartitioner(n, time_dim, [(T, scheme_a)], scheme_b)``.
    """

    def __init__(
        self,
        n_sites: int,
        time_dim: int,
        epochs: Sequence[tuple[int, Partitioner]],
        final: Partitioner,
    ) -> None:
        super().__init__(n_sites)
        thresholds = [t for t, _ in epochs]
        if thresholds != sorted(thresholds):
            raise PartitioningError("epoch thresholds must be ascending")
        for _, p in list(epochs) + [(None, final)]:
            if p.n_sites != n_sites:
                raise PartitioningError(
                    "every epoch's partitioner must target the same site count"
                )
        self.time_dim = time_dim
        self.epochs = tuple(epochs)
        self.final = final

    def scheme_for(self, coords: Coords) -> Partitioner:
        t = coords[self.time_dim]
        for threshold, scheme in self.epochs:
            if t <= threshold:
                return scheme
        return self.final

    def site_of(self, coords: Coords) -> int:
        return self.scheme_for(coords).site_of(coords)

    def descriptor(self) -> tuple:
        return (
            "time_epoch",
            self.n_sites,
            self.time_dim,
            tuple((t, p.descriptor()) for t, p in self.epochs),
            self.final.descriptor(),
        )


_MASK64 = (1 << 64) - 1
#: domain separators so member-position and cell-key hash streams never mix
_RING_TAG = 0x52494E47  # "RING"
_CELL_TAG = 0x43454C4C  # "CELL"


def _mix64(x: int) -> int:
    """splitmix64's finalizer: a fast, well-mixed 64-bit permutation."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class HashRing:
    """A consistent-hash ring over integer member ids (Karger-style).

    Each member owns ``vnodes`` points on a 32-bit ring.  A key is
    routed to the member owning the first point at or clockwise-after
    the key's own hash.  Adding or removing one member therefore only
    reassigns the arcs adjacent to that member's points: an expected
    ``1/(N+1)`` of keys move on growth, which is the whole reason
    elastic rebalancing (cluster/rebalance.py) can be cheap.

    Positions come from a splitmix64 finalizer, **not** crc32: crc32 is
    linear over GF(2), so the vnode positions of member ``a ^ b`` are
    correlated with those of members ``a`` and ``b`` — a new member
    would steal arcs lopsidedly from the members its id shares bits
    with, silently breaking the 1/(N+1) movement bound.  The multiply-
    xorshift mixer has no such structure (process-stable, deterministic
    across runs, like every digest this repo uses for placement).

    Position collisions between vnodes are broken by (position, member)
    sort order, so the layout is a pure function of the member set.
    """

    def __init__(
        self, members: Sequence[int], vnodes: int = 96, seed: int = 0
    ) -> None:
        if not members:
            raise PartitioningError("a hash ring needs at least one member")
        if len(set(members)) != len(members):
            raise PartitioningError("ring members must be unique")
        if vnodes < 1:
            raise PartitioningError("vnodes must be positive")
        self.members = tuple(sorted(int(m) for m in members))
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        points: list[tuple[int, int]] = []
        for m in self.members:
            base = _mix64(_mix64(self.seed ^ _RING_TAG) ^ m)
            for i in range(self.vnodes):
                pos = _mix64(base ^ i) & 0xFFFFFFFF
                points.append((pos, m))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [m for _, m in points]

    def owner_of(self, point: int) -> int:
        """The member owning ring position ``point`` (first vnode at or
        clockwise-after it, wrapping at 2**32)."""
        idx = bisect.bisect_left(self._positions, point & 0xFFFFFFFF)
        if idx == len(self._positions):
            idx = 0
        return self._owners[idx]

    def with_member(self, member: int) -> "HashRing":
        if member in self.members:
            raise PartitioningError(f"member {member} is already on the ring")
        return HashRing(self.members + (member,), self.vnodes, self.seed)

    def without_member(self, member: int) -> "HashRing":
        if member not in self.members:
            raise PartitioningError(f"member {member} is not on the ring")
        remaining = tuple(m for m in self.members if m != member)
        return HashRing(remaining, self.vnodes, self.seed)

    def descriptor(self) -> tuple:
        return ("ring", self.members, self.vnodes, self.seed)


class ConsistentHashPartitioner(Partitioner):
    """Hash partitioning over a consistent-hash ring of member sites.

    Unlike :class:`HashPartitioner` — where growing ``n_sites`` reshuffles
    nearly every cell — moving between two rings that differ by one
    member relocates only ~``1/(N+1)`` of cells, making
    ``Grid.add_node`` / ``drain_node`` incremental operations instead of
    full repartitions.

    ``n_sites`` stays equal to the *grid* size (every site id the grid
    knows, including drained ones), preserving the invariant that
    ``site_of`` returns ids in ``range(n_sites)``; the ring's member set
    is the subset that actually receives cells.  :meth:`sites` exposes
    that subset so scans skip structurally-empty partitions.

    Replica chains are member-aware too: :meth:`chain_sites` applies
    chained declustering *over the sorted member list*, never placing a
    replica on a drained or retired site.  Keeping the chain a function
    of the member set (not of ``n_sites``) is what bounds movement when
    membership changes — see DESIGN.md's placement invariants.
    """

    def __init__(
        self,
        n_sites: int,
        members: Optional[Sequence[int]] = None,
        vnodes: int = 96,
        dims: Optional[Sequence[int]] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(n_sites)
        ring = HashRing(
            members if members is not None else range(n_sites), vnodes, seed
        )
        if ring.members[-1] >= n_sites or ring.members[0] < 0:
            raise PartitioningError(
                f"ring members {ring.members} fall outside range({n_sites})"
            )
        self.ring = ring
        self.dims = tuple(dims) if dims is not None else None

    @property
    def members(self) -> tuple[int, ...]:
        return self.ring.members

    def site_of(self, coords: Coords) -> int:
        key = coords if self.dims is None else tuple(coords[d] for d in self.dims)
        # A distinct tag keeps cell hashes off the vnode positions' hash
        # stream, so keys don't pile up on vnode points.
        h = _mix64(self.ring.seed ^ _CELL_TAG)
        for c in key:
            h = _mix64(h ^ (c & _MASK64))
        return self.ring.owner_of(h & 0xFFFFFFFF)

    def sites(self) -> tuple[int, ...]:
        return self.ring.members

    def chain_sites(self, primary: int, k: int) -> tuple[int, ...]:
        """Chained declustering over the sorted members: the ``k`` sites
        starting at ``primary`` in member order, wrapping."""
        members = self.ring.members
        if k > len(members):
            raise PartitioningError(
                f"replication {k} exceeds ring membership {len(members)}"
            )
        if primary not in members:
            raise PartitioningError(f"site {primary} is not a ring member")
        start = members.index(primary)
        return tuple(members[(start + i) % len(members)] for i in range(k))

    def with_member(self, member: int) -> "ConsistentHashPartitioner":
        """The ring one grid-growth step ahead: same layout plus one
        member.  ``n_sites`` grows to cover the new id if needed."""
        out = ConsistentHashPartitioner.__new__(ConsistentHashPartitioner)
        Partitioner.__init__(out, max(self.n_sites, member + 1))
        out.ring = self.ring.with_member(member)
        out.dims = self.dims
        return out

    def without_member(self, member: int) -> "ConsistentHashPartitioner":
        out = ConsistentHashPartitioner.__new__(ConsistentHashPartitioner)
        Partitioner.__init__(out, self.n_sites)
        out.ring = self.ring.without_member(member)
        out.dims = self.dims
        return out

    def descriptor(self) -> tuple:
        return (
            "consistent_hash",
            self.n_sites,
            self.ring.descriptor(),
            self.dims,
        )
