"""The health model: events + gauges rolled into named findings.

:class:`HealthModel` turns the raw operational record — node liveness,
breaker states, in-flight migrations, rebuild history and the flight
recorder's recent events — into the four-level status the paper's §2.7
designer loop acts on:

* ``ok`` — every node serving, no evasive action under way.
* ``degraded`` — serving, but something is compensating: an open or
  probing circuit breaker, a WAL tear, deadline misses, quarantined
  records, cache eviction pressure.
* ``rebalancing`` — an online migration is moving data right now (the
  cluster is healthy but placement is in flux; expect dual writes).
* ``critical`` — at least one non-retired node is down, so replica
  chains are short and another failure may lose quorum.

Severity composes upward (``critical > rebalancing > degraded > ok``)
and every non-ok status carries **named findings** — human-readable,
specific strings like ``"node 3: breaker open (2 transitions)"`` — so
``db.status()`` explains *why*, not just *what*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .recorder import FlightRecorder

__all__ = ["NodeHealth", "HealthReport", "HealthModel"]

OK = "ok"
DEGRADED = "degraded"
REBALANCING = "rebalancing"
CRITICAL = "critical"

#: composition order: later entries dominate earlier ones
_SEVERITY = {OK: 0, DEGRADED: 1, REBALANCING: 2, CRITICAL: 3}


def _worst(a: str, b: str) -> str:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


@dataclass
class NodeHealth:
    """One node's rolled-up status with its named findings."""

    grid: str
    node_id: int
    status: str = OK
    findings: list[str] = field(default_factory=list)

    def flag(self, status: str, finding: str) -> None:
        self.status = _worst(self.status, status)
        self.findings.append(finding)

    def render(self) -> str:
        line = f"{self.grid}/node{self.node_id}: {self.status}"
        if self.findings:
            line += "  (" + "; ".join(self.findings) + ")"
        return line


@dataclass
class HealthReport:
    """Cluster-wide status: per-node detail plus cluster findings."""

    status: str = OK
    nodes: list[NodeHealth] = field(default_factory=list)
    findings: list[str] = field(default_factory=list)

    def node(self, grid: str, node_id: int) -> Optional[NodeHealth]:
        for nh in self.nodes:
            if nh.grid == grid and nh.node_id == node_id:
                return nh
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "findings": list(self.findings),
            "nodes": [
                {
                    "grid": nh.grid,
                    "node_id": nh.node_id,
                    "status": nh.status,
                    "findings": list(nh.findings),
                }
                for nh in self.nodes
            ],
        }

    def render(self) -> str:
        lines = [f"cluster: {self.status}"]
        for finding in self.findings:
            lines.append(f"  ! {finding}")
        for nh in self.nodes:
            lines.append("  " + nh.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class HealthModel:
    """Assess grids (and the flight recorder's record) into a report.

    Thresholds are deliberately simple and documented: health is a
    *triage* surface, not an alerting pipeline.  ``imbalance_threshold``
    matches the :class:`~repro.cluster.designer.RebalanceAdvisor`
    default, so "degraded: imbalance" and "the advisor would migrate"
    agree with each other.
    """

    def __init__(
        self,
        imbalance_threshold: float = 1.5,
        recent_window: int = 256,
    ) -> None:
        self.imbalance_threshold = imbalance_threshold
        #: how many of the newest events count as "recent" for findings
        self.recent_window = recent_window

    # -- the assessment --------------------------------------------------------

    def assess(
        self,
        grids: dict[str, Any],
        recorder: Optional[FlightRecorder] = None,
    ) -> HealthReport:
        report = HealthReport()
        for gname, grid in sorted(grids.items()):
            self._assess_grid(gname, grid, report)
        if recorder is not None and recorder.enabled:
            self._assess_events(recorder, report)
        for nh in report.nodes:
            report.status = _worst(report.status, nh.status)
        return report

    def _assess_grid(self, gname: str, grid: Any, report: HealthReport) -> None:
        rebuilt = {r.node_id: r for r in grid.rebuilds}
        for node in grid.nodes:
            nh = NodeHealth(gname, node.node_id)
            if node.retired:
                nh.findings.append("retired")
                report.nodes.append(nh)
                continue
            if not node.alive:
                nh.flag(CRITICAL, "down (awaiting rebuild)")
            breaker = grid.breakers[node.node_id]
            if breaker.state == "open":
                nh.flag(
                    DEGRADED,
                    f"breaker open ({len(breaker.transitions)} transitions)",
                )
            elif breaker.state == "half_open":
                nh.flag(DEGRADED, "breaker half-open (probing)")
            last = rebuilt.get(node.node_id)
            if last is not None and node.alive:
                nh.findings.append(
                    f"rebuilt: {last.cells_from_wal} cells from WAL, "
                    f"{last.cells_from_replicas} from replicas"
                )
            report.nodes.append(nh)

        for rb in grid.active_rebalancers:
            prog = rb.progress()
            total = prog["cells_total"] or 1
            pct = 100.0 * prog["cells_moved"] / total
            report.status = _worst(report.status, REBALANCING)
            report.findings.append(
                f"{gname}: rebalance {prog['array']!r} {pct:.0f}% "
                f"({prog['cells_moved']}/{prog['cells_total']} cells, "
                f"{prog['cells_remaining']} remaining)"
            )
        aborted = [r for r in grid.rebalance_log if r.aborted]
        if aborted:
            report.status = _worst(report.status, DEGRADED)
            report.findings.append(
                f"{gname}: {len(aborted)} rebalance(s) aborted "
                f"(last: {aborted[-1].reason})"
            )

        imbalance = 0.0
        for name in grid.names():
            try:
                imbalance = max(imbalance, grid.get_array(name).imbalance())
            except Exception:
                continue  # a chain with no live replica mid-drill
        if imbalance > self.imbalance_threshold:
            report.status = _worst(report.status, DEGRADED)
            report.findings.append(
                f"{gname}: imbalance {imbalance:.2f} exceeds "
                f"{self.imbalance_threshold:g} (advisor would migrate)"
            )

    def _assess_events(
        self, recorder: FlightRecorder, report: HealthReport
    ) -> None:
        recent = recorder.events()[-self.recent_window:]
        tears = [e for e in recent if e.kind in ("fault.wal_tear", "wal_torn_tail")]
        for event in tears:
            if event.node is None:
                continue
            for nh in report.nodes:
                if nh.node_id == event.node and "WAL tear" not in "".join(
                    nh.findings
                ):
                    nh.flag(DEGRADED, "WAL tear in recent history")
        misses = sum(1 for e in recent if e.kind == "deadline_miss")
        if misses:
            report.status = _worst(report.status, DEGRADED)
            report.findings.append(f"{misses} recent deadline miss(es)")
        quarantined = sum(
            int(e.detail.get("count", 1))
            for e in recent
            if e.kind == "quarantine"
        )
        if quarantined:
            report.status = _worst(report.status, DEGRADED)
            report.findings.append(
                f"{quarantined} record(s) quarantined recently"
            )
        pressure = [e for e in recent if e.kind == "cache_pressure"]
        if pressure:
            report.status = _worst(report.status, DEGRADED)
            total = sum(int(e.detail.get("evictions", 0)) for e in pressure)
            report.findings.append(
                f"chunk-cache eviction pressure ({total} evictions recently)"
            )
