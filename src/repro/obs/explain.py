"""``EXPLAIN ANALYZE``-style reports over executed parse trees.

:func:`build_report` pairs a planned parse tree with the span tree its
execution recorded (operator spans are tagged ``node_id=id(node)`` by
the executor) and produces an :class:`ExplainReport`: the plan shape,
each operator annotated with its actual wall time, cells scanned,
chunks (storage buckets) touched, nodes visited and bytes moved, plus
the movement-ledger delta the query caused — the per-operator
``bytes_moved`` sums reconcile with that delta by construction, because
every metered transfer lands in whichever operator span was open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..query.ast import ArrayRef, Node, OpNode, SelectNode
from .tracing import Span

__all__ = ["OperatorProfile", "ExplainReport", "build_report"]


@dataclass
class OperatorProfile:
    """One plan-tree operator with its measured execution profile."""

    op: str
    label: str
    time_ms: float = 0.0
    cells_scanned: int = 0
    cells_out: int = 0
    chunks_touched: int = 0
    nodes_visited: int = 0
    bytes_moved: int = 0
    distributed: bool = False
    #: intra-query fan-out the scheduler used for this operator (None when
    #: the operator never entered the parallel scheduler)
    parallelism: Optional[int] = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: storage buckets skipped by value-range statistics (never read)
    chunks_pruned: int = 0
    error: Optional[str] = None
    counters: dict[str, float] = field(default_factory=dict)
    #: planner estimates (None when no statistics were available at plan
    #: time) — rendered against the actuals above
    est_cells: Optional[int] = None
    est_chunks: Optional[int] = None
    est_chunks_pruned: Optional[int] = None
    est_ms: Optional[float] = None
    #: cost-model strategy choice (partial-aggregate / gather / ...)
    strategy: str = ""
    children: "list[OperatorProfile]" = field(default_factory=list)

    @property
    def cache_hit_ratio(self) -> Optional[float]:
        """Chunk-cache hit ratio for this operator; None if it read no
        buckets through the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None

    def walk(self) -> "Iterator[OperatorProfile]":
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        line = (
            f"{pad}-> {self.label}  "
            f"(time={self.time_ms:.3f} ms, cells_scanned={self.cells_scanned}, "
            f"cells_out={self.cells_out}, chunks={self.chunks_touched}, "
            f"nodes={self.nodes_visited}, bytes_moved={self.bytes_moved})"
        )
        if self.chunks_pruned:
            line += f"  [chunks_pruned={self.chunks_pruned}]"
        if self.est_cells is not None:
            est = f"  [estimated: cells={self.est_cells}"
            if self.est_chunks is not None:
                est += f", chunks={self.est_chunks}"
                if self.est_chunks_pruned:
                    est += f" (-{self.est_chunks_pruned} pruned)"
            line += est + "]"
        if self.strategy:
            line += f"  [strategy={self.strategy}]"
        if self.distributed:
            line += "  [distributed]"
        if self.parallelism is not None:
            line += f"  [parallelism={self.parallelism}]"
        ratio = self.cache_hit_ratio
        if ratio is not None:
            line += f"  [cache_hit_ratio={ratio:.2f}]"
        # Resilience activity: shown only when the read path took evasive
        # action, so healthy plans stay uncluttered.
        for key in (
            "failovers", "breaker_skips", "hedges", "hedge_wins",
            "deadline_misses",
        ):
            value = self.counters.get(key, 0)
            if value:
                line += f"  [{key}={int(value)}]"
        if self.error:
            line += f"  ERROR: {self.error}"
        parts = [line]
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)


@dataclass
class ExplainReport:
    """The assembled EXPLAIN ANALYZE output for one statement."""

    statement: str
    rewrites: list[str]
    root: OperatorProfile
    total_ms: float
    #: movement-ledger byte delta caused by this query, keyed by reason
    ledger_delta: dict[str, int] = field(default_factory=dict)
    #: cells the filter predicates examined (the E2 metric)
    cells_examined: int = 0
    #: elastic-operations context the query ran under: rebalance
    #: progress (cells moved / remaining, throttle hits) and node
    #: rebuilds — empty when the grid is quiescent
    grid_status: dict[str, Any] = field(default_factory=dict)

    def operators(self) -> Iterator[OperatorProfile]:
        return self.root.walk()

    def total(self, key: str) -> float:
        """Sum one profile field (or extra counter) over all operators."""
        out: float = 0
        for prof in self.operators():
            if hasattr(prof, key):
                out += getattr(prof, key)
            else:
                out += prof.counters.get(key, 0)
        return out

    @property
    def ledger_bytes(self) -> int:
        return sum(self.ledger_delta.values())

    def reconciles(self) -> bool:
        """Per-operator bytes_moved sums match the ledger delta."""
        return int(self.total("bytes_moved")) == self.ledger_bytes

    def render(self) -> str:
        lines = [f"EXPLAIN ANALYZE {self.statement}"]
        for rw in self.rewrites:
            lines.append(f"  rewrite: {rw}")
        lines.append(self.root.render(1))
        lines.append(
            f"  total: {self.total_ms:.3f} ms, "
            f"{int(self.total('bytes_moved'))} bytes moved"
        )
        if self.ledger_delta:
            by_reason = ", ".join(
                f"{k}={v}" for k, v in sorted(self.ledger_delta.items())
            )
            lines.append(f"  ledger delta: {by_reason}")
        rebalance = self.grid_status.get("rebalance")
        if rebalance:
            for prog in rebalance.get("active", ()):
                lines.append(
                    f"  rebalance[{prog['array']}]: "
                    f"{prog['cells_moved']}/{prog['cells_total']} cells "
                    f"moved, {prog['cells_remaining']} remaining, "
                    f"{prog['throttle_hits']} throttle hits"
                )
            completed = rebalance.get("completed", ())
            if completed:
                lines.append(
                    f"  rebalance: {len(completed)} completed "
                    f"({rebalance.get('cells_moved', 0)} cells moved, "
                    f"{rebalance.get('throttle_hits', 0)} throttle hits, "
                    f"{rebalance.get('aborted', 0)} aborted)"
                )
        rebuilds = self.grid_status.get("rebuilds")
        if rebuilds:
            restored = sum(
                r["cells_from_wal"] + r["cells_from_replicas"]
                for r in rebuilds
            )
            lines.append(
                f"  rebuilds: {len(rebuilds)} node(s), "
                f"{restored} cells restored"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _index_spans(roots: "list[Span]") -> dict[int, Span]:
    """Map ``node_id`` attrs to spans across the recorded forest."""
    index: dict[int, Span] = {}
    for root in roots:
        for sp in root.walk():
            node_id = sp.attrs.get("node_id")
            if node_id is not None:
                index[node_id] = sp
    return index


def _label(node: Node) -> str:
    """A compact, human-readable operator label."""
    if isinstance(node, ArrayRef):
        return f"scan {node.name}"
    if isinstance(node, OpNode):
        bits = [node.op]
        for key in ("group_dims", "on", "factors", "attrs", "order", "agg"):
            value = node.option(key)
            if value is not None:
                bits.append(f"{key}={value!r}")
        return " ".join(bits)
    return type(node).__name__


def _profile_from_span(node: Node, sp: Optional[Span]) -> OperatorProfile:
    prof = OperatorProfile(
        op=node.op if isinstance(node, OpNode) else "scan",
        label=_label(node),
    )
    if sp is None:
        return prof
    prof.time_ms = sp.duration_ms
    counters = dict(sp.counters)
    prof.cells_scanned = int(counters.pop("cells_scanned", 0))
    prof.cells_out = int(counters.pop("cells_out", 0))
    prof.chunks_touched = int(
        counters.pop("chunks_touched", 0) + counters.pop("chunks_read", 0)
    )
    prof.bytes_moved = int(counters.pop("bytes_moved", 0))
    prof.cache_hits = int(counters.pop("cache_hits", 0))
    prof.cache_misses = int(counters.pop("cache_misses", 0))
    prof.chunks_pruned = int(counters.pop("chunks_pruned", 0))
    prof.nodes_visited = len(sp.marks.get("nodes", ()))
    prof.distributed = bool(sp.attrs.get("distributed", False))
    parallelism = sp.attrs.get("parallelism")
    prof.parallelism = int(parallelism) if parallelism is not None else None
    prof.error = sp.error
    prof.counters = counters
    return prof


def build_report(
    planned_node: Node,
    rewrites: list[str],
    roots: "list[Span]",
    statement: str,
    total_ms: float,
    ledger_delta: Optional[dict[str, int]] = None,
    cells_examined: int = 0,
    describe_ref: Optional[Callable[[str], dict[str, Any]]] = None,
    grid_status: Optional[dict[str, Any]] = None,
    planned: Optional[Any] = None,
) -> ExplainReport:
    """Assemble the report for one executed statement.

    *describe_ref* (optional) annotates ``scan`` leaves from the catalog
    — e.g. cell counts and grid fan-out for a distributed array.
    *planned* (a :class:`~repro.query.planner.PlannedQuery`, optional)
    joins the planner's physical annotations onto the measured tree by
    node identity, so every operator renders estimated next to actual.
    """
    index = _index_spans(roots)

    def profile(node: Node) -> OperatorProfile:
        if isinstance(node, SelectNode):
            return profile(node.expr)
        prof = _profile_from_span(node, index.get(id(node)))
        if isinstance(node, ArrayRef) and describe_ref is not None:
            info = describe_ref(node.name)
            prof.cells_out = int(info.get("cells", prof.cells_out))
            prof.nodes_visited = int(info.get("nodes", prof.nodes_visited))
            prof.distributed = bool(info.get("distributed", prof.distributed))
        if planned is not None:
            phys = planned.physical_for(node)
            if phys is not None:
                prof.est_cells = phys.est_cells
                prof.est_chunks = phys.est_chunks
                prof.est_chunks_pruned = phys.est_chunks_pruned
                prof.est_ms = phys.est_ms
                prof.strategy = phys.strategy
        if isinstance(node, OpNode):
            prof.children = [profile(arg) for arg in node.args]
        return prof

    return ExplainReport(
        statement=statement,
        rewrites=list(rewrites),
        root=profile(planned_node),
        total_ms=total_ms,
        ledger_delta=dict(ledger_delta or {}),
        cells_examined=cells_examined,
        grid_status=dict(grid_status or {}),
    )
