"""The flight recorder: continuous, bounded operational memory.

The engine's point-in-time observability (tracing spans, the metrics
registry, ``EXPLAIN ANALYZE``) answers "what is happening *right now*";
this module answers "what has been happening *lately*" — the §2.7
designer loop and the paper's "the system must explain what it did" both
presuppose telemetry that persists beyond a single call.  Three bounded
stores, composed by one :class:`FlightRecorder`:

* :class:`EventLog` — a ring buffer of typed :class:`RecordedEvent`
  records (node kill/rebuild, breaker open/close, rebalance lifecycle,
  WAL tears, deadline misses, quarantines, cache eviction pressure …),
  each stamped with a **monotonic sequence number** (the deterministic
  ordering drills reconcile against) and a wall-clock timestamp (for
  humans).  Per-kind totals survive ring eviction, so completeness
  reconciliation works even after the ring wraps.
* :class:`QueryProfileStore` — the last N completed statements, each a
  :class:`QueryProfile` holding the operator tree
  (:class:`~repro.obs.explain.OperatorProfile`) with per-op time /
  cells / bytes / parallelism / failovers and the cache hit ratio,
  plus an ``estimated`` summary of the planner's predictions (cells,
  ms, chunks, pruned chunks, strategy choices) for estimated-vs-actual
  history — ``db.profiles()`` / ``db.profile(id)`` replay any recent
  query's explain after the fact.
* :class:`GaugeSampler` — fixed-size rings of per-node gauge samples
  (cells stored, WAL depth, cache bytes, breaker state, imbalance), so
  trends survive.  Sampling is **off by default** and explicit: call
  :meth:`FlightRecorder.sample` from a drill loop, or
  :meth:`FlightRecorder.start_sampling` for a background thread.

One process-wide recorder (swap with :func:`set_flight_recorder`) keeps
the hook sites one-liners, mirroring the metrics-registry idiom::

    from repro.obs import recorder as flight
    flight.emit("node_rebuild", node=3, cells=1200)

Cost discipline: with the recorder disabled, :func:`emit` is one
function call and one attribute check — nothing allocates.  Every store
is capped (ring buffers, last-N deques), so a long-running service's
recorder memory is a constant.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .explain import OperatorProfile

__all__ = [
    "RecordedEvent",
    "EventLog",
    "QueryProfile",
    "QueryProfileStore",
    "GaugeSampler",
    "FlightRecorder",
    "emit",
    "get_flight_recorder",
    "set_flight_recorder",
    "use_flight_recorder",
]


@dataclass(frozen=True)
class RecordedEvent:
    """One structured operational event.

    ``seq`` is a recorder-wide monotonic sequence number — two events'
    relative order is exactly their emission order, which is what drills
    reconcile (wall-clock ``ts`` is for humans and exports only).
    """

    seq: int
    ts: float
    kind: str
    node: Optional[int] = None
    array: Optional[str] = None
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"seq": self.seq, "ts": self.ts, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.array is not None:
            out["array"] = self.array
        if self.detail:
            out["detail"] = self.detail
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    def __str__(self) -> str:
        bits = [f"#{self.seq}", self.kind]
        if self.node is not None:
            bits.append(f"node={self.node}")
        if self.array is not None:
            bits.append(f"array={self.array}")
        bits.extend(f"{k}={v}" for k, v in self.detail.items())
        return " ".join(bits)


class EventLog:
    """A bounded, thread-safe ring of :class:`RecordedEvent` records.

    The ring keeps the newest ``capacity`` events; :attr:`emitted` and
    the per-kind :meth:`counts` keep counting past eviction, so "did we
    see every injected kill" reconciles even after the ring wraps.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[RecordedEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def emit(
        self,
        kind: str,
        node: Optional[int] = None,
        array: Optional[str] = None,
        **detail: Any,
    ) -> RecordedEvent:
        with self._lock:
            self._seq += 1
            event = RecordedEvent(
                seq=self._seq,
                ts=time.time(),
                kind=kind,
                node=node,
                array=array,
                detail=detail,
            )
            self._ring.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        since_seq: int = 0,
    ) -> list[RecordedEvent]:
        """Retained events oldest-first, optionally filtered."""
        with self._lock:
            out = list(self._ring)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if node is not None:
            out = [e for e in out if e.node == node]
        if since_seq:
            out = [e for e in out if e.seq > since_seq]
        return out

    def counts(self) -> dict[str, int]:
        """All-time events by kind (survives ring eviction)."""
        with self._lock:
            return dict(self._counts)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (``seq`` of the newest one)."""
        with self._lock:
            return self._seq

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        with self._lock:
            return self._seq - len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._counts.clear()
            # _seq is NOT reset: sequence numbers stay monotonic for the
            # recorder's lifetime, so ``since_seq`` bookmarks stay valid.

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return f"<EventLog {len(self)}/{self.capacity} retained, {self.emitted} emitted>"


@dataclass
class QueryProfile:
    """One completed statement's retained execution profile.

    ``root`` is the same per-operator tree ``EXPLAIN ANALYZE`` renders
    (time / cells / bytes / parallelism / failovers / cache hits per
    operator) — :meth:`render` replays the explain after the fact.
    ``estimated`` carries the planner's flattened predictions (cells,
    ms, chunks to read, chunks to prune, strategy choices) so every
    retained profile supports estimated-vs-actual comparison; it is
    ``None`` only when the statement had no physical plan (DDL).
    """

    query_id: str
    statement: str
    started_at: float
    total_ms: float
    rewrites: list[str] = field(default_factory=list)
    root: "Optional[OperatorProfile]" = None
    cells_examined: int = 0
    error: Optional[str] = None
    #: the planner's predictions for this statement (cells/ms/chunks/
    #: chunks_pruned/strategies); None when nothing was planned (DDL)
    estimated: Optional[dict[str, Any]] = None

    def _sum(self, attr: str) -> float:
        if self.root is None:
            return 0
        return sum(getattr(p, attr) for p in self.root.walk())

    @property
    def bytes_moved(self) -> int:
        return int(self._sum("bytes_moved"))

    @property
    def cells_scanned(self) -> int:
        return int(self._sum("cells_scanned"))

    @property
    def failovers(self) -> int:
        if self.root is None:
            return 0
        return int(
            sum(p.counters.get("failovers", 0) for p in self.root.walk())
        )

    @property
    def cache_hit_ratio(self) -> Optional[float]:
        """Chunk-cache hit ratio over the whole plan; None if no operator
        read through the cache."""
        hits = self._sum("cache_hits")
        total = hits + self._sum("cache_misses")
        return hits / total if total else None

    @property
    def parallelism(self) -> Optional[int]:
        """The widest fan-out any operator used (None when fully local)."""
        if self.root is None:
            return None
        widths = [
            p.parallelism for p in self.root.walk() if p.parallelism is not None
        ]
        return max(widths) if widths else None

    def render(self) -> str:
        """Replay this query's explain from the retained profile."""
        lines = [f"PROFILE {self.query_id}  {self.statement}"]
        for rw in self.rewrites:
            lines.append(f"  rewrite: {rw}")
        if self.root is not None:
            lines.append(self.root.render(1))
        lines.append(
            f"  total: {self.total_ms:.3f} ms, {self.bytes_moved} bytes moved"
            + (f", estimated: {self.estimated}" if self.estimated else "")
        )
        if self.error:
            lines.append(f"  ERROR: {self.error}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class QueryProfileStore:
    """The last N completed queries, addressable by ``query_id``.

    Ids are handed out from a monotonic counter (``q-000001`` …), so a
    seeded drill's ids are deterministic; the slow-query log carries the
    same id, correlating its entries back to full profiles here.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("profile store capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[QueryProfile] = deque(maxlen=capacity)
        self._by_id: dict[str, QueryProfile] = {}
        self._next = 0
        self._lock = threading.Lock()

    def next_query_id(self) -> str:
        with self._lock:
            self._next += 1
            return f"q-{self._next:06d}"

    def add(self, profile: QueryProfile) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                evicted = self._ring[0]
                self._by_id.pop(evicted.query_id, None)
            self._ring.append(profile)
            self._by_id[profile.query_id] = profile

    def get(self, query_id: str) -> Optional[QueryProfile]:
        with self._lock:
            return self._by_id.get(query_id)

    def profiles(self, n: Optional[int] = None) -> list[QueryProfile]:
        """Retained profiles oldest-first (the last *n* if given)."""
        with self._lock:
            out = list(self._ring)
        return out[-n:] if n is not None else out

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._by_id.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return f"<QueryProfileStore {len(self)}/{self.capacity}>"


class GaugeSampler:
    """Fixed-size rings of timestamped gauge samples, keyed by series.

    A series key is a plain string (``"grid.node3.cells"``); each holds
    the newest ``capacity`` ``(seq, ts, value)`` points.  Memory is
    capped at ``capacity`` points × the number of distinct series, and
    the series population is bounded by grids × nodes × a fixed gauge
    list, so trends survive without unbounded growth.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("sampler capacity must be >= 1")
        self.capacity = capacity
        self._series: dict[str, deque[tuple[int, float, float]]] = {}
        self._samples_taken = 0
        self._lock = threading.Lock()

    def record(self, key: str, value: float, seq: int = 0) -> None:
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                ring = self._series[key] = deque(maxlen=self.capacity)
            ring.append((seq, time.time(), float(value)))

    def note_sample(self) -> int:
        """Count one sampling pass; returns its ordinal (used as seq)."""
        with self._lock:
            self._samples_taken += 1
            return self._samples_taken

    @property
    def samples_taken(self) -> int:
        with self._lock:
            return self._samples_taken

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, key: str) -> list[tuple[int, float, float]]:
        """Retained ``(seq, ts, value)`` points for *key*, oldest-first."""
        with self._lock:
            ring = self._series.get(key)
            return list(ring) if ring is not None else []

    def latest(self, key: str) -> Optional[float]:
        with self._lock:
            ring = self._series.get(key)
            return ring[-1][2] if ring else None

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            self._samples_taken = 0

    def __repr__(self) -> str:
        return (
            f"<GaugeSampler {len(self.keys())} series, "
            f"{self.samples_taken} passes>"
        )


#: breaker states as gauge values (closed < half-open < open)
_BREAKER_LEVEL = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class FlightRecorder:
    """Event log + query profiles + gauge sampler, as one instrument.

    ``enabled`` gates events and profile capture together (the
    satellite stores stay allocated but untouched when off).  Gauge
    sampling is separately explicit — :meth:`sample` takes one pass over
    every watched grid; :meth:`start_sampling` runs passes from a
    daemon thread for long-lived services.  Grids are held through weak
    references so a recorder never keeps a torn-down grid alive.
    """

    def __init__(
        self,
        enabled: bool = True,
        event_capacity: int = 4096,
        profile_capacity: int = 256,
        sample_capacity: int = 512,
        capture_profiles: bool = True,
    ) -> None:
        self.enabled = enabled
        self.capture_profiles = capture_profiles
        self.events_log = EventLog(capacity=event_capacity)
        self.profile_store = QueryProfileStore(capacity=profile_capacity)
        self.sampler = GaugeSampler(capacity=sample_capacity)
        self._grids: dict[str, "weakref.ref[Any]"] = {}
        self._grids_lock = threading.Lock()
        self._sampling_thread: Optional[threading.Thread] = None
        self._sampling_stop = threading.Event()

    # -- events ----------------------------------------------------------------

    def emit(
        self,
        kind: str,
        node: Optional[int] = None,
        array: Optional[str] = None,
        **detail: Any,
    ) -> Optional[RecordedEvent]:
        if not self.enabled:
            return None
        return self.events_log.emit(kind, node=node, array=array, **detail)

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        since_seq: int = 0,
    ) -> list[RecordedEvent]:
        return self.events_log.events(kind=kind, node=node, since_seq=since_seq)

    def event_counts(self) -> dict[str, int]:
        return self.events_log.counts()

    # -- query profiles --------------------------------------------------------

    def next_query_id(self) -> str:
        return self.profile_store.next_query_id()

    def record_profile(self, profile: QueryProfile) -> None:
        if self.enabled:
            self.profile_store.add(profile)

    def profiles(self, n: Optional[int] = None) -> list[QueryProfile]:
        return self.profile_store.profiles(n)

    def profile(self, query_id: str) -> Optional[QueryProfile]:
        return self.profile_store.get(query_id)

    # -- gauge sampling --------------------------------------------------------

    def watch_grid(self, name: str, grid: Any) -> None:
        """Register *grid* (weakly) for gauge sampling under *name*."""
        with self._grids_lock:
            self._grids[name] = weakref.ref(grid)

    def watched_grids(self) -> dict[str, Any]:
        """Live watched grids (dead weakrefs are dropped in passing)."""
        out: dict[str, Any] = {}
        with self._grids_lock:
            for name, ref in list(self._grids.items()):
                grid = ref()
                if grid is None:
                    del self._grids[name]
                else:
                    out[name] = grid
        return out

    def sample(self) -> int:
        """Take one gauge sample of every watched grid; returns the
        number of series updated.  Safe to call from a drill loop —
        reads only in-memory state (O(nodes × arrays), no I/O, nothing
        metered)."""
        grids = self.watched_grids()
        if not grids:
            return 0
        seq = self.sampler.note_sample()
        updated = 0
        for gname, grid in grids.items():
            for node in grid.nodes:
                prefix = f"{gname}.node{node.node_id}"
                cells = 0
                if node.alive:
                    for a in grid.names():
                        try:
                            cells += node.cell_count(a)
                        except Exception:
                            continue  # partition not provisioned here yet
                wal_depth = (
                    node.wal.records_appended if node.wal is not None else 0
                )
                cache = node.storage.chunk_cache
                gauges = {
                    "alive": 1.0 if node.alive else 0.0,
                    "cells": float(cells),
                    "wal_depth": float(wal_depth),
                    "cache_bytes": float(
                        cache.bytes_cached if cache is not None else 0
                    ),
                    "breaker": _BREAKER_LEVEL.get(
                        grid.breakers[node.node_id].state, 0.0
                    ),
                }
                for metric, value in gauges.items():
                    self.sampler.record(f"{prefix}.{metric}", value, seq=seq)
                    updated += 1
            imbalance = 0.0
            for name in grid.names():
                try:
                    imbalance = max(imbalance, grid.get_array(name).imbalance())
                except Exception:
                    continue  # e.g. every replica of a chain down mid-drill
            self.sampler.record(f"{gname}.imbalance", imbalance, seq=seq)
            self.sampler.record(
                f"{gname}.alive_nodes", float(len(grid.alive_nodes())), seq=seq
            )
            updated += 2
        return updated

    @property
    def sampling(self) -> bool:
        t = self._sampling_thread
        return t is not None and t.is_alive()

    def start_sampling(self, interval_s: float = 1.0) -> None:
        """Sample every *interval_s* seconds from a daemon thread."""
        if interval_s <= 0:
            raise ValueError("sampling interval must be > 0")
        if self.sampling:
            return
        self._sampling_stop.clear()

        def loop() -> None:
            while not self._sampling_stop.wait(interval_s):
                self.sample()

        self._sampling_thread = threading.Thread(
            target=loop, name="repro-flight-sampler", daemon=True
        )
        self._sampling_thread.start()

    def stop_sampling(self) -> None:
        self._sampling_stop.set()
        t = self._sampling_thread
        if t is not None:
            t.join(timeout=5.0)
        self._sampling_thread = None

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        self.events_log.clear()
        self.profile_store.clear()
        self.sampler.clear()

    def summary(self) -> dict[str, Any]:
        """A JSON-able self-description for ``metrics_snapshot``."""
        return {
            "enabled": self.enabled,
            "events": {
                "retained": len(self.events_log),
                "emitted": self.events_log.emitted,
                "evicted": self.events_log.evicted,
                "by_kind": self.events_log.counts(),
            },
            "profiles": {
                "retained": len(self.profile_store),
                "capacity": self.profile_store.capacity,
            },
            "sampler": {
                "series": len(self.sampler.keys()),
                "passes": self.sampler.samples_taken,
                "sampling": self.sampling,
            },
        }

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"<FlightRecorder {state}: {len(self.events_log)} events, "
            f"{len(self.profile_store)} profiles>"
        )


_flight = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder every hook site emits into."""
    return _flight


def set_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Install *recorder* process-wide; returns the previous one."""
    global _flight
    old = _flight
    _flight = recorder
    return old


@contextmanager
def use_flight_recorder(recorder: FlightRecorder) -> Iterator[FlightRecorder]:
    """Activate *recorder* for the duration of the block (tests)."""
    old = set_flight_recorder(recorder)
    try:
        yield recorder
    finally:
        set_flight_recorder(old)


def emit(
    kind: str,
    node: Optional[int] = None,
    array: Optional[str] = None,
    **detail: Any,
) -> Optional[RecordedEvent]:
    """Emit one event into the process recorder (cheap no-op when off).

    This is the hook-site entry point: with the recorder disabled the
    cost is one global read and one attribute check — nothing allocates,
    so instrumented paths stay within noise of uninstrumented ones.
    """
    rec = _flight
    if not rec.enabled:
        return None
    return rec.events_log.emit(kind, node=node, array=array, **detail)
