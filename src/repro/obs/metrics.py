"""Counters, gauges and histograms, snapshotable to JSON.

One process-wide :class:`MetricsRegistry` (swap with
:func:`set_registry`) unifies the engine's accounting: the storage
manager counts bucket reads/writes and codec time, the write-ahead log
counts appends and commits, the bulk loader counts batch commits, and
the executor counts queries and their latency.  Everything lands in one
``snapshot()`` — the operational view SS-DB-style evaluation treats as a
first-class requirement.

Instruments are get-or-create by name, so call sites stay one-liners::

    get_registry().counter("wal.appends").inc()
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing count (thread-safe).

    A registry-created counter shares the *registry's* lock, so one
    :meth:`MetricsRegistry.snapshot` call reads every instrument under
    a single critical section (mutually consistent values); a
    free-standing counter gets its own lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(
        self, name: str, lock: "Optional[threading.RLock]" = None
    ) -> None:
        self.name = name
        self.value: float = 0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A point-in-time value (last write wins; thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(
        self, name: str, lock: "Optional[threading.RLock]" = None
    ) -> None:
        self.name = name
        self.value: float = 0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Distribution summary: count/sum/min/max plus bounded samples.

    Sampling policy (bounded memory): the **first** ``sample_cap``
    observations are kept verbatim and are the only basis for
    :meth:`percentile` — past the cap new values update the scalar
    summary (``count``/``sum``/``mean`` and the *exact* ``min``/``max``)
    but are not sampled, so quantiles describe the first ``sample_cap``
    observations only.  This keeps a hot path free to observe millions
    of values in constant memory; first-K is deterministic (no RNG on
    the query path) and honest for steady-state latency distributions,
    at the cost of under-weighting late drift — callers who care about
    drift should read ``mean``/``max``, which never stop updating.
    ``p0``/``p100`` (``percentile(0.0)`` / ``percentile(1.0)``) are
    served from the exact scalar ``min``/``max``, so the extremes stay
    correct even after the cap is exceeded.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "sample_cap", "_samples",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        sample_cap: int = 512,
        lock: "Optional[threading.RLock]" = None,
    ) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.sample_cap = sample_cap
        self._samples: list[float] = []
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self.sample_cap:
                self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 1) from retained samples.

        ``q`` outside [0, 1] raises ``ValueError``.  An empty histogram
        returns 0.0 for any q (there is no distribution to describe).
        ``q == 0`` and ``q == 1`` return the *exact* observed min/max —
        tracked as scalars, they stay correct past ``sample_cap``; the
        interior quantiles come from the first-``sample_cap`` samples
        (see the class docstring for the sampling policy).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile needs 0 <= q <= 1, got {q!r}")
        with self._lock:
            if self.count == 0:
                return 0.0
            if q == 0.0:
                return self.min if self.min is not None else 0.0
            if q == 1.0:
                return self.max if self.max is not None else 0.0
            if not self._samples:  # pragma: no cover - defensive
                return self.mean
            ordered = sorted(self._samples)
            idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
            return ordered[idx]

    def summary(self) -> dict[str, float]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
                "mean": self.mean,
                "p50": self.percentile(0.50),
                "p95": self.percentile(0.95),
            }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class MetricsRegistry:
    """A named catalog of instruments with a JSON-able snapshot.

    Every instrument the registry creates shares the registry's (reentrant)
    lock, so :meth:`snapshot` is **atomic**: it reads all counters, gauges
    and histogram summaries inside one critical section, and no update can
    interleave mid-snapshot — two counters bumped together by one code
    path (say ``cache.hit`` and per-node ``cells_scanned``) can never be
    observed torn under parallel queries.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    # -- get-or-create -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name, self._lock))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name, self._lock))
        return g

    def histogram(self, name: str, sample_cap: int = 512) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name,
                    Histogram(name, sample_cap=sample_cap, lock=self._lock),
                )
        return h

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view, safe for ``json.dumps``.

        Taken under the registry-wide lock (shared by every instrument),
        so the values are mutually consistent — a single point-in-time
        cut across all counters, gauges and histograms.
        """
        with self._lock:
            return {
                "counters": {
                    n: c.value for n, c in sorted(self._counters.items())
                },
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry the engine's components record into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the process-wide one; returns the previous."""
    global _registry
    old = _registry
    _registry = registry
    return old
