"""Counters, gauges and histograms, snapshotable to JSON.

One process-wide :class:`MetricsRegistry` (swap with
:func:`set_registry`) unifies the engine's accounting: the storage
manager counts bucket reads/writes and codec time, the write-ahead log
counts appends and commits, the bulk loader counts batch commits, and
the executor counts queries and their latency.  Everything lands in one
``snapshot()`` — the operational view SS-DB-style evaluation treats as a
first-class requirement.

Instruments are get-or-create by name, so call sites stay one-liners::

    get_registry().counter("wal.appends").inc()
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Distribution summary: count/sum/min/max plus bounded samples.

    The first ``sample_cap`` observations are kept verbatim for quantile
    estimates; past the cap only the scalar summary keeps updating, so a
    hot path can observe millions of values without unbounded memory.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "sample_cap", "_samples",
        "_lock",
    )

    def __init__(self, name: str, sample_cap: int = 512) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.sample_cap = sample_cap
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self.sample_cap:
                self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (0..1) from the retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[idx]

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class MetricsRegistry:
    """A named catalog of instruments with a JSON-able snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- get-or-create -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str, sample_cap: int = 512) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name, Histogram(name, sample_cap=sample_cap)
                )
        return h

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view, safe for ``json.dumps``."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry the engine's components record into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the process-wide one; returns the previous."""
    global _registry
    old = _registry
    _registry = registry
    return old
