"""Hierarchical tracing spans for the query/grid/storage layers.

A :class:`Span` is one timed region of work: it has a name, a monotonic
start/end (``time.perf_counter``), a parent link, free-form attributes,
additive *counters* (``span.add("bytes_moved", n)``) and set-valued
*marks* (``span.mark("nodes", site)`` — deduplicating, for "which nodes
did this touch").  Spans nest through a per-thread stack managed by the
active :class:`SpanRecorder`.

The active recorder is **per thread** (swap it with
:func:`set_recorder` or the :func:`use` context manager): two threads
executing statements concurrently each trace into their own recorder,
so one query's profile tree can never absorb — or truncate — another's.
Threads that never installed one fall back to the shared process
default, a :class:`NoopRecorder` whose :meth:`~NoopRecorder.span` hands
back a shared, stateless null span — the instrumented hot paths then
cost one function call and allocate nothing.  The partition scheduler
captures the coordinator's recorder at fan-out time and installs it
inside each worker (alongside :func:`adopt`), so parallel partition
reads keep metering into the owning query's spans.  Instrumentation
that would do real work to *compute* an annotation (counting cells,
say) should guard on :func:`enabled` first.

Exception safety is part of the contract: a span whose body raises is
still closed, records the error on itself, and leaves the recorder's
stack consistent, so one failing query never poisons the next trace.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from threading import get_ident as _get_ident
from typing import Any, Iterator, Optional

__all__ = [
    "Span",
    "SpanRecorder",
    "NoopRecorder",
    "span",
    "current_span",
    "add_current",
    "add_current_pair",
    "mark_current",
    "annotate_current",
    "adopt",
    "enabled",
    "get_recorder",
    "set_recorder",
    "use",
]


class Span:
    """One timed, counted region of work in a trace tree.

    Annotation is thread-safe: the parallel partition scheduler lets
    worker threads :func:`adopt` the coordinator's open span, so several
    workers may accumulate into the same counters concurrently.
    """

    __slots__ = (
        "name", "attrs", "_counters_mt", "marks", "parent", "children",
        "error", "t_start", "t_end", "_lock",
    )

    def __init__(
        self,
        name: str,
        parent: "Optional[Span]" = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.parent = parent
        self.children: list[Span] = []
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        # Counters are sharded per writing thread so the hot accumulate
        # path (hundreds of calls per traced query) needs no lock: each
        # thread mutates only its own inner dict, and readers merge.
        self._counters_mt: dict[int, dict[str, float]] = {}
        self.marks: dict[str, set] = {}
        self.error: Optional[str] = None
        self._lock = threading.Lock()
        self.t_start = time.perf_counter()
        self.t_end: Optional[float] = None

    # -- annotation -------------------------------------------------------------

    def add(self, key: str, n: float = 1) -> None:
        """Accumulate *n* into the additive counter *key*."""
        shards = self._counters_mt
        mine = shards.get(_get_ident())
        if mine is None:
            mine = shards.setdefault(_get_ident(), {})
        mine[key] = mine.get(key, 0) + n

    @property
    def counters(self) -> dict[str, float]:
        """Merged view of the additive counters (read path only)."""
        shards = list(self._counters_mt.values())
        if len(shards) == 1:
            return dict(shards[0])
        merged: dict[str, float] = {}
        for shard in shards:
            for key, n in shard.items():
                merged[key] = merged.get(key, 0) + n
        return merged

    def mark(self, key: str, value: Any) -> None:
        """Add *value* to the deduplicating mark set *key*."""
        with self._lock:
            bucket = self.marks.get(key)
            if bucket is None:
                bucket = self.marks[key] = set()
            bucket.add(value)

    def annotate(self, **attrs: Any) -> None:
        with self._lock:
            self.attrs.update(attrs)

    # -- lifecycle --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.t_end is not None

    def close(self, error: Optional[str] = None) -> None:
        if self.t_end is None:
            self.t_end = time.perf_counter()
        if error is not None:
            self.error = error

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds (up to now if still open)."""
        end = self.t_end if self.t_end is not None else time.perf_counter()
        return (end - self.t_start) * 1e3

    # -- traversal --------------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Optional[Span]":
        """First descendant (or self) with *name*."""
        for sp in self.walk():
            if sp.name == name:
                return sp
        return None

    def total(self, key: str) -> float:
        """Sum of counter *key* over this span and all descendants."""
        return sum(sp.counters.get(key, 0) for sp in self.walk())

    def render(self, indent: int = 0) -> str:
        """Human-readable trace tree (for logs and debugging)."""
        pad = "  " * indent
        bits = [f"{pad}{self.name}  {self.duration_ms:.3f} ms"]
        if self.counters:
            stats = " ".join(
                f"{k}={v:g}" for k, v in sorted(self.counters.items())
            )
            bits[0] += f"  [{stats}]"
        if self.error is not None:
            bits[0] += f"  ERROR: {self.error}"
        for child in self.children:
            bits.append(child.render(indent + 1))
        return "\n".join(bits)

    def __repr__(self) -> str:
        state = f"{self.duration_ms:.3f} ms" if self.closed else "open"
        return f"<Span {self.name!r} {state} {len(self.children)} children>"


class _NullSpan:
    """A shared, stateless stand-in: context manager and span in one."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def add(self, key: str, n: float = 1) -> None:
        pass

    def mark(self, key: str, value: Any) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass


#: The singleton no-op span; identity-comparable in tests.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens/closes one recorded span."""

    __slots__ = ("recorder", "name", "attrs", "span")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        stack = self.recorder._stack()
        parent = stack[-1] if stack else None
        sp = Span(self.name, parent=parent, attrs=self.attrs)
        if parent is None:
            self.recorder.roots.append(sp)
        else:
            parent.children.append(sp)
        stack.append(sp)
        self.span = sp
        return sp

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        sp = self.span
        stack = self.recorder._stack()
        # Pop robustly: an exception that skipped inner __exit__s must not
        # leave the stack pointing at a dead span.
        if stack and stack[-1] is sp:
            stack.pop()
        else:  # pragma: no cover - defensive
            try:
                stack.remove(sp)
            except ValueError:
                pass
        assert sp is not None
        sp.close(error=None if exc is None else f"{exc_type.__name__}: {exc}")
        return False


class SpanRecorder:
    """Records a forest of span trees; one nesting stack per thread."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def clear(self) -> None:
        self.roots.clear()
        self._local = threading.local()

    def render(self) -> str:
        return "\n".join(root.render() for root in self.roots)


class NoopRecorder:
    """The default recorder: spans are the shared null span, nothing is
    kept, nothing is allocated."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def clear(self) -> None:
        pass


#: Fallback for threads that never installed a recorder: trace nothing.
_default_recorder: NoopRecorder = NoopRecorder()
_active = threading.local()


def get_recorder() -> "SpanRecorder | NoopRecorder":
    """This thread's active recorder (the no-op default if none set)."""
    rec = getattr(_active, "recorder", None)
    return rec if rec is not None else _default_recorder


def set_recorder(
    recorder: "SpanRecorder | NoopRecorder",
) -> "SpanRecorder | NoopRecorder":
    """Install *recorder* for THIS thread; returns the thread's previous.

    Per-thread scoping is what keeps concurrent statements' profile
    trees disjoint: a service thread swapping recorders around its query
    cannot disable (or adopt) the tracing of a query running on another
    thread.  Worker threads spawned mid-query get the coordinator's
    recorder installed by the partition scheduler, not ambiently.
    """
    old = getattr(_active, "recorder", None)
    _active.recorder = recorder
    return old if old is not None else _default_recorder


@contextmanager
def use(recorder: "SpanRecorder | NoopRecorder") -> Iterator["SpanRecorder | NoopRecorder"]:
    """Activate *recorder* for the duration of the block."""
    old = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(old)


def enabled() -> bool:
    """True when the active recorder actually records.

    Instrumentation whose *annotation itself* costs real work (counting
    cells, hashing) should check this before computing.
    """
    return get_recorder().enabled


def span(name: str, **attrs: Any):
    """Open a span on the active recorder (no-op if tracing is off)."""
    return get_recorder().span(name, **attrs)


def current_span() -> Optional[Span]:
    return get_recorder().current()


def add_current(key: str, n: float = 1) -> None:
    """Accumulate into the innermost open span, if any (cheap when off).

    This is the hottest tracing entry point (per-chunk/per-transfer call
    sites), so the enabled path is inlined: thread-local stack lookup
    plus one lock-free write into the span's per-thread counter shard.
    """
    rec = getattr(_active, "recorder", None) or _default_recorder
    if rec.enabled:
        stack = getattr(rec._local, "stack", None)
        if stack:
            shards = stack[-1]._counters_mt
            ident = _get_ident()
            mine = shards.get(ident)
            if mine is None:
                mine = shards.setdefault(ident, {})
            mine[key] = mine.get(key, 0) + n


def add_current_pair(key1: str, n1: float, key2: str, n2: float) -> None:
    """Accumulate two counters with one stack/shard lookup.

    The transfer-metering path records ``bytes_moved`` and ``transfers``
    together for every gather; fusing them halves the per-transfer
    tracing cost, which is what keeps always-on query-profile capture
    inside its latency budget (E22).
    """
    rec = getattr(_active, "recorder", None) or _default_recorder
    if rec.enabled:
        stack = getattr(rec._local, "stack", None)
        if stack:
            shards = stack[-1]._counters_mt
            ident = _get_ident()
            mine = shards.get(ident)
            if mine is None:
                mine = shards.setdefault(ident, {})
            mine[key1] = mine.get(key1, 0) + n1
            mine[key2] = mine.get(key2, 0) + n2


def mark_current(key: str, value: Any) -> None:
    rec = get_recorder()
    if rec.enabled:
        stack = rec._stack()
        if stack:
            stack[-1].mark(key, value)


def annotate_current(**attrs: Any) -> None:
    rec = get_recorder()
    if rec.enabled:
        stack = rec._stack()
        if stack:
            stack[-1].annotate(**attrs)


@contextmanager
def adopt(span: Optional[Span]) -> Iterator[None]:
    """Install *span* as this thread's innermost open span for the block.

    The partition scheduler captures the coordinator's current span at
    fan-out time and adopts it inside each worker thread, so per-cell
    instrumentation (``add_current``/``mark_current``, ledger metering)
    keeps landing on the operator span that owns the work — the explain
    report's bytes-moved reconciliation survives parallel execution.
    The span is *not* closed on exit; only the thread-local stack entry
    is removed.
    """
    rec = get_recorder()
    if span is None or not rec.enabled:
        yield
        return
    stack = rec._stack()
    stack.append(span)
    try:
        yield
    finally:
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - defensive
            try:
                stack.remove(span)
            except ValueError:
                pass
