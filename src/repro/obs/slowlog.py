"""A bounded slow-query log with a configurable threshold.

Every executed statement is offered to the log with its wall time and
the trace counters that were gathered while it ran; statements at or
above ``threshold_ms`` are kept (newest last) in a bounded deque, so a
long-running service can always answer "what has been slow lately"
without unbounded memory.

Entries carry the flight recorder's ``query_id`` when one was assigned,
so a slowlog line correlates 1:1 with its full
:class:`~repro.obs.recorder.QueryProfile` — "this was slow" links
straight to "and here is its operator tree".

Thread safety: :meth:`SlowQueryLog.observe` is called from every
query's tail, and under ``parallelism > 1`` several statements can
finish concurrently; the observed counter and the deque append happen
under one lock so the denominator and the entries never drift apart.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SlowQuery", "SlowQueryLog"]


@dataclass(frozen=True)
class SlowQuery:
    """One logged slow statement."""

    statement: str
    elapsed_ms: float
    timestamp: float
    counters: dict[str, Any] = field(default_factory=dict)
    #: flight-recorder correlation id (``db.profile(query_id)`` replays
    #: the full operator tree); None when profiling was off
    query_id: Optional[str] = None

    def __str__(self) -> str:
        tag = f" {self.query_id}" if self.query_id else ""
        return f"[{self.elapsed_ms:.1f} ms]{tag} {self.statement}"


class SlowQueryLog:
    """Keeps the most recent statements slower than a threshold."""

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 128) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        #: statements offered (slow or not) — the denominator for rates
        self.observed = 0
        # observe() runs at every query's tail; under parallelism > 1
        # the counter bump and the append must be one atomic step.
        self._lock = threading.Lock()

    def observe(
        self,
        statement: str,
        elapsed_ms: float,
        counters: Optional[dict] = None,
        query_id: Optional[str] = None,
    ) -> Optional[SlowQuery]:
        """Offer one statement; returns the entry if it was slow enough."""
        entry: Optional[SlowQuery] = None
        if elapsed_ms >= self.threshold_ms:
            entry = SlowQuery(
                statement=statement,
                elapsed_ms=elapsed_ms,
                timestamp=time.time(),
                counters=dict(counters) if counters else {},
                query_id=query_id,
            )
        with self._lock:
            self.observed += 1
            if entry is not None:
                self._entries.append(entry)
        return entry

    def entries(self) -> list[SlowQuery]:
        """Logged slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def find(self, query_id: str) -> Optional[SlowQuery]:
        """The logged entry carrying *query_id*, if still retained."""
        with self._lock:
            for entry in self._entries:
                if entry.query_id == query_id:
                    return entry
        return None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.observed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<SlowQueryLog >={self.threshold_ms:g} ms: "
            f"{len(self)}/{self.observed} kept>"
        )
