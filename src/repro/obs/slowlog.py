"""A bounded slow-query log with a configurable threshold.

Every executed statement is offered to the log with its wall time and
the trace counters that were gathered while it ran; statements at or
above ``threshold_ms`` are kept (newest last) in a bounded deque, so a
long-running service can always answer "what has been slow lately"
without unbounded memory.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SlowQuery", "SlowQueryLog"]


@dataclass(frozen=True)
class SlowQuery:
    """One logged slow statement."""

    statement: str
    elapsed_ms: float
    timestamp: float
    counters: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.elapsed_ms:.1f} ms] {self.statement}"


class SlowQueryLog:
    """Keeps the most recent statements slower than a threshold."""

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 128) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        #: statements offered (slow or not) — the denominator for rates
        self.observed = 0

    def observe(
        self,
        statement: str,
        elapsed_ms: float,
        counters: Optional[dict] = None,
    ) -> Optional[SlowQuery]:
        """Offer one statement; returns the entry if it was slow enough."""
        self.observed += 1
        if elapsed_ms < self.threshold_ms:
            return None
        entry = SlowQuery(
            statement=statement,
            elapsed_ms=elapsed_ms,
            timestamp=time.time(),
            counters=dict(counters) if counters else {},
        )
        self._entries.append(entry)
        return entry

    def entries(self) -> list[SlowQuery]:
        """Logged slow queries, oldest first."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.observed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<SlowQueryLog >={self.threshold_ms:g} ms: "
            f"{len(self._entries)}/{self.observed} kept>"
        )
