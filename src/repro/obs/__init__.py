"""Observability: tracing spans, unified metrics, EXPLAIN ANALYZE.

The paper's grid design (Section 2.8) assumes operators can be monitored
and repartitioned "if the average query ... touches more than one node".
This package supplies the monitoring half of that contract:

* :mod:`repro.obs.tracing` — hierarchical spans with monotonic timings,
  parent links and per-span counters, threaded through the query layer,
  the grid and the storage manager.  The default recorder is a no-op
  that allocates nothing, so an untraced query pays (almost) nothing.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters / gauges / histograms, snapshotable to JSON.
* :mod:`repro.obs.slowlog` — a bounded slow-query log with a
  configurable threshold.
* :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE``-style reports: the plan
  tree annotated with actual times, cells scanned, chunks touched,
  nodes visited and bytes moved per operator, reconciling with the
  grid's movement ledger.
* :mod:`repro.obs.recorder` — the **flight recorder**: a bounded ring
  of typed operational events (kills, rebuilds, breaker flips,
  rebalance lifecycle, WAL tears …), the last-N
  :class:`QueryProfile` store, and a fixed-size per-node gauge
  sampler — the continuous record that outlives any single call.
* :mod:`repro.obs.health` — events + gauges rolled into per-node and
  cluster ``ok/degraded/rebalancing/critical`` status with named
  findings.
* :mod:`repro.obs.export` — Prometheus text exposition, JSONL event
  dumps, and the one-screen ``db.status()`` report.
"""

from .explain import ExplainReport, OperatorProfile, build_report
from .export import (
    events_jsonl,
    prometheus_text,
    status_text,
    write_events_jsonl,
)
from .health import HealthModel, HealthReport, NodeHealth
from .recorder import (
    EventLog,
    FlightRecorder,
    GaugeSampler,
    QueryProfile,
    QueryProfileStore,
    RecordedEvent,
    emit,
    get_flight_recorder,
    set_flight_recorder,
    use_flight_recorder,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .slowlog import SlowQuery, SlowQueryLog
from .tracing import (
    NoopRecorder,
    Span,
    SpanRecorder,
    add_current,
    annotate_current,
    current_span,
    enabled,
    get_recorder,
    mark_current,
    set_recorder,
    span,
    use,
)

__all__ = [
    "ExplainReport",
    "OperatorProfile",
    "build_report",
    "events_jsonl",
    "prometheus_text",
    "status_text",
    "write_events_jsonl",
    "HealthModel",
    "HealthReport",
    "NodeHealth",
    "EventLog",
    "FlightRecorder",
    "GaugeSampler",
    "QueryProfile",
    "QueryProfileStore",
    "RecordedEvent",
    "emit",
    "get_flight_recorder",
    "set_flight_recorder",
    "use_flight_recorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "SlowQuery",
    "SlowQueryLog",
    "NoopRecorder",
    "Span",
    "SpanRecorder",
    "add_current",
    "annotate_current",
    "current_span",
    "enabled",
    "get_recorder",
    "mark_current",
    "set_recorder",
    "span",
    "use",
]
