"""Observability: tracing spans, unified metrics, EXPLAIN ANALYZE.

The paper's grid design (Section 2.8) assumes operators can be monitored
and repartitioned "if the average query ... touches more than one node".
This package supplies the monitoring half of that contract:

* :mod:`repro.obs.tracing` — hierarchical spans with monotonic timings,
  parent links and per-span counters, threaded through the query layer,
  the grid and the storage manager.  The default recorder is a no-op
  that allocates nothing, so an untraced query pays (almost) nothing.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters / gauges / histograms, snapshotable to JSON.
* :mod:`repro.obs.slowlog` — a bounded slow-query log with a
  configurable threshold.
* :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE``-style reports: the plan
  tree annotated with actual times, cells scanned, chunks touched,
  nodes visited and bytes moved per operator, reconciling with the
  grid's movement ledger.
"""

from .explain import ExplainReport, OperatorProfile, build_report
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .slowlog import SlowQuery, SlowQueryLog
from .tracing import (
    NoopRecorder,
    Span,
    SpanRecorder,
    add_current,
    annotate_current,
    current_span,
    enabled,
    get_recorder,
    mark_current,
    set_recorder,
    span,
    use,
)

__all__ = [
    "ExplainReport",
    "OperatorProfile",
    "build_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "SlowQuery",
    "SlowQueryLog",
    "NoopRecorder",
    "Span",
    "SpanRecorder",
    "add_current",
    "annotate_current",
    "current_span",
    "enabled",
    "get_recorder",
    "mark_current",
    "set_recorder",
    "span",
    "use",
]
