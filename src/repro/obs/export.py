"""Exporters: Prometheus text exposition, JSONL event dumps, status.

Three ways out of the flight recorder and the metrics registry:

* :func:`prometheus_text` — the unified ``metrics_snapshot`` dict
  rendered in the Prometheus text exposition format (``# TYPE`` lines,
  ``_total`` counter suffixes, per-node series labelled
  ``{grid="...",node="..."}``), so a real scrape target is one HTTP
  handler away.
* :func:`events_jsonl` / :func:`write_events_jsonl` — the event ring as
  one JSON object per line, the interchange format for offline drill
  reconciliation.
* :func:`status_text` — the one-screen ``db.status()`` report: health,
  recent events, recent query profiles and the headline counters.

Everything here is a pure function of already-collected state — an
export never meters, samples, or mutates anything.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Iterable, Optional

from .health import HealthReport
from .recorder import FlightRecorder, RecordedEvent

__all__ = [
    "prometheus_text",
    "events_jsonl",
    "write_events_jsonl",
    "status_text",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name from a dotted instrument name."""
    return f"{prefix}_{_NAME_OK.sub('_', name)}"


def _fmt(value: Any) -> str:
    try:
        v = float(value)
    except (TypeError, ValueError):
        return "0"
    return repr(int(v)) if v == int(v) else repr(v)


def _labels(**labels: Any) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def prometheus_text(snapshot: dict[str, Any], prefix: str = "repro") -> str:
    """Render one ``metrics_snapshot()`` dict as Prometheus exposition.

    Registry counters become ``<prefix>_<name>_total``, gauges and
    histogram summaries keep their names, and per-grid node accounting
    is emitted as labelled series.  The output ends with a newline, as
    the exposition format requires.
    """
    lines: list[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for q in ("p50", "p95"):
            if q in summary:
                quantile = {"p50": "0.5", "p95": "0.95"}[q]
                lines.append(
                    f"{metric}{_labels(quantile=quantile)} {_fmt(summary[q])}"
                )
        lines.append(f"{metric}_sum {_fmt(summary.get('sum', 0))}")
        lines.append(f"{metric}_count {_fmt(summary.get('count', 0))}")

    for gname, grid in snapshot.get("grids", {}).items():
        ledger = grid.get("ledger", {})
        metric = _metric_name("grid.ledger.bytes", prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric}{_labels(grid=gname)} {_fmt(ledger.get('total_bytes', 0))}"
        )
        for reason, nbytes in sorted(ledger.get("by_reason", {}).items()):
            lines.append(
                f"{metric}{_labels(grid=gname, reason=reason)} {_fmt(nbytes)}"
            )
        for node in grid.get("nodes", []):
            nid = node.get("node_id")
            up = _metric_name("grid.node.alive", prefix)
            lines.append(
                f"{up}{_labels(grid=gname, node=nid)} "
                f"{_fmt(1 if node.get('alive') else 0)}"
            )
            for counter in (
                "cells_stored", "cells_scanned", "bytes_received",
                "bytes_sent", "failovers_served", "read_retries",
            ):
                if counter in node:
                    metric = _metric_name(f"grid.node.{counter}", prefix)
                    metric += "_total"
                    lines.append(
                        f"{metric}{_labels(grid=gname, node=nid)} "
                        f"{_fmt(node[counter])}"
                    )
        resilience = grid.get("resilience", {})
        for counter in (
            "failovers", "hedges", "hedge_wins", "breaker_skips",
            "deadline_misses", "dual_reads", "breaker_transitions",
        ):
            if counter in resilience:
                metric = _metric_name(f"grid.resilience.{counter}", prefix)
                metric += "_total"
                lines.append(
                    f"{metric}{_labels(grid=gname)} {_fmt(resilience[counter])}"
                )

    recorder = snapshot.get("flight_recorder")
    if recorder:
        metric = _metric_name("flight.events", prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(recorder['events']['emitted'])}")
        for kind, count in sorted(recorder["events"]["by_kind"].items()):
            lines.append(f"{metric}{_labels(kind=kind)} {_fmt(count)}")
        metric = _metric_name("flight.profiles_retained", prefix)
        lines.append(f"{metric} {_fmt(recorder['profiles']['retained'])}")

    return "\n".join(lines) + "\n"


def events_jsonl(events: Iterable[RecordedEvent]) -> str:
    """The events as JSON Lines (one object per line, oldest first)."""
    return "".join(e.to_json() + "\n" for e in events)


def write_events_jsonl(
    events: Iterable[RecordedEvent], path: "str | Path"
) -> int:
    """Dump *events* to *path* as JSONL; returns the number written."""
    events = list(events)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(events_jsonl(events), encoding="utf-8")
    return len(events)


def _truncate(text: str, width: int = 56) -> str:
    text = " ".join(text.split())
    return text if len(text) <= width else text[: width - 1] + "…"


def status_text(
    health: HealthReport,
    recorder: Optional[FlightRecorder] = None,
    snapshot: Optional[dict[str, Any]] = None,
    events_tail: int = 8,
    profiles_tail: int = 5,
) -> str:
    """The one-screen terminal report behind ``db.status()``."""
    lines = ["== repro status ==", health.render()]

    if snapshot is not None:
        counters = snapshot.get("counters", {})
        hist = snapshot.get("histograms", {}).get("query.latency_ms")
        bits = [f"queries={int(counters.get('query.statements', 0))}"]
        if hist:
            bits.append(f"p50={hist['p50']:.2f}ms")
            bits.append(f"p95={hist['p95']:.2f}ms")
        slow = snapshot.get("slow_query_log")
        if slow:
            bits.append(f"slow={slow.get('logged', 0)}")
        total_moved = sum(
            g.get("ledger", {}).get("total_bytes", 0)
            for g in snapshot.get("grids", {}).values()
        )
        bits.append(f"moved={total_moved}B")
        lines.append("-- load: " + "  ".join(bits))

    if recorder is not None:
        summary = recorder.summary()
        lines.append(
            f"-- flight recorder: {summary['events']['emitted']} events "
            f"({summary['events']['retained']} retained), "
            f"{summary['profiles']['retained']} profiles, "
            f"{summary['sampler']['passes']} sample passes"
        )
        tail = recorder.events()[-events_tail:]
        if tail:
            lines.append(f"-- recent events (last {len(tail)}):")
            for event in tail:
                lines.append(f"   {event}")
        profiles = recorder.profiles(profiles_tail)
        if profiles:
            lines.append(f"-- recent queries (last {len(profiles)}):")
            for prof in profiles:
                extras = []
                ratio = prof.cache_hit_ratio
                if ratio is not None:
                    extras.append(f"cache={ratio:.2f}")
                if prof.failovers:
                    extras.append(f"failovers={prof.failovers}")
                if prof.error:
                    extras.append("ERROR")
                suffix = ("  [" + " ".join(extras) + "]") if extras else ""
                lines.append(
                    f"   {prof.query_id}  {prof.total_ms:8.2f} ms  "
                    f"{_truncate(prof.statement)}{suffix}"
                )
    return "\n".join(lines)
