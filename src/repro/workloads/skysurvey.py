"""An LSST-style synthetic sky survey (Sections 2.7, 2.13).

The survey scans the whole sky once per epoch — the access pattern for
which "dividing the co-ordinate system for the sky into fixed partitions
will probably work well" — and produces point-source observations drawn
from a power-law flux distribution over a clustered object population.
Positional measurement error is attached per observation, feeding the
PanSTARRS-style boundary-replication machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..core.schema import ArraySchema, define_array
from ..storage.loader import LoadRecord

__all__ = ["SurveyObservation", "SkySurvey", "SKY_SCHEMA"]

#: Observations: flux plus per-observation positional error estimate.
SKY_SCHEMA = define_array(
    "SkyObservations",
    values={"flux": "float", "pos_error": "float"},
    dims=["x", "y", "epoch"],
)


@dataclass(frozen=True)
class SurveyObservation:
    """One detected source in one epoch."""

    x: float           # measured position (sub-cell precision)
    y: float
    epoch: int
    flux: float
    pos_error: float

    @property
    def cell(self) -> tuple[int, int, int]:
        return (int(np.floor(self.x)), int(np.floor(self.y)), self.epoch)


class SkySurvey:
    """Generator of epoch-by-epoch sky observations.

    Parameters
    ----------
    sky_size:
        The sky is a ``sky_size x sky_size`` cell grid.
    n_objects:
        Fixed objects on the sky, placed in Gaussian clusters (galaxies).
    flux_alpha:
        Power-law index of the flux distribution (brighter = rarer).
    detection_rate:
        Fraction of objects detected per epoch (weather, cadence).
    seed:
        Deterministic generator seed.
    """

    def __init__(
        self,
        sky_size: int = 256,
        n_objects: int = 2000,
        n_clusters: int = 12,
        flux_alpha: float = 1.8,
        detection_rate: float = 0.7,
        seed: int = 0,
    ) -> None:
        self.sky_size = sky_size
        self.rng = np.random.default_rng(seed)
        self.flux_alpha = flux_alpha
        self.detection_rate = detection_rate
        # Clustered object population.
        centers = self.rng.uniform(1, sky_size, size=(n_clusters, 2))
        assignment = self.rng.integers(0, n_clusters, size=n_objects)
        spread = sky_size / 16
        positions = centers[assignment] + self.rng.normal(
            0, spread, size=(n_objects, 2)
        )
        self.positions = np.clip(positions, 1.0, float(sky_size) - 0.001)
        # Pareto-style fluxes.
        self.fluxes = (self.rng.pareto(flux_alpha, size=n_objects) + 1.0) * 10.0

    def epoch_observations(self, epoch: int) -> Iterator[SurveyObservation]:
        """One full-sky scan: every object detected with some probability,
        its position measured with flux-dependent error."""
        detected = self.rng.random(len(self.positions)) < self.detection_rate
        for i in np.flatnonzero(detected):
            x, y = self.positions[i]
            # Fainter objects have larger positional error.
            err = float(np.clip(2.0 / np.sqrt(self.fluxes[i]), 0.05, 1.5))
            mx = float(np.clip(x + self.rng.normal(0, err), 1.0, self.sky_size - 0.001))
            my = float(np.clip(y + self.rng.normal(0, err), 1.0, self.sky_size - 0.001))
            yield SurveyObservation(
                x=mx, y=my, epoch=epoch,
                flux=float(self.fluxes[i] * self.rng.normal(1.0, 0.05)),
                pos_error=err,
            )

    def load_records(self, epochs: int) -> Iterator[LoadRecord]:
        """The bulk-load stream: epoch (time) is the dominant dimension."""
        for epoch in range(1, epochs + 1):
            for obs in self.epoch_observations(epoch):
                cx, cy, e = obs.cell
                yield LoadRecord((cx, cy, e), (obs.flux, obs.pos_error))

    def cell_sample(self, epochs: int = 1) -> list[tuple[int, int, int]]:
        """Just the cell coordinates (for the designer's data sample)."""
        return [obs.cell for e in range(1, epochs + 1)
                for obs in self.epoch_observations(e)]
