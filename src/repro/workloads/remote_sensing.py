"""A synthetic satellite imaging instrument (Sections 2.10, 2.11).

Each *pass* scans the full grid — "the entire earth is scanned
periodically" — producing per-cell radiance counts, a cloud fraction, and
the satellite's off-nadir (zenith) angle at that cell.  Multiple passes
over the same scene feed the compositing step whose algorithm choice
("least cloud cover" vs "closest to directly overhead") is the paper's
named-version scenario.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..core.array import SciArray
from ..cooking.pipeline import PASS_SCHEMA
from ..cooking.raw import RAW_SCHEMA

__all__ = ["SatelliteInstrument"]


class SatelliteInstrument:
    """Deterministic multi-pass imagery generator.

    The underlying scene is a smooth 2-D field (terrain); each pass
    overlays moving cloud banks and a pass-specific viewing geometry.
    """

    def __init__(self, width: int = 64, height: int = 64, seed: int = 0) -> None:
        self.width = width
        self.height = height
        self.rng = np.random.default_rng(seed)
        # Smooth terrain: sum of a few random low-frequency sinusoids.
        x = np.arange(width)[:, None] / width
        y = np.arange(height)[None, :] / height
        scene = np.zeros((width, height))
        for _ in range(4):
            fx, fy = self.rng.uniform(0.5, 3.0, size=2)
            px, py = self.rng.uniform(0, 2 * np.pi, size=2)
            scene += self.rng.uniform(0.3, 1.0) * np.sin(
                2 * np.pi * fx * x + px
            ) * np.cos(2 * np.pi * fy * y + py)
        self.scene = 50.0 + 20.0 * scene  # ground-truth radiance

    def cloud_field(self, pass_index: int) -> np.ndarray:
        """Cloud fraction in [0, 1]: banks drifting with the pass index."""
        x = np.arange(self.width)[:, None] / self.width
        y = np.arange(self.height)[None, :] / self.height
        drift = 0.37 * pass_index
        banks = np.sin(2 * np.pi * (2.0 * x + drift)) * np.cos(
            2 * np.pi * (1.5 * y - drift / 2)
        )
        noise = self.rng.normal(0, 0.15, size=(self.width, self.height))
        return np.clip(0.5 * (banks + 1) * 0.8 + noise, 0.0, 1.0)

    def zenith_field(self, pass_index: int) -> np.ndarray:
        """Off-nadir angle (degrees): the ground track shifts per pass."""
        track_x = (0.2 + 0.15 * pass_index) % 1.0 * self.width
        x = np.arange(self.width)[:, None]
        angle = np.abs(x - track_x) / self.width * 60.0
        return np.broadcast_to(angle, (self.width, self.height)).copy()

    def acquire_pass(self, pass_index: int, name: Optional[str] = None) -> SciArray:
        """One full scan as a SatellitePass array (value, cloud, zenith).

        Cloud attenuates the measured value and adds noise — the reason a
        compositor prefers cloud-free observations.
        """
        cloud = self.cloud_field(pass_index)
        zenith = self.zenith_field(pass_index)
        measured = (
            self.scene * (1.0 - 0.7 * cloud)
            + self.rng.normal(0, 0.5, size=self.scene.shape)
        )
        return SciArray.from_numpy(
            PASS_SCHEMA,
            {"value": measured, "cloud": cloud, "zenith": zenith},
            name=name or f"pass_{pass_index}",
        )

    def acquire_raw_frame(self, pass_index: int, gain: float = 0.01,
                          offset: float = 100.0) -> SciArray:
        """The same scan as raw integer counts (for decode pipelines)."""
        cloud = self.cloud_field(pass_index)
        measured = self.scene * (1.0 - 0.7 * cloud)
        counts = np.clip(measured / gain + offset, 0, 65535).astype(np.int32)
        temps = np.full_like(counts, 293.0, dtype=np.float64)
        return SciArray.from_numpy(
            RAW_SCHEMA,
            {"counts": counts, "detector_temp": temps},
            name=f"raw_pass_{pass_index}",
        )

    def passes(self, n: int) -> Iterator[SciArray]:
        for k in range(1, n + 1):
            yield self.acquire_pass(k)
