"""An oceanography workload with steerable El Niño hotspots (Section 2.7).

The paper's load-balancing argument in workload form: "the mid-equatorial
pacific is not very interesting, and many studies do not consider it.  On
the other hand, during El Niño or La Niña events, it is very interesting."
So measurement density is uniform in quiet epochs and concentrates hard on
the equatorial box during events — the steerable, non-uniform pattern that
breaks fixed partitioning (experiment E6).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from ..core.schema import define_array
from ..storage.loader import LoadRecord

__all__ = ["OceanSimulation", "OCEAN_SCHEMA"]

#: Sea-surface temperature measurements over (lon, lat, epoch).
OCEAN_SCHEMA = define_array(
    "OceanSST",
    values={"sst": "float"},
    dims=["lon", "lat", "epoch"],
)


class OceanSimulation:
    """Measurement-campaign generator over a lon/lat grid.

    Parameters
    ----------
    grid:
        (lon cells, lat cells).
    event_epochs:
        Epochs during which an El Niño event steers the campaign.
    hotspot_fraction:
        During events, this fraction of measurements lands inside the
        equatorial hotspot box.
    """

    def __init__(
        self,
        grid: tuple[int, int] = (128, 64),
        event_epochs: Sequence[int] = (),
        hotspot_fraction: float = 0.9,
        measurements_per_epoch: int = 500,
        seed: int = 0,
    ) -> None:
        self.grid = grid
        self.event_epochs = set(event_epochs)
        self.hotspot_fraction = hotspot_fraction
        self.per_epoch = measurements_per_epoch
        self.rng = np.random.default_rng(seed)
        lon, lat = grid
        # The event hotspot: a compact equatorial-Pacific box.  Placed
        # inside one quadrant of the grid so a fixed 2x2 block layout
        # experiences the full brunt of a steered campaign (exactly the
        # load-balance failure the paper describes).
        self.hotspot = (
            (int(lon * 0.55), int(lon * 0.85)),
            (int(lat * 0.55), int(lat * 0.85)),
        )

    def _sst(self, lon: int, lat: int, epoch: int) -> float:
        lat_frac = lat / self.grid[1]
        base = 28.0 - 20.0 * abs(lat_frac - 0.5) * 2
        seasonal = 1.5 * np.sin(2 * np.pi * epoch / 12)
        anomaly = 0.0
        if epoch in self.event_epochs and self._in_hotspot(lon, lat):
            anomaly = 2.5  # the El Nino warm anomaly
        return float(base + seasonal + anomaly + self.rng.normal(0, 0.3))

    def _in_hotspot(self, lon: int, lat: int) -> bool:
        (lon_lo, lon_hi), (lat_lo, lat_hi) = self.hotspot
        return lon_lo <= lon <= lon_hi and lat_lo <= lat <= lat_hi

    def epoch_measurements(self, epoch: int) -> Iterator[LoadRecord]:
        lon_n, lat_n = self.grid
        steered = epoch in self.event_epochs
        for _ in range(self.per_epoch):
            if steered and self.rng.random() < self.hotspot_fraction:
                (lon_lo, lon_hi), (lat_lo, lat_hi) = self.hotspot
                lon = int(self.rng.integers(lon_lo, lon_hi + 1))
                lat = int(self.rng.integers(lat_lo, lat_hi + 1))
            else:
                lon = int(self.rng.integers(1, lon_n + 1))
                lat = int(self.rng.integers(1, lat_n + 1))
            yield LoadRecord((lon, lat, epoch), (self._sst(lon, lat, epoch),))

    def load_records(self, epochs: int) -> Iterator[LoadRecord]:
        """Epoch-ordered stream (epoch is the dominant dimension)."""
        for epoch in range(1, epochs + 1):
            yield from self.epoch_measurements(epoch)

    def cell_sample(self, epochs: Sequence[int]) -> list[tuple[int, int, int]]:
        return [r.coords for e in epochs for r in self.epoch_measurements(e)]
