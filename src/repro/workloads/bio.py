"""A biology workload: the *negative* fit the paper predicts (Section 2.1).

"Seemingly, biology and genomics users want graphs and sequences.  They
will be happy with neither a table nor an array data model. ... The net
result is that 'one size will not fit all'."

This module provides a protein-interaction-network workload expressible
three ways, so experiment E14 can measure the paper's claim rather than
assert it:

* as a **graph** (adjacency lists — what the community actually uses;
  networkx is the stand-in for a graph DBMS);
* as a **2-D adjacency array** on the SciDB engine (the array modelling a
  scientist would be forced into);
* as an **edge table** on the relational baseline.

The queries are the graph-shaped ones biologists run: k-hop
neighbourhoods, degree distributions, and connected components.  The
array model is *expressible* (everything is) — the experiment shows where
it stops being *reasonable*.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..core.array import SciArray
from ..core.schema import define_array
from ..baseline.tabledb import Table, TableDB

__all__ = ["ProteinNetwork", "ADJACENCY_SCHEMA"]

#: Sparse adjacency: cell (i, j) present iff proteins i and j interact.
ADJACENCY_SCHEMA = define_array(
    "Interactions", values={"confidence": "float"}, dims=["p", "q"]
)


class ProteinNetwork:
    """A scale-free interaction network (preferential attachment).

    Parameters
    ----------
    n_proteins:
        Node count.
    edges_per_node:
        Attachment parameter m (expected edges added per new node).
    """

    def __init__(self, n_proteins: int = 200, edges_per_node: int = 3,
                 seed: int = 0) -> None:
        self.n = n_proteins
        rng = np.random.default_rng(seed)
        # Barabasi-Albert-style growth, by hand (seeded, dependency-free).
        edges: set[tuple[int, int]] = set()
        targets = list(range(1, edges_per_node + 2))
        repeated: list[int] = list(targets)
        for new in range(edges_per_node + 2, n_proteins + 1):
            chosen: set[int] = set()
            while len(chosen) < min(edges_per_node, len(repeated)):
                chosen.add(repeated[rng.integers(0, len(repeated))])
            for t in chosen:
                edges.add((min(new, t), max(new, t)))
                repeated.extend([new, t])
        self.edges = sorted(edges)
        self.rng = rng
        self._confidence = {
            e: float(np.clip(rng.normal(0.7, 0.15), 0.05, 1.0))
            for e in self.edges
        }

    # -- the three representations ------------------------------------------------

    def as_adjacency_dict(self) -> dict[int, list[int]]:
        """The graph-native form (what a graph system stores)."""
        adj: dict[int, list[int]] = {i: [] for i in range(1, self.n + 1)}
        for a, b in self.edges:
            adj[a].append(b)
            adj[b].append(a)
        return adj

    def as_networkx(self):
        """The graph comparator (networkx as the stand-in graph DBMS)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(1, self.n + 1))
        for (a, b), c in self._confidence.items():
            g.add_edge(a, b, confidence=c)
        return g

    def as_sciarray(self) -> SciArray:
        """The forced array modelling: a sparse 2-D adjacency array."""
        arr = ADJACENCY_SCHEMA.create("interactions", [self.n, self.n])
        for (a, b), c in self._confidence.items():
            arr[a, b] = c
            arr[b, a] = c  # symmetric
        return arr

    def as_table(self, db: Optional[TableDB] = None) -> Table:
        """The relational modelling: an indexed edge table."""
        db = db or TableDB()
        t = db.create_table("edges", ["p", "q", "confidence"])
        for (a, b), c in self._confidence.items():
            t.insert((a, b, c))
            t.insert((b, a, c))
        t.create_index(["p"])
        return t

    # -- the graph-shaped queries, per representation --------------------------------

    @staticmethod
    def khop_graph(adj: dict[int, list[int]], start: int, k: int) -> set[int]:
        frontier = {start}
        seen = {start}
        for _ in range(k):
            frontier = {
                n for f in frontier for n in adj[f] if n not in seen
            }
            seen |= frontier
        return seen - {start}

    @staticmethod
    def khop_array(arr: SciArray, start: int, k: int) -> set[int]:
        """k-hop on the adjacency array: each hop is a row subsample —
        one full-row read per frontier node per hop."""
        n = arr.bounds[0]
        frontier = {start}
        seen = {start}
        for _ in range(k):
            next_frontier: set[int] = set()
            for f in frontier:
                row = arr.region((f, 1), (f, n), attr="confidence",
                                 fill=np.nan)
                for q in (np.flatnonzero(~np.isnan(row[0])) + 1):
                    q = int(q)
                    if q not in seen:
                        next_frontier.add(q)
            seen |= next_frontier
            frontier = next_frontier
        return seen - {start}

    @staticmethod
    def khop_table(table: Table, start: int, k: int) -> set[int]:
        frontier = {start}
        seen = {start}
        for _ in range(k):
            next_frontier: set[int] = set()
            for f in frontier:
                for row in table.lookup(["p"], (f,)):
                    if row[1] not in seen:
                        next_frontier.add(row[1])
            seen |= next_frontier
            frontier = next_frontier
        return seen - {start}

    @staticmethod
    def components_graph(adj: dict[int, list[int]]) -> int:
        seen: set[int] = set()
        count = 0
        for node in adj:
            if node in seen:
                continue
            count += 1
            stack = [node]
            while stack:
                cur = stack.pop()
                if cur in seen:
                    continue
                seen.add(cur)
                stack.extend(adj[cur])
        return count

    def components_array(self, arr: SciArray) -> int:
        """Connected components on the array: rebuild adjacency by scanning
        the whole array — the model gives no better handle."""
        adj: dict[int, list[int]] = {i: [] for i in range(1, self.n + 1)}
        for (a, b), _cell in arr.cells(include_null=False):
            adj[a].append(b)
        return self.components_graph(adj)
