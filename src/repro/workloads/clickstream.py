"""The eBay clickstream workload (Section 2.14).

"This application ... can be effectively modelled as a one-dimensional
array (i.e. a time series) with embedded arrays to represent the search
results at each step."  A session is a sequence of events: a search (whose
result list is a *nested array* of surfaced items), clicks on result
items with sub-tree browsing, and exit.  The analytics the paper calls out:

* which surfaced items were clicked (search quality — "the top 6 items
  were not of interest"), and
* the *user-ignored content*: "how often did a particular item get
  surfaced but was never clicked on?"

:class:`ClickstreamGenerator` produces sessions with a controllable search
quality (how deep in the ranking real interest lies); the analysis
functions below answer the two questions over the array form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from ..core.array import SciArray
from ..core.schema import define_array

__all__ = [
    "RESULTS_SCHEMA",
    "SESSION_SCHEMA",
    "Session",
    "ClickstreamGenerator",
    "sessions_to_array",
    "ignored_content",
    "click_ranks",
    "surfaced_counts",
]

#: The embedded array: a ranked result list for one search.
RESULTS_SCHEMA = define_array(
    "SearchResults", values={"item": "int64"}, dims=["rank"]
)

#: One user session: a 1-D time series of events with an embedded
#: result-list array (NULL for non-search events).
SESSION_SCHEMA = define_array(
    "SessionEvents",
    values={
        "kind": "string",     # 'search' | 'click' | 'browse' | 'exit'
        "query": "string",    # search term ('' otherwise)
        "item": "int64",      # clicked/browsed item (0 otherwise)
        "results": RESULTS_SCHEMA,
    },
    dims=["t"],
)


@dataclass
class Session:
    """A materialised session: the event array plus ground truth."""

    session_id: int
    events: SciArray
    searches: int = 0
    clicks: int = 0


class ClickstreamGenerator:
    """Synthetic eBay sessions.

    Parameters
    ----------
    n_items:
        Catalog size.
    results_per_search:
        Items surfaced per query (the embedded array's length).
    relevance_decay:
        Governs *where* in the ranking users find what they want: the
        probability of clicking rank r decays as ``decay**r``.  A good
        engine has high decay mass at rank 1; the paper's flawed
        "pre-war Gibson banjo" engine surfaces the interesting items at
        ranks 7 and 9.
    """

    def __init__(
        self,
        n_items: int = 10_000,
        results_per_search: int = 10,
        relevance_decay: float = 0.5,
        queries: Sequence[str] = ("pre-war gibson banjo", "vintage amp",
                                  "film camera", "mechanical watch"),
        seed: int = 0,
    ) -> None:
        self.n_items = n_items
        self.k = results_per_search
        self.decay = relevance_decay
        self.queries = list(queries)
        self.rng = np.random.default_rng(seed)

    def _result_list(self) -> list[int]:
        return [int(i) for i in
                self.rng.integers(1, self.n_items + 1, size=self.k)]

    def _click_ranks(self) -> list[int]:
        """Which ranks the user clicks for one search (possibly none)."""
        weights = self.decay ** np.arange(1, self.k + 1)
        ranks = []
        for r in range(1, self.k + 1):
            if self.rng.random() < weights[r - 1]:
                ranks.append(r)
        return ranks

    def session(self, session_id: int, max_searches: int = 3) -> Session:
        """Generate one session as a SESSION_SCHEMA array."""
        events: list[tuple[str, str, int, Optional[SciArray]]] = []
        n_searches = int(self.rng.integers(1, max_searches + 1))
        clicks = 0
        for _ in range(n_searches):
            query = self.queries[int(self.rng.integers(0, len(self.queries)))]
            items = self._result_list()
            results = RESULTS_SCHEMA.create(f"results_{len(events)}", [self.k])
            for rank, item in enumerate(items, start=1):
                results[rank] = item
            events.append(("search", query, 0, results))
            for rank in self._click_ranks():
                events.append(("click", "", items[rank - 1], None))
                clicks += 1
                # A sub-tree of browse events under the clicked item.
                for _ in range(int(self.rng.integers(0, 3))):
                    events.append(("browse", "", items[rank - 1], None))
        events.append(("exit", "", 0, None))

        arr = SESSION_SCHEMA.create(f"session_{session_id}", [len(events)])
        for t, (kind, query, item, results) in enumerate(events, start=1):
            arr[t] = (kind, query, item, results)
        return Session(session_id, arr, searches=n_searches, clicks=clicks)

    def sessions(self, n: int) -> Iterator[Session]:
        for sid in range(1, n + 1):
            yield self.session(sid)


def sessions_to_array(sessions: Sequence[Session]) -> SciArray:
    """Concatenate sessions into one long 1-D event log array."""
    total = sum(s.events.high_water("t") for s in sessions)
    log = SESSION_SCHEMA.create("event_log", [total])
    t = 0
    for s in sessions:
        for _, cell in s.events.cells(include_null=False):
            t += 1
            log[t] = cell
    return log


# -- the paper's analyses --------------------------------------------------------------


def surfaced_counts(log: SciArray) -> dict[int, int]:
    """How often each item was surfaced in any result list."""
    counts: dict[int, int] = {}
    for _, cell in log.cells(include_null=False):
        if cell.kind != "search" or cell.results is None:
            continue
        for _, rcell in cell.results.cells(include_null=False):
            counts[rcell.item] = counts.get(rcell.item, 0) + 1
    return counts


def ignored_content(log: SciArray) -> dict[int, int]:
    """Items surfaced but never clicked, with surface counts — the
    'user-ignored content' analysis."""
    surfaced = surfaced_counts(log)
    clicked = {
        cell.item
        for _, cell in log.cells(include_null=False)
        if cell.kind == "click"
    }
    return {item: n for item, n in surfaced.items() if item not in clicked}


def click_ranks(log: SciArray) -> list[int]:
    """The rank (within the preceding search's results) of every click —
    the search-quality signal ('items 7 and then 9 were touched')."""
    ranks: list[int] = []
    current_results: Optional[SciArray] = None
    for _, cell in log.cells(include_null=False):
        if cell.kind == "search":
            current_results = cell.results
        elif cell.kind == "click" and current_results is not None:
            for (rank,), rcell in current_results.cells(include_null=False):
                if rcell.item == cell.item:
                    ranks.append(rank)
                    break
    return ranks
