"""Synthetic instrument and application workloads.

The paper's requirements came from real communities — LSST astronomy,
remote sensing, oceanography, and eBay clickstream analytics (Sections 2.7,
2.10, 2.14).  These generators are the substitutes for those instruments
(see DESIGN.md §2): each reproduces the workload *statistics* that stress
the engine — skewed object densities, periodic full-sky scans, steerable
hotspots, multi-pass cloud cover, and session trees — under a fixed seed.
"""

from .skysurvey import SkySurvey, SurveyObservation
from .remote_sensing import SatelliteInstrument
from .ocean import OceanSimulation
from .clickstream import ClickstreamGenerator, Session, SESSION_SCHEMA

__all__ = [
    "SkySurvey",
    "SurveyObservation",
    "SatelliteInstrument",
    "OceanSimulation",
    "ClickstreamGenerator",
    "Session",
    "SESSION_SCHEMA",
]
