"""Trio-style eager item-level lineage (Section 2.12).

"Although one could use Trio as an exemplar, the space cost of recording
item-level derivations is way too high."  This module *is* that exemplar:
as every command executes, an edge is recorded from each output cell to
each contributing input cell.  Backward and forward queries become index
lookups — fast, and enormous.

Experiment E5 puts this design next to log replay and the trace cache to
regenerate the paper's space/time comparison.
"""

from __future__ import annotations

from typing import Sequence

from ..core.array import SciArray
from .log import LoggedCommand

__all__ = ["ItemLineageStore"]

Coords = tuple[int, ...]
Item = tuple[str, Coords]

#: Wire/back-of-envelope size of one lineage edge: two items of
#: (name pointer + coords), as Trio-style systems store them.
_EDGE_NBYTES = 48


class ItemLineageStore:
    """Eager item-level lineage with forward and backward indexes."""

    def __init__(self) -> None:
        #: output item -> contributing input items
        self._backward: dict[Item, list[Item]] = {}
        #: input item -> derived output items
        self._forward: dict[Item, list[Item]] = {}
        self.edges = 0

    # -- recording (called by ProvenanceEngine on every execute) ----------------

    def record_command(
        self,
        command: LoggedCommand,
        inputs: Sequence[SciArray],
        output: SciArray,
    ) -> int:
        """Record lineage edges for every output cell of *command*."""
        from .trace import _BACKWARD, _conservative_backward

        rule = _BACKWARD.get(command.op, _conservative_backward)
        recorded = 0
        for out_coords, _cell in output.cells():
            out_item: Item = (command.output, tuple(out_coords))
            contributors = [
                (name, tuple(coords))
                for name, coords in rule(command, inputs, output, tuple(out_coords))
            ]
            self._backward.setdefault(out_item, []).extend(contributors)
            for c in contributors:
                self._forward.setdefault(c, []).append(out_item)
            self.edges += len(contributors)
            recorded += len(contributors)
        return recorded

    # -- queries --------------------------------------------------------------------

    def backward(self, item: Item) -> list[Item]:
        """Direct contributors of *item* (one derivation step)."""
        return list(self._backward.get((item[0], tuple(item[1])), []))

    def backward_closure(self, item: Item) -> set[Item]:
        """All transitive contributors."""
        out: set[Item] = set()
        frontier = [(item[0], tuple(item[1]))]
        while frontier:
            current = frontier.pop()
            for c in self._backward.get(current, []):
                if c not in out:
                    out.add(c)
                    frontier.append(c)
        return out

    def forward(self, item: Item) -> list[Item]:
        """Directly derived items (one step downstream)."""
        return list(self._forward.get((item[0], tuple(item[1])), []))

    def forward_closure(self, item: Item) -> set[Item]:
        """Requirement 2 as a pure index walk: all downstream items."""
        out: set[Item] = set()
        frontier = [(item[0], tuple(item[1]))]
        while frontier:
            current = frontier.pop()
            for d in self._forward.get(current, []):
                if d not in out:
                    out.add(d)
                    frontier.append(d)
        return out

    # -- accounting ----------------------------------------------------------------

    def space_nbytes(self) -> int:
        """Estimated bytes of stored lineage (the Trio space cost)."""
        return self.edges * _EDGE_NBYTES
