"""Backward and forward lineage tracing by log replay (Section 2.12).

The paper's preferred minimal-space design:

* **backward** — "look at the time of the update that produced the item
  ... one can then rerun the update in a special executor mode that will
  record all items that contributed to the incorrect item.  Repeating this
  process will trace backwards."  Here, each built-in operator has a
  *lineage rule* — the special executor mode — that, given an output cell,
  re-derives the contributing input cells from the logged command and the
  catalog arrays.
* **forward** — "run subsequent commands in the provenance log in a
  modified form", qualified to the changed cells; each step's directly
  affected outputs seed the next, "iterated forward until there is no
  further activity".  This stores nothing but costs re-execution time.
* **caching** — :class:`TraceCache` memoises forward traces ("one can
  cache these named versions in case the derivation is run again"),
  the middle point between log replay and the Trio item store.

Operators without a registered rule fall back to conservative lineage
(every input cell may contribute) — sound, never minimal.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..core.array import SciArray
from ..core.errors import ProvenanceError
from ..core.ops.structural import _selected_indexes
from .log import LoggedCommand, ProvenanceEngine

__all__ = [
    "Item",
    "BackwardStep",
    "register_lineage_rule",
    "trace_backward",
    "trace_forward",
    "TraceCache",
]

Coords = tuple[int, ...]

#: A data element: (array name, cell coordinates).
Item = tuple[str, Coords]

# rule signatures ------------------------------------------------------------
# backward(cmd, inputs, output, out_coords) -> [(input_name, in_coords)]
# forward(cmd, inputs, output, input_name, in_coords) -> [out_coords]
BackwardRule = Callable[
    [LoggedCommand, Sequence[SciArray], SciArray, Coords], list[Item]
]
ForwardRule = Callable[
    [LoggedCommand, Sequence[SciArray], SciArray, str, Coords], list[Coords]
]

_BACKWARD: dict[str, BackwardRule] = {}
_FORWARD: dict[str, ForwardRule] = {}


def register_lineage_rule(
    op: str, backward: BackwardRule, forward: ForwardRule
) -> None:
    """Extend lineage tracing to a user-registered operator."""
    _BACKWARD[op.lower()] = backward
    _FORWARD[op.lower()] = forward


# -- built-in rules -------------------------------------------------------------


def _identity_backward(cmd, inputs, output, out_coords):
    return [(cmd.inputs[0], out_coords)]


def _identity_forward(cmd, inputs, output, input_name, in_coords):
    return [in_coords]


def _subsample_selections(cmd, source: SciArray) -> list[list[int]]:
    predicate = cmd.params["predicate"]
    selections = []
    for d in range(source.ndim):
        hw = source.high_water(d)
        cond = predicate.get(source.dim_names[d])
        selections.append(
            list(range(1, hw + 1)) if cond is None else _selected_indexes(cond, hw)
        )
    return selections


def _subsample_backward(cmd, inputs, output, out_coords):
    selections = _subsample_selections(cmd, inputs[0])
    try:
        source = tuple(sel[c - 1] for sel, c in zip(selections, out_coords))
    except IndexError:
        raise ProvenanceError(
            f"output cell {out_coords} outside the subsample's extent"
        ) from None
    return [(cmd.inputs[0], source)]


def _subsample_forward(cmd, inputs, output, input_name, in_coords):
    selections = _subsample_selections(cmd, inputs[0])
    out = []
    for sel, c in zip(selections, in_coords):
        try:
            out.append(sel.index(c) + 1)
        except ValueError:
            return []
    return [tuple(out)]


def _aggregate_positions(cmd, source: SciArray) -> list[int]:
    return [source.schema.dim_index(d) for d in cmd.params["group_dims"]]


def _aggregate_backward(cmd, inputs, output, out_coords):
    source = inputs[0]
    positions = _aggregate_positions(cmd, source)
    items = []
    for coords, _cell in source.cells(include_null=False):
        if tuple(coords[p] for p in positions) == tuple(out_coords):
            items.append((cmd.inputs[0], coords))
    return items


def _aggregate_forward(cmd, inputs, output, input_name, in_coords):
    positions = _aggregate_positions(cmd, inputs[0])
    return [tuple(in_coords[p] for p in positions)]


def _regrid_backward(cmd, inputs, output, out_coords):
    factors = cmd.params["factors"]
    source = inputs[0]
    items = []
    for coords, _cell in source.cells(include_null=False):
        if all((c - 1) // f + 1 == o for c, f, o in zip(coords, factors, out_coords)):
            items.append((cmd.inputs[0], coords))
    return items


def _regrid_forward(cmd, inputs, output, input_name, in_coords):
    factors = cmd.params["factors"]
    return [tuple((c - 1) // f + 1 for c, f in zip(in_coords, factors))]


def _sjoin_geometry(cmd, left: SciArray, right: SciArray):
    on = cmd.params["on"]
    left_join = [l for l, _ in on]
    right_join = [r for _, r in on]
    right_keep = [d for d in right.dim_names if d not in right_join]
    return on, left_join, right_join, right_keep


def _sjoin_backward(cmd, inputs, output, out_coords):
    left, right = inputs
    on, _lj, right_join, right_keep = _sjoin_geometry(cmd, left, right)
    m = left.ndim
    left_coords = tuple(out_coords[:m])
    # Reconstruct the right coords: join dims take the matched left values,
    # keep dims come from the output's trailing coordinates.
    values: dict[str, int] = {}
    for (ldim, rdim) in on:
        values[rdim] = left_coords[left.schema.dim_index(ldim)]
    for dname, v in zip(right_keep, out_coords[m:]):
        values[dname] = v
    right_coords = tuple(values[d] for d in right.dim_names)
    return [(cmd.inputs[0], left_coords), (cmd.inputs[1], right_coords)]


def _sjoin_forward(cmd, inputs, output, input_name, in_coords):
    left, right = inputs
    on, left_join, right_join, right_keep = _sjoin_geometry(cmd, left, right)
    right_keep_pos = [right.schema.dim_index(d) for d in right_keep]
    if input_name == cmd.inputs[0]:
        key = tuple(
            in_coords[left.schema.dim_index(l)] for l, _ in on
        )
        out = []
        for coords, _cell in right.cells():
            if tuple(coords[right.schema.dim_index(r)] for _, r in on) == key:
                out.append(tuple(in_coords) + tuple(coords[p] for p in right_keep_pos))
        return out
    # input is the right array: find matching left cells.
    key = tuple(in_coords[right.schema.dim_index(r)] for _, r in on)
    keep = tuple(in_coords[p] for p in right_keep_pos)
    out = []
    for coords, _cell in left.cells():
        if tuple(coords[left.schema.dim_index(l)] for l, _ in on) == key:
            out.append(tuple(coords) + keep)
    return out


def _cjoin_backward(cmd, inputs, output, out_coords):
    left, right = inputs
    m = left.ndim
    return [
        (cmd.inputs[0], tuple(out_coords[:m])),
        (cmd.inputs[1], tuple(out_coords[m:])),
    ]


def _cjoin_forward(cmd, inputs, output, input_name, in_coords):
    left, right = inputs
    if input_name == cmd.inputs[0]:
        return [
            tuple(in_coords) + coords for coords, _ in right.cells()
        ]
    return [tuple(coords) + tuple(in_coords) for coords, _ in left.cells()]


def _conservative_backward(cmd, inputs, output, out_coords):
    items = []
    for name, arr in zip(cmd.inputs, inputs):
        items.extend((name, coords) for coords, _ in arr.cells())
    return items


def _conservative_forward(cmd, inputs, output, input_name, in_coords):
    return [coords for coords, _ in output.cells()]


for _op in ("filter", "apply", "project"):
    _BACKWARD[_op] = _identity_backward
    _FORWARD[_op] = _identity_forward
_BACKWARD["subsample"] = _subsample_backward
_FORWARD["subsample"] = _subsample_forward
_BACKWARD["aggregate"] = _aggregate_backward
_FORWARD["aggregate"] = _aggregate_forward
_BACKWARD["regrid"] = _regrid_backward
_FORWARD["regrid"] = _regrid_forward
_BACKWARD["sjoin"] = _sjoin_backward
_FORWARD["sjoin"] = _sjoin_forward
_BACKWARD["cjoin"] = _cjoin_backward
_FORWARD["cjoin"] = _cjoin_forward


# -- tracing -----------------------------------------------------------------------


class BackwardStep:
    """One step of a backward trace: the command plus contributing items."""

    def __init__(self, command: LoggedCommand, contributors: list[Item]) -> None:
        self.command = command
        self.contributors = contributors

    def __repr__(self) -> str:
        return f"<BackwardStep {self.command.describe()} <- {self.contributors}>"


def trace_backward(
    engine: ProvenanceEngine, item: Item, max_depth: int = 100
) -> list[BackwardStep]:
    """Requirement 1: the processing steps that created *item*.

    Walks from the item's producing command back through contributing
    items until every path reaches an externally-registered array (whose
    derivation lives in the metadata repository) or an array with no
    producing command.  Returns the steps in discovery (reverse
    chronological) order.
    """
    steps: list[BackwardStep] = []
    frontier = [item]
    seen: set[Item] = set()
    depth = 0
    while frontier:
        depth += 1
        if depth > max_depth:
            raise ProvenanceError("backward trace exceeded max_depth")
        next_frontier: list[Item] = []
        for name, coords in frontier:
            if (name, coords) in seen:
                continue
            seen.add((name, coords))
            if engine.repository.is_external(name):
                continue  # terminates at the metadata repository
            cmd = engine.log.command_producing(name)
            if cmd is None:
                continue
            inputs = [engine.get(n) for n in cmd.inputs]
            output = engine.get(cmd.output)
            rule = _BACKWARD.get(cmd.op, _conservative_backward)
            contributors = rule(cmd, inputs, output, tuple(coords))
            steps.append(BackwardStep(cmd, contributors))
            next_frontier.extend(contributors)
        frontier = next_frontier
    return steps


def trace_forward(
    engine: ProvenanceEngine, item: Item, max_depth: int = 100
) -> set[Item]:
    """Requirement 2: all downstream items impacted by *item*.

    Replays the log forward: every command reading an affected array is
    re-derived in qualified form (the lineage rule restricted to the
    affected cells), its affected outputs join the frontier, and the
    process iterates "until there is no further activity".
    """
    affected: set[Item] = set()
    frontier: dict[str, set[Coords]] = {item[0]: {tuple(item[1])}}
    produced_seq = {}
    cmd0 = engine.log.command_producing(item[0])
    start_seq = cmd0.seq if cmd0 else -1
    depth = 0
    while frontier:
        depth += 1
        if depth > max_depth:
            raise ProvenanceError("forward trace exceeded max_depth")
        next_frontier: dict[str, set[Coords]] = {}
        for name, cells in frontier.items():
            for cmd in engine.log.commands_reading(name):
                inputs = [engine.get(n) for n in cmd.inputs]
                output = engine.get(cmd.output)
                rule = _FORWARD.get(cmd.op, _conservative_forward)
                for coords in cells:
                    for out_coords in rule(cmd, inputs, output, name, coords):
                        out_item = (cmd.output, tuple(out_coords))
                        if out_item not in affected:
                            affected.add(out_item)
                            next_frontier.setdefault(cmd.output, set()).add(
                                tuple(out_coords)
                            )
        frontier = next_frontier
    return affected


class TraceCache:
    """Memoised forward traces — the paper's cached-named-version middle
    ground between log replay (no space, slow) and Trio (fast, huge)."""

    def __init__(self, engine: ProvenanceEngine) -> None:
        self.engine = engine
        self._cache: dict[tuple[Item, int], set[Item]] = {}
        self.hits = 0
        self.misses = 0

    def forward(self, item: Item) -> set[Item]:
        key = ((item[0], tuple(item[1])), len(self.engine.log))
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = trace_forward(self.engine, item)
        self._cache[key] = result
        return result

    def space_items(self) -> int:
        """Cached lineage items held (the cache's space cost)."""
        return sum(len(v) for v in self._cache.values())
