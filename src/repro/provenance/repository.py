"""The metadata repository for externally-derived data (Section 2.12).

"For arrays that are loaded externally, scientists want a metadata
repository in which they can enter programs that were run along with their
run-time parameters, so that a record of provenance is available."

Each :class:`ExternalDerivation` records the program, its parameters, and
the named inputs it consumed; the repository indexes them by output array
so a backward trace that reaches an externally-loaded array terminates in
a human-readable derivation record rather than a dead end.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..core.errors import ProvenanceError

__all__ = ["ExternalDerivation", "MetadataRepository"]


@dataclass(frozen=True)
class ExternalDerivation:
    """One externally-run program recorded for provenance."""

    output: str
    program: str
    parameters: tuple[tuple[str, Any], ...]
    inputs: tuple[str, ...] = ()
    recorded_at: Optional[_dt.datetime] = None
    description: str = ""

    def describe(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.parameters)
        src = f" from {', '.join(self.inputs)}" if self.inputs else ""
        return f"{self.output} = {self.program}({params}){src}"


class MetadataRepository:
    """Registry of external derivations, keyed by the array they produced."""

    def __init__(self) -> None:
        self._by_output: dict[str, list[ExternalDerivation]] = {}

    def record(
        self,
        output: str,
        program: str,
        parameters: Optional[Mapping[str, Any]] = None,
        inputs: Sequence[str] = (),
        recorded_at: Optional[_dt.datetime] = None,
        description: str = "",
    ) -> ExternalDerivation:
        entry = ExternalDerivation(
            output=output,
            program=program,
            parameters=tuple(sorted((parameters or {}).items())),
            inputs=tuple(inputs),
            recorded_at=recorded_at,
            description=description,
        )
        self._by_output.setdefault(output, []).append(entry)
        return entry

    def derivations_of(self, output: str) -> list[ExternalDerivation]:
        return list(self._by_output.get(output, []))

    def latest(self, output: str) -> ExternalDerivation:
        entries = self._by_output.get(output)
        if not entries:
            raise ProvenanceError(
                f"no external derivation recorded for array {output!r}"
            )
        return entries[-1]

    def is_external(self, output: str) -> bool:
        return output in self._by_output

    def outputs(self) -> list[str]:
        return sorted(self._by_output)
