"""Provenance: repeatability of data derivation (Section 2.12).

The paper's two search requirements:

1. backward — "for a given data element D, find the collection of
   processing steps that created it from input data";
2. forward — "find all the downstream data elements whose value is
   impacted by the value of D".

Three designs are implemented, spanning the paper's space/time trade-off:

* **log replay** (:mod:`repro.provenance.trace` over
  :mod:`repro.provenance.log`): store only the command log; answer traces
  by re-deriving lineage from the logged operators ("no extra space at all,
  but ... a substantial running time");
* **Trio-style item store** (:mod:`repro.provenance.itemstore`): record
  item-level derivations eagerly at execution time ("the space cost ...
  is way too high", but traces are lookups);
* **cached traces** (:class:`~repro.provenance.trace.TraceCache`): the
  paper's middle point — replayed results cached "in case the derivation
  is run again at a later time".

:class:`~repro.provenance.log.ProvenanceEngine` is the executor that runs
catalog operators while logging them (and, optionally, feeding the item
store).  :mod:`repro.provenance.repository` holds the metadata for
externally-derived arrays.
"""

from .log import CommandLog, LoggedCommand, ProvenanceEngine
from .repository import ExternalDerivation, MetadataRepository
from .itemstore import ItemLineageStore
from .trace import Item, TraceCache, trace_backward, trace_forward

__all__ = [
    "LoggedCommand",
    "CommandLog",
    "ProvenanceEngine",
    "MetadataRepository",
    "ExternalDerivation",
    "ItemLineageStore",
    "Item",
    "trace_backward",
    "trace_forward",
    "TraceCache",
]
