"""The provenance command log and the logging executor (Section 2.12).

"For a sequence of processing steps inside SciDB, one merely needs to
record a log of the commands that were run to create A."

:class:`ProvenanceEngine` is a small catalog-plus-executor: operators from
the engine's user-extendable catalog (:mod:`repro.core.ops`) run against
named arrays, and every execution appends a :class:`LoggedCommand`
(operator, input names, output name, parameters).  The log is the minimal-
space provenance representation; :mod:`repro.provenance.trace` re-derives
item-level lineage from it on demand, and
:mod:`repro.provenance.itemstore` optionally records it eagerly
(Trio-style) as each command runs.
"""

from __future__ import annotations

import datetime as _dt
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Optional, Sequence

from ..core.array import SciArray
from ..core.errors import ProvenanceError
from ..core.ops import get_operator
from .repository import MetadataRepository

if TYPE_CHECKING:  # pragma: no cover
    from .itemstore import ItemLineageStore

__all__ = ["LoggedCommand", "CommandLog", "ProvenanceEngine"]


@dataclass(frozen=True)
class LoggedCommand:
    """One engine operation as recorded in the provenance log."""

    seq: int
    op: str
    inputs: tuple[str, ...]
    output: str
    params: Mapping[str, Any]
    recorded_at: Optional[_dt.datetime] = None

    def describe(self) -> str:
        params = ", ".join(f"{k}={_short(v)}" for k, v in self.params.items())
        return f"#{self.seq}: {self.output} = {self.op}({', '.join(self.inputs)}; {params})"


def _short(value: Any, limit: int = 40) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


class CommandLog:
    """Append-only, replayable log of commands."""

    def __init__(self) -> None:
        self._commands: list[LoggedCommand] = []

    def append(self, command: LoggedCommand) -> None:
        self._commands.append(command)

    def __len__(self) -> int:
        return len(self._commands)

    def __iter__(self) -> Iterator[LoggedCommand]:
        return iter(self._commands)

    def command_producing(self, array_name: str) -> Optional[LoggedCommand]:
        """The most recent command whose output is *array_name*."""
        for cmd in reversed(self._commands):
            if cmd.output == array_name:
                return cmd
        return None

    def commands_reading(
        self, array_name: str, after_seq: int = -1
    ) -> list[LoggedCommand]:
        """Commands that consumed *array_name*, in execution order."""
        return [
            c
            for c in self._commands
            if array_name in c.inputs and c.seq > after_seq
        ]

    def describe(self) -> str:
        return "\n".join(c.describe() for c in self._commands)


class ProvenanceEngine:
    """A catalog of named arrays whose every derivation is logged.

    Parameters
    ----------
    itemstore:
        Optional :class:`~repro.provenance.itemstore.ItemLineageStore`;
        when provided, item-level lineage is recorded eagerly at execution
        time (the Trio design point).
    """

    def __init__(self, itemstore: "Optional[ItemLineageStore]" = None) -> None:
        self.catalog: dict[str, SciArray] = {}
        self.log = CommandLog()
        self.repository = MetadataRepository()
        self.itemstore = itemstore
        self._seq = 0
        # Concurrent statements (the multi-tenant service, or two threads
        # sharing one SciDB) register sources and commit derivations at
        # the same time; the catalog check-and-insert and the seq/log
        # append must each be one atomic step.  RLock: trace helpers call
        # back into get() while holding it.
        self._lock = threading.RLock()

    # -- catalog ------------------------------------------------------------------

    def register_external(
        self,
        name: str,
        array: SciArray,
        program: str,
        parameters: Optional[Mapping[str, Any]] = None,
        inputs: Sequence[str] = (),
        description: str = "",
    ) -> SciArray:
        """Enter an externally-produced array plus its derivation record.

        Re-registering the *same* array object under the same name is a
        no-op rather than an error: two concurrent statements reading one
        catalog source both find it unregistered and both try to enter
        it — the loser of that race must not fail its query.
        """
        with self._lock:
            existing = self.catalog.get(name)
            if existing is array:
                return array
            if existing is not None:
                raise ProvenanceError(
                    f"array {name!r} is already in the catalog"
                )
            self.catalog[name] = array
            self.repository.record(
                name, program, parameters, inputs=inputs,
                description=description,
            )
        return array

    def get(self, name: str) -> SciArray:
        try:
            return self.catalog[name]
        except KeyError:
            raise ProvenanceError(f"no array named {name!r} in the catalog") from None

    def names(self) -> list[str]:
        return sorted(self.catalog)

    # -- execution ------------------------------------------------------------------

    def execute(
        self,
        op: str,
        inputs: Sequence[str],
        output: str,
        /,
        **params: Any,
    ) -> SciArray:
        """Run a catalog operator on named inputs, logging the command.

        The operator is looked up in the user-extendable operator catalog;
        inputs are passed positionally, *params* as keywords.  The result
        is registered in the catalog under *output*.
        """
        with self._lock:
            if output in self.catalog:
                raise ProvenanceError(
                    f"output {output!r} already exists; derivations never "
                    "overwrite (create a new name or a named version)"
                )
            fn = get_operator(op)
            arrays = [self.get(n) for n in inputs]
        # The operator itself runs outside the lock: it can be arbitrarily
        # slow and touches only its input arrays, so concurrent statements
        # keep overlapping.  Output names are collision-checked above and
        # unique per statement (the executor's temp counter is atomic).
        result = fn(*arrays, **params)
        if not isinstance(result, SciArray):
            raise ProvenanceError(
                f"operator {op!r} did not return an array; only array-"
                "producing commands belong in the derivation log"
            )
        result.name = output
        with self._lock:
            self.catalog[output] = result
            command = LoggedCommand(
                seq=self._seq,
                op=op,
                inputs=tuple(inputs),
                output=output,
                params=dict(params),
            )
            self._seq += 1
            self.log.append(command)
        if self.itemstore is not None:
            self.itemstore.record_command(command, arrays, result)
        return result

    def rerun(self, command: LoggedCommand, output: Optional[str] = None) -> SciArray:
        """Re-derive a command's output (the repeatability requirement).

        "This re-derivation will not overwrite old data, but will produce
        new value(s)": the result lands under a fresh name.
        """
        new_name = output or f"{command.output}__rederived_{len(self.log)}"
        return self.execute(
            command.op, command.inputs, new_name, **dict(command.params)
        )
