"""A minimal shim-protocol client (stdlib only).

The shape mirrors SciDB-Py's ``DB`` object down to the verb names, so
code written against the real shim reads the same here:

    >>> client = ShimClient("127.0.0.1", 8080)       # doctest: +SKIP
    >>> sid = client.new_session()                   # doctest: +SKIP
    >>> client.execute_query(sid, "select subsample(M, I >= 2)")
    >>> print(client.read_all(sid))                  # doctest: +SKIP
    >>> client.release_session(sid)                  # doctest: +SKIP

or, for the common one-shot case, :meth:`query` runs the whole
open/execute/drain/release cycle.  429 responses surface as
:class:`Throttled` carrying the server's ``Retry-After`` hint;
:meth:`query` honors it automatically up to ``max_retries``.

One :class:`ShimClient` holds one :class:`http.client.HTTPConnection`
and is **not** thread-safe — the benchmark gives each simulated client
its own instance, which is also what exercises the server's
concurrency for real.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Optional

from ..core.errors import SciDBError

__all__ = ["ServiceError", "ShimClient", "Throttled"]


class ServiceError(SciDBError):
    """A non-2xx response from the query service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status

    @classmethod
    def from_response(
        cls, status: int, body: bytes, retry_after: Optional[str]
    ) -> "ServiceError":
        try:
            message = json.loads(body).get("error", body.decode())
        except (ValueError, UnicodeDecodeError):
            message = repr(body[:200])
        if status == 429:
            return Throttled(
                message, float(retry_after) if retry_after else 0.05
            )
        return cls(status, message)


class Throttled(ServiceError):
    """Admission control said no; ``retry_after_s`` says when to ask again."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        SciDBError.__init__(self, f"HTTP 429: {message}")
        self.status = 429
        self.retry_after_s = retry_after_s


class ShimClient:
    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout_s)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ShimClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- raw verb transport -------------------------------------------------------

    def _call(
        self, verb: str, **params: Any
    ) -> tuple[dict[str, str], bytes]:
        query = urllib.parse.urlencode(
            {k: v for k, v in params.items() if v is not None}
        )
        path = f"/{verb}" + (f"?{query}" if query else "")
        try:
            self._conn.request("GET", path)
            response = self._conn.getresponse()
            body = response.read()
        except (ConnectionError, http.client.HTTPException):
            # One reconnect: the server may have dropped a kept-alive
            # connection between requests.
            self._conn.close()
            self._conn.request("GET", path)
            response = self._conn.getresponse()
            body = response.read()
        if response.status != 200:
            raise ServiceError.from_response(
                response.status, body, response.getheader("Retry-After")
            )
        return dict(response.getheaders()), body

    # -- the shim verbs -----------------------------------------------------------

    def new_session(self, tenant: str = "default") -> str:
        _, body = self._call("new_session", tenant=tenant)
        return body.decode()

    def execute_query(
        self,
        session_id: str,
        query: str,
        timeout_ms: Optional[float] = None,
        **planner_flags: bool,
    ) -> dict[str, Any]:
        _, body = self._call(
            "execute_query",
            id=session_id,
            query=query,
            timeout_ms=timeout_ms,
            **{k: int(v) for k, v in planner_flags.items()},
        )
        return json.loads(body)

    def read_bytes(self, session_id: str, n: int = 65536) -> tuple[bytes, bool]:
        """One result page and whether it was the last."""
        headers, body = self._call("read_bytes", id=session_id, n=n)
        return body, headers.get("X-Scidb-Eof") == "1"

    def cancel(self, session_id: str) -> bool:
        _, body = self._call("cancel", id=session_id)
        return bool(json.loads(body).get("cancelled"))

    def release_session(self, session_id: str) -> None:
        self._call("release_session", id=session_id)

    def status(self) -> dict[str, Any]:
        _, body = self._call("status")
        return json.loads(body)

    # -- conveniences -------------------------------------------------------------

    def read_all(self, session_id: str, page_bytes: int = 65536) -> str:
        """Drain the session's result, honoring read-rate throttling."""
        chunks: list[bytes] = []
        while True:
            try:
                chunk, eof = self.read_bytes(session_id, n=page_bytes)
            except Throttled as exc:
                time.sleep(min(exc.retry_after_s, 1.0))
                continue
            chunks.append(chunk)
            if eof:
                return b"".join(chunks).decode()

    def query(
        self,
        statement: str,
        timeout_ms: Optional[float] = None,
        tenant: str = "default",
        max_retries: int = 8,
    ) -> str:
        """One-shot: session open → execute → drain → release."""
        session_id = self.new_session(tenant=tenant)
        try:
            for attempt in range(max_retries + 1):
                try:
                    self.execute_query(
                        session_id, statement, timeout_ms=timeout_ms
                    )
                    break
                except Throttled as exc:
                    if attempt == max_retries:
                        raise
                    time.sleep(min(exc.retry_after_s, 1.0))
            return self.read_all(session_id)
        finally:
            try:
                self.release_session(session_id)
            except ServiceError:
                pass  # already expired: nothing left to leak
