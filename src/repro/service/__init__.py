"""The HTTP query service front-end (ROADMAP item 1).

SciDB's client bindings (SciDB-Py and friends) speak the *shim*
protocol: a tiny session-oriented HTTP surface with five verbs —
``new_session``, ``execute_query``, ``read_bytes``, ``cancel`` and
``release_session``.  This package puts that surface in front of a
:class:`~repro.database.SciDB` instance using only the standard
library:

* :mod:`repro.service.session` — session registry with idle expiry
  and per-session running-query state (the cancellation handle).
* :mod:`repro.service.admission` — per-tenant concurrency caps and
  byte-rate token buckets; overload turns into a 429 with a
  ``Retry-After`` hint instead of a pile-up.
* :mod:`repro.service.server` — the threaded HTTP server, result
  pager, and the housekeeping thread (idle sweep + slow-query killer).
* :mod:`repro.service.client` — a small shim client used by the tests
  and the E24 closed-loop benchmark.
"""

from .admission import AdmissionConfig, AdmissionController, AdmissionReject
from .client import ServiceError, ShimClient
from .server import QueryService, ServiceConfig
from .session import Session, SessionError, SessionManager

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionReject",
    "QueryService",
    "ServiceConfig",
    "ServiceError",
    "Session",
    "SessionError",
    "SessionManager",
    "ShimClient",
]
