"""Admission control: keep an overloaded service honest (Section 2.7).

Two independent gates, both per tenant:

* **Concurrency** — at most ``max_concurrent`` statements executing at
  once per tenant.  The (N+1)th ``execute_query`` is rejected *before*
  any work happens; the client gets a 429 and a ``Retry-After`` hint
  derived from the tenant's recent statement latency, so well-behaved
  clients back off proportionally to the actual load.
* **Read bytes** — a token bucket refilled at ``bytes_per_sec`` with
  ``burst_bytes`` capacity.  ``read_bytes`` pages are charged as they
  are produced; an empty bucket yields a 429 whose ``Retry-After`` is
  exactly the time until the bucket covers the requested page.

Rejection is a *policy outcome*, not an error in the engine: nothing
below the service layer knows admission exists.  Both gates are plain
counters under one lock — no background refill thread; tokens accrue
lazily from the elapsed time at each charge, so the controller is
deterministic under an injected clock (the tests use one).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.errors import SciDBError

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionReject"]


class AdmissionReject(SciDBError):
    """The service declined work; carries the back-off hint."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = max(0.0, retry_after_s)


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-tenant admission limits.

    Defaults are sized for the simulated engine: a handful of
    concurrent statements per tenant and a read budget generous enough
    that only a pathological drain loop hits it.
    """

    max_concurrent: int = 4
    bytes_per_sec: float = 8_000_000.0
    burst_bytes: float = 4_000_000.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise SciDBError("admission max_concurrent must be >= 1")
        if self.bytes_per_sec <= 0 or self.burst_bytes <= 0:
            raise SciDBError("admission byte rates must be > 0")


class _TokenBucket:
    """Lazily-refilled token bucket (tokens are bytes)."""

    __slots__ = ("rate", "capacity", "tokens", "t_last")

    def __init__(self, rate: float, capacity: float, now: float) -> None:
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity  # start full: first reads are never throttled
        self.t_last = now

    def charge(self, nbytes: float, now: float) -> Optional[float]:
        """Take *nbytes*; ``None`` on success, else seconds until possible."""
        self.tokens = min(
            self.capacity, self.tokens + (now - self.t_last) * self.rate
        )
        self.t_last = now
        if nbytes <= self.tokens:
            self.tokens -= nbytes
            return None
        # A page larger than the bucket can ever hold would wait forever;
        # cap the debt at capacity so the hint stays finite and the retry
        # (with the same page size) succeeds from a full bucket.
        needed = min(nbytes, self.capacity) - self.tokens
        return max(needed / self.rate, 0.0)


class _TenantState:
    __slots__ = ("in_flight", "bucket", "ewma_ms")

    def __init__(self, bucket: _TokenBucket) -> None:
        self.in_flight = 0
        self.bucket = bucket
        #: exponentially-weighted statement latency; seeds Retry-After
        self.ewma_ms = 50.0


class AdmissionController:
    """Both admission gates, one instance per service."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()
        self.rejected_queries = 0
        self.rejected_reads = 0

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                _TokenBucket(
                    self.config.bytes_per_sec,
                    self.config.burst_bytes,
                    self._clock(),
                )
            )
            self._tenants[tenant] = state
        return state

    # -- concurrency gate ---------------------------------------------------------

    def acquire_query(self, tenant: str) -> None:
        """Admit one statement or raise :class:`AdmissionReject`."""
        with self._lock:
            state = self._state(tenant)
            if state.in_flight >= self.config.max_concurrent:
                self.rejected_queries += 1
                # Expect a slot when the typical statement drains.
                hint = state.ewma_ms / 1e3
                raise AdmissionReject(
                    f"tenant {tenant!r} already has "
                    f"{state.in_flight} statements in flight "
                    f"(limit {self.config.max_concurrent})",
                    retry_after_s=hint,
                )
            state.in_flight += 1

    def release_query(self, tenant: str, elapsed_ms: float) -> None:
        with self._lock:
            state = self._state(tenant)
            state.in_flight = max(0, state.in_flight - 1)
            state.ewma_ms = 0.8 * state.ewma_ms + 0.2 * max(elapsed_ms, 1.0)

    # -- byte gate ----------------------------------------------------------------

    def charge_read(self, tenant: str, nbytes: int) -> None:
        """Charge a result page or raise :class:`AdmissionReject`."""
        if nbytes <= 0:
            return
        with self._lock:
            wait = self._state(tenant).bucket.charge(
                float(nbytes), self._clock()
            )
            if wait is not None:
                self.rejected_reads += 1
                raise AdmissionReject(
                    f"tenant {tenant!r} read budget exhausted "
                    f"({nbytes} B requested)",
                    retry_after_s=wait,
                )

    # -- introspection ------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        with self._lock:
            return {
                tenant: {
                    "in_flight": state.in_flight,
                    "read_tokens": round(state.bucket.tokens, 1),
                    "ewma_ms": round(state.ewma_ms, 2),
                }
                for tenant, state in self._tenants.items()
            }
