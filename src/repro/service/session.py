"""Shim sessions: the unit of client state in the query service.

A session is what ``new_session`` hands back: an opaque id the client
threads through every later verb.  It carries at most one *running*
statement (the shim contract — clients wanting parallelism open
parallel sessions) and at most one *readable* result; ``execute_query``
replaces the previous result, ``read_bytes`` drains it.

The manager is the registry: creation, lookup (which refreshes the
idle clock), release, and the idle sweep the service's housekeeping
thread runs.  Every mutation is under one lock — session ids are
minted from :func:`secrets.token_hex`, so ids never collide, but two
requests racing on the *same* session must serialize on its state.
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import TYPE_CHECKING, Optional

from ..core.errors import SciDBError

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.resilience import Deadline
    from .server import ResultPager

__all__ = ["Session", "SessionError", "SessionManager"]


class SessionError(SciDBError):
    """Unknown, expired, or misused session id."""


class Session:
    """One client's conversation with the service."""

    __slots__ = (
        "session_id",
        "tenant",
        "created_at",
        "last_used",
        "lock",
        "deadline",
        "query_id",
        "query_started",
        "statement",
        "pager",
        "queries_run",
    )

    def __init__(self, session_id: str, tenant: str) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.created_at = time.time()
        self.last_used = self.created_at
        #: serializes execute/read/cancel racing on this one session
        self.lock = threading.RLock()
        #: the running statement's cancellation handle, if one is running
        self.deadline: "Optional[Deadline]" = None
        self.query_id: Optional[str] = None
        self.query_started: Optional[float] = None
        self.statement: Optional[str] = None
        #: the last completed statement's unread output
        self.pager: "Optional[ResultPager]" = None
        self.queries_run = 0

    @property
    def running(self) -> bool:
        return self.deadline is not None

    def touch(self) -> None:
        self.last_used = time.time()

    def idle_ms(self, now: Optional[float] = None) -> float:
        return ((now if now is not None else time.time()) - self.last_used) * 1e3

    def running_ms(self, now: Optional[float] = None) -> float:
        """How long the current statement has been executing (0 if idle)."""
        if self.query_started is None:
            return 0.0
        return ((now if now is not None else time.time()) - self.query_started) * 1e3

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return (
            f"<Session {self.session_id[:8]} tenant={self.tenant!r} "
            f"{state} queries={self.queries_run}>"
        )


class SessionManager:
    """The service's session registry.

    ``idle_timeout_ms`` bounds how long a session may sit unused before
    :meth:`sweep_idle` reclaims it; a session with a statement still
    executing is never swept (the killer deals with runaways, and its
    deadline — not the idle clock — decides that statement's fate).
    """

    def __init__(self, idle_timeout_ms: float = 60_000.0) -> None:
        if idle_timeout_ms <= 0:
            raise SessionError("idle_timeout_ms must be > 0")
        self.idle_timeout_ms = idle_timeout_ms
        self._sessions: dict[str, Session] = {}
        self._lock = threading.RLock()

    def open(self, tenant: str = "default") -> Session:
        session = Session(secrets.token_hex(16), tenant)
        with self._lock:
            self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"no session {session_id!r} (expired or released)")
        session.touch()
        return session

    def release(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise SessionError(f"no session {session_id!r} (expired or released)")
        self._abandon(session, "session released")
        return session

    def sweep_idle(self, now: Optional[float] = None) -> list[Session]:
        """Reclaim sessions idle past the timeout; returns what was swept."""
        now = now if now is not None else time.time()
        with self._lock:
            expired = [
                s
                for s in self._sessions.values()
                if not s.running and s.idle_ms(now) > self.idle_timeout_ms
            ]
            for session in expired:
                del self._sessions[session.session_id]
        for session in expired:
            self._abandon(session, "session expired")
        return expired

    @staticmethod
    def _abandon(session: Session, reason: str) -> None:
        # Releasing a session with a statement mid-flight cancels it:
        # nobody is left to read the answer.
        with session.lock:
            if session.deadline is not None:
                session.deadline.cancel(reason)
            session.pager = None

    def running(self) -> list[Session]:
        with self._lock:
            return [s for s in self._sessions.values() if s.running]

    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def tenant_counts(self) -> dict[str, int]:
        with self._lock:
            counts: dict[str, int] = {}
            for s in self._sessions.values():
                counts[s.tenant] = counts.get(s.tenant, 0) + 1
            return counts
