"""The shim-protocol HTTP server in front of one :class:`SciDB`.

The wire surface is the five-verb session protocol SciDB's client
bindings expect (cf. SciDB-Py's shim ``DB``):

========================  =====================================================
``GET /new_session``      open a session; body is the session id
``GET /execute_query``    ``id``, ``query`` (+ ``timeout_ms``, planner flags);
                          runs the statement synchronously, stores the result
``GET /read_bytes``       ``id``, ``n``; next ≤ *n* bytes of the result in
                          shim CSV+ form; ``X-Scidb-Eof: 1`` on the last page
``GET /cancel``           ``id``; cancel the session's running statement
``GET /release_session``  ``id``; drop the session (cancels anything running)
========================  =====================================================

plus ``GET /status`` (JSON introspection, not part of the shim).
``POST`` with a form body is accepted everywhere ``GET`` is, so long
statements need not fit in a request line.

Execution is synchronous *in the handler thread*:
:class:`~http.server.ThreadingHTTPServer` gives each request its own
thread, and the engine below is thread-safe (PR 10's locking sweep), so
concurrency falls out of the server model with no queueing layer.  The
service — not :meth:`SciDB.execute` — constructs the statement's
:class:`~repro.cluster.resilience.Deadline` and installs it via
:func:`deadline_scope`; holding the handle itself is what lets a
``/cancel`` arriving on a *different* connection stop the statement:
:meth:`Deadline.cancel` makes the next cooperative check (operator
boundary, replica attempt, mid-scan) raise
:class:`~repro.core.errors.QueryCancelledError`.  A statement with no
client timeout gets ``Deadline.unbounded()`` — infinite budget, still
cancellable.

Overload policy lives in :mod:`repro.service.admission` (429 +
``Retry-After``); runaway statements are reaped by the housekeeping
thread, which every ``sweep_interval_ms`` expires idle sessions and
cancels any statement running longer than ``kill_after_ms`` (default:
50× the slow-query log threshold, so the killer only ever fires on
statements the slow log would have flagged long before).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator, Optional

from ..cluster.resilience import Deadline, deadline_scope
from ..core.array import SciArray
from ..core.errors import (
    DeadlineExceededError,
    QueryCancelledError,
    SciDBError,
)
from ..database import SciDB
from ..obs.metrics import get_registry
from ..obs.recorder import emit as _flight_emit
from ..query.planner import PlannerConfig
from .admission import AdmissionConfig, AdmissionController, AdmissionReject
from .session import Session, SessionError, SessionManager

__all__ = ["QueryService", "ResultPager", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (engine knobs stay on :class:`SciDB`)."""

    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the tests and benchmark do this)
    port: int = 0
    idle_timeout_ms: float = 60_000.0
    #: statements running longer than this are killed; ``None`` derives
    #: 50× the database's slow-query threshold
    kill_after_ms: Optional[float] = None
    sweep_interval_ms: float = 100.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


class ResultPager:
    """Serializes one statement's result lazily, in ``read_bytes`` pages.

    The shim CSV+ shape: a header naming dimensions and attributes, then
    one ``{coords} v1,v2`` line per occupied cell.  Cells are encoded
    on demand — a client paging a large result never forces the whole
    serialization into memory, and a client that stops reading costs
    nothing further.
    """

    def __init__(self, value: Any) -> None:
        self._lines: Optional[Iterator[bytes]] = self._serialize(value)
        self._buffer = b""
        self.bytes_served = 0

    @staticmethod
    def _serialize(value: Any) -> Iterator[bytes]:
        if isinstance(value, SciArray):
            dims = ",".join(d.name for d in value.schema.dimensions)
            attrs = ",".join(value.schema.attr_names)
            yield f"{{{dims}}} {attrs}\n".encode()
            for coords, cell in value.cells(include_null=False):
                pos = ",".join(str(c) for c in coords)
                vals = ",".join(_fmt(v) for v in cell)
                yield f"{{{pos}}} {vals}\n".encode()
        elif value is None:
            yield b"null\n"
        else:
            yield (str(value) + "\n").encode()

    @property
    def eof(self) -> bool:
        return self._lines is None and not self._buffer

    def read(self, n: int) -> bytes:
        """The next ≤ *n* bytes (empty at EOF)."""
        if n <= 0:
            return b""
        while len(self._buffer) < n and self._lines is not None:
            line = next(self._lines, None)
            if line is None:
                self._lines = None
                break
            self._buffer += line
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        self.bytes_served += len(out)
        return out

    def unread(self, data: bytes) -> None:
        """Push a page back (an admission-rejected read retries it whole)."""
        self._buffer = data + self._buffer
        self.bytes_served -= len(data)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing; every verb is a :class:`QueryService` method."""

    server_version = "repro-scidb/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch()

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch()

    def _dispatch(self) -> None:
        service: "QueryService" = self.server.service  # type: ignore[attr-defined]
        parsed = urllib.parse.urlsplit(self.path)
        params = {
            k: v[-1] for k, v in urllib.parse.parse_qs(parsed.query).items()
        }
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            body = self.rfile.read(length).decode()
            params.update(
                (k, v[-1])
                for k, v in urllib.parse.parse_qs(body).items()
            )
        status, headers, payload = service.handle(parsed.path, params)
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the flight recorder is the service's log, not stderr


class QueryService:
    """The query service: one :class:`SciDB`, many concurrent clients."""

    def __init__(
        self, db: SciDB, config: Optional[ServiceConfig] = None
    ) -> None:
        self.db = db
        self.config = config or ServiceConfig()
        self.sessions = SessionManager(
            idle_timeout_ms=self.config.idle_timeout_ms
        )
        self.admission = AdmissionController(self.config.admission)
        self.kill_after_ms = (
            self.config.kill_after_ms
            if self.config.kill_after_ms is not None
            else max(1_000.0, db.slow_log.threshold_ms * 50.0)
        )
        self.queries_served = 0
        self.queries_killed = 0
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None
        self._sweep_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "QueryService":
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service",
            daemon=True,
        )
        self._serve_thread.start()
        self._sweep_thread = threading.Thread(
            target=self._housekeeping, name="repro-service-sweep", daemon=True
        )
        self._sweep_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
        if self._sweep_thread is not None:
            self._sweep_thread.join(timeout=5)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- housekeeping: idle sweep + slow-query killer -----------------------------

    def _housekeeping(self) -> None:
        interval = self.config.sweep_interval_ms / 1e3
        while not self._stop.wait(interval):
            for session in self.sessions.sweep_idle():
                _flight_emit(
                    "service.session_expired",
                    session=session.session_id,
                    tenant=session.tenant,
                    idle_ms=round(session.idle_ms(), 1),
                )
            for session in self.sessions.running():
                elapsed = session.running_ms()
                if elapsed > self.kill_after_ms:
                    with session.lock:
                        deadline = session.deadline
                        if deadline is None or deadline.cancelled:
                            continue
                        deadline.cancel(
                            f"killed by service after {elapsed:.0f} ms "
                            f"(limit {self.kill_after_ms:.0f} ms)"
                        )
                    self.queries_killed += 1
                    get_registry().counter("service.kills").inc()
                    _flight_emit(
                        "service.query_kill",
                        session=session.session_id,
                        tenant=session.tenant,
                        statement=session.statement,
                        running_ms=round(elapsed, 1),
                    )

    # -- request handling ---------------------------------------------------------

    def handle(
        self, path: str, params: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        """Route one request; returns ``(status, headers, body)``."""
        try:
            if path == "/new_session":
                return self._new_session(params)
            if path == "/execute_query":
                return self._execute_query(params)
            if path == "/read_bytes":
                return self._read_bytes(params)
            if path == "/cancel":
                return self._cancel(params)
            if path == "/release_session":
                return self._release_session(params)
            if path == "/status":
                return self._status()
            return self._error(404, f"no such endpoint: {path}")
        except SessionError as exc:
            return self._error(404, str(exc))
        except AdmissionReject as exc:
            get_registry().counter("service.rejections").inc()
            _flight_emit("service.admission_reject", reason=str(exc))
            return self._error(
                429,
                str(exc),
                headers={"Retry-After": f"{exc.retry_after_s:.3f}"},
            )
        except QueryCancelledError as exc:
            return self._error(409, str(exc))
        except DeadlineExceededError as exc:
            return self._error(408, str(exc))
        except SciDBError as exc:
            return self._error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 — the server must answer
            return self._error(500, f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _error(
        status: int, message: str, headers: Optional[dict[str, str]] = None
    ) -> tuple[int, dict[str, str], bytes]:
        body = json.dumps({"error": message}).encode()
        out = {"Content-Type": "application/json"}
        if headers:
            out.update(headers)
        return status, out, body

    @staticmethod
    def _ok_json(payload: dict[str, Any]) -> tuple[int, dict[str, str], bytes]:
        return (
            200,
            {"Content-Type": "application/json"},
            json.dumps(payload).encode(),
        )

    def _session_from(self, params: dict[str, str]) -> Session:
        session_id = params.get("id")
        if not session_id:
            raise SessionError("missing required parameter 'id'")
        return self.sessions.get(session_id)

    # -- the five shim verbs ------------------------------------------------------

    def _new_session(
        self, params: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        session = self.sessions.open(tenant=params.get("tenant", "default"))
        _flight_emit(
            "service.session_open",
            session=session.session_id,
            tenant=session.tenant,
        )
        return 200, {"Content-Type": "text/plain"}, session.session_id.encode()

    def _execute_query(
        self, params: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        session = self._session_from(params)
        statement = params.get("query")
        if not statement:
            raise SciDBError("missing required parameter 'query'")
        timeout_ms = (
            float(params["timeout_ms"]) if params.get("timeout_ms") else None
        )
        planner = self._planner_from(params)

        deadline = (
            Deadline.after_ms(timeout_ms)
            if timeout_ms is not None
            else Deadline.unbounded()
        )
        # Admission first: a 429 here leaves the session untouched.
        self.admission.acquire_query(session.tenant)
        t0 = time.perf_counter()
        started = False
        try:
            with session.lock:
                if session.running:
                    raise SciDBError(
                        "session already has a statement executing; open "
                        "a second session for parallel statements"
                    )
                session.deadline = deadline
                session.query_started = time.time()
                session.statement = statement
                session.pager = None  # executing replaces any unread result
                started = True
            # The scope installs the *service's* deadline so /cancel and
            # the killer hold the live handle while the statement runs.
            with deadline_scope(deadline):
                result = self.db.execute(statement, planner=planner)
        finally:
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            self.admission.release_query(session.tenant, elapsed_ms)
            if started:
                with session.lock:
                    session.deadline = None
                    session.query_started = None
                    session.statement = None
                    session.touch()
        with session.lock:
            session.pager = ResultPager(result.value)
            session.queries_run += 1
        self.queries_served += 1
        get_registry().counter("service.queries").inc()
        return self._ok_json(
            {
                "session": session.session_id,
                "elapsed_ms": round(elapsed_ms, 3),
                "rewrites": list(result.rewrites),
                "cells_examined": result.cells_examined,
            }
        )

    @staticmethod
    def _planner_from(params: dict[str, str]) -> Optional[PlannerConfig]:
        flags = {}
        for name in ("enable_pushdown", "enable_pruning", "enable_cost_model"):
            if name in params:
                flags[name] = params[name].lower() not in ("0", "false", "no")
        return PlannerConfig(**flags) if flags else None

    def _read_bytes(
        self, params: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        session = self._session_from(params)
        n = int(params.get("n", 65536))
        with session.lock:
            pager = session.pager
            if pager is None:
                raise SciDBError(
                    "no result to read; execute_query first (or the "
                    "result was already drained and released)"
                )
            chunk = pager.read(n)
            try:
                # Charge what was actually produced; a rejected page goes
                # back on the pager so the client's retry gets it whole.
                self.admission.charge_read(session.tenant, len(chunk))
            except AdmissionReject:
                pager.unread(chunk)
                raise
            eof = pager.eof
            if eof:
                session.pager = None
        return (
            200,
            {
                "Content-Type": "text/plain",
                "X-Scidb-Eof": "1" if eof else "0",
            },
            chunk,
        )

    def _cancel(
        self, params: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        session = self._session_from(params)
        with session.lock:
            deadline = session.deadline
            cancelled = deadline is not None and not deadline.cancelled
            if cancelled:
                deadline.cancel("cancelled by client")
        if cancelled:
            get_registry().counter("service.cancels").inc()
            _flight_emit(
                "service.query_cancel",
                session=session.session_id,
                tenant=session.tenant,
            )
        return self._ok_json(
            {"session": session.session_id, "cancelled": cancelled}
        )

    def _release_session(
        self, params: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        session_id = params.get("id")
        if not session_id:
            raise SessionError("missing required parameter 'id'")
        session = self.sessions.release(session_id)
        _flight_emit(
            "service.session_release",
            session=session.session_id,
            tenant=session.tenant,
            queries=session.queries_run,
        )
        return self._ok_json(
            {"released": session.session_id, "queries": session.queries_run}
        )

    # -- introspection ------------------------------------------------------------

    def _status(self) -> tuple[int, dict[str, str], bytes]:
        return self._ok_json(
            {
                "sessions": self.sessions.count(),
                "tenants": self.sessions.tenant_counts(),
                "running": len(self.sessions.running()),
                "queries_served": self.queries_served,
                "queries_killed": self.queries_killed,
                "rejected_queries": self.admission.rejected_queries,
                "rejected_reads": self.admission.rejected_reads,
                "admission": self.admission.snapshot(),
                "kill_after_ms": self.kill_after_ms,
            }
        )
