"""The SciDB facade: one object wiring every requirement together.

The subpackages are deliberately independent (each reproduces one section
of the paper); :class:`SciDB` is the assembled system a user would
actually adopt — a catalog with durable storage, the query executor with
both language bindings, provenance logging on every derivation, updatable
(no-overwrite) arrays with named versions, and in-situ attachment of
external files.

    >>> db = SciDB(directory)
    >>> db.execute("define array Remote (s1 = float) (I, J)")
    >>> db.execute("create M as Remote [64, 64]")
    >>> db.query(array("M").subsample(dim("I") >= 2).node)
"""

from __future__ import annotations

import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from .cluster.faults import FaultInjector
from .cluster.grid import Grid
from .cluster.resilience import Deadline, ResiliencePolicy, deadline_scope
from .core.array import SciArray
from .core.errors import PlanError, ProvenanceError, SchemaError, VersionError
from .core.schema import ArraySchema
from .history.transactions import UpdatableArray
from .history.versions import Version, VersionTree
from .obs import tracing
from .obs.explain import ExplainReport, build_report
from .obs.export import events_jsonl, prometheus_text, status_text
from .obs.health import HealthModel, HealthReport
from .obs.metrics import get_registry
from .obs.recorder import (
    FlightRecorder,
    QueryProfile,
    RecordedEvent,
    get_flight_recorder,
)
from .obs.slowlog import SlowQuery, SlowQueryLog
from .obs.tracing import SpanRecorder
from .provenance.itemstore import ItemLineageStore
from .provenance.log import ProvenanceEngine
from .provenance.trace import Item, trace_backward, trace_forward
from .query.ast import Node
from .query.executor import ExecutionResult, Executor
from .query.parser import parse_statement
from .query.planner import Planner, PlannerConfig
from .storage.insitu import InSituArray, open_in_situ
from .storage.loader import BulkLoader, LoadRecord, LoadReport
from .storage.manager import StorageManager
from .storage.quarantine import QuarantineStore
from .storage.wal import WriteAheadLog

__all__ = ["SciDB"]


def _ledger_totals(grids: "Iterable[Grid]") -> dict[str, int]:
    """Combined movement bytes by reason across *grids*."""
    totals: dict[str, int] = {}
    for grid in grids:
        for reason, nbytes in grid.ledger.by_reason().items():
            totals[reason] = totals.get(reason, 0) + nbytes
    return totals


def _grid_status(grids: "Iterable[Grid]") -> dict[str, Any]:
    """Elastic-operations status across *grids*: in-flight and completed
    rebalance migrations plus node rebuilds.  Empty when nothing ever
    moved — idle explains stay clean."""
    active: list[dict] = []
    completed: list[dict] = []
    rebuilds: list[dict] = []
    for grid in grids:
        snap = grid.rebalance_snapshot()
        active.extend(snap["active"])
        completed.extend(snap["completed"])
        rebuilds.extend(asdict(r) for r in grid.rebuilds)
    if not (active or completed or rebuilds):
        return {}
    return {
        "rebalance": {
            "active": active,
            "completed": completed,
            "cells_moved": sum(r["cells_moved"] for r in completed)
            + sum(p["cells_moved"] for p in active),
            "cells_remaining": sum(p["cells_remaining"] for p in active),
            "throttle_hits": sum(r["throttle_hits"] for r in completed)
            + sum(p["throttle_hits"] for p in active),
            "aborted": sum(1 for r in completed if r["aborted"]),
        },
        "rebuilds": rebuilds,
    }


class SciDB:
    """An assembled single-node SciDB instance.

    Parameters
    ----------
    directory:
        Root for durable state (bucket files, the write-ahead log).
        ``None`` runs fully in memory (no persistence, no WAL).
    record_item_lineage:
        Also record Trio-style item-level lineage for every derivation
        (fast traces, large space — Section 2.12's trade-off).
    enable_pushdown:
        Planner optimization switch (Section 2.2.1).
    slow_query_ms:
        Statements at or above this wall time land in
        :meth:`slow_queries` (bounded log).
    """

    def __init__(
        self,
        directory: "str | Path | None" = None,
        record_item_lineage: bool = False,
        enable_pushdown: bool = True,
        slow_query_ms: float = 100.0,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.itemstore = ItemLineageStore() if record_item_lineage else None
        self.provenance = ProvenanceEngine(itemstore=self.itemstore)
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        self.executor = Executor(
            planner=Planner(enable_pushdown=enable_pushdown),
            provenance=self.provenance,
            slow_log=self.slow_log,
        )
        self.storage: Optional[StorageManager] = None
        self.wal: Optional[WriteAheadLog] = None
        if self.directory is not None:
            self.storage = StorageManager(self.directory / "arrays")
            self.wal = WriteAheadLog(self.directory / "wal.log")
        self._updatable: dict[str, UpdatableArray] = {}
        self._version_trees: dict[str, VersionTree] = {}
        self._grids: dict[str, Grid] = {}
        self._quarantines: dict[str, QuarantineStore] = {}
        self._health = HealthModel()

    # -- statements (both bindings) ---------------------------------------------

    def execute(
        self,
        statement: "str | Node",
        timeout_ms: Optional[float] = None,
        planner: Optional[PlannerConfig] = None,
    ) -> ExecutionResult:
        """Run one statement: textual AQL or a parse tree (Section 2.4).

        *timeout_ms* installs a :class:`~repro.cluster.resilience.Deadline`
        for the statement: the executor checks it cooperatively at every
        operator boundary and the grid read path checks it per replica
        attempt and mid-scan, raising
        :class:`~repro.core.errors.DeadlineExceededError` on expiry.

        *planner* overrides the optimizer's switches for this statement
        only — e.g. ``PlannerConfig(enable_pruning=False)`` forces full
        scans (the pruning-equivalence test battery's control arm), and
        ``PlannerConfig(enable_pushdown=False)`` evaluates the tree
        exactly as written.
        """
        with deadline_scope(
            Deadline.after_ms(timeout_ms) if timeout_ms is not None else None
        ):
            return self.executor.run(statement, config=planner)

    def query(
        self,
        statement: "str | Node",
        timeout_ms: Optional[float] = None,
        planner: Optional[PlannerConfig] = None,
    ) -> SciArray:
        """Like :meth:`execute`, returning the result array directly."""
        return self.execute(
            statement, timeout_ms=timeout_ms, planner=planner
        ).array

    def execute_script(
        self,
        text: str,
        timeout_ms: Optional[float] = None,
        planner: Optional[PlannerConfig] = None,
    ) -> list[ExecutionResult]:
        """Run a multi-statement script; one deadline covers the whole
        script, and *planner* overrides apply to every statement — the
        same contract as :meth:`execute` (previously both were silently
        dropped here)."""
        with deadline_scope(
            Deadline.after_ms(timeout_ms) if timeout_ms is not None else None
        ):
            return self.executor.run_script(text, config=planner)

    # -- observability (EXPLAIN ANALYZE, metrics, slow queries) -------------------

    def explain(
        self,
        statement: "str | Node",
        timeout_ms: Optional[float] = None,
        planner: Optional[PlannerConfig] = None,
    ) -> ExplainReport:
        """Execute *statement* under tracing and return the plan tree
        annotated with actual measurements.

        Every operator node carries its wall time, cells scanned, chunks
        touched, nodes visited and bytes moved — plus resilience counters
        (failovers, breaker skips, hedges, deadline misses) when the grid
        read path took evasive action; the report also records the
        movement-ledger delta the query caused, which the per-operator
        ``bytes_moved`` figures reconcile with.  *timeout_ms* behaves as
        in :meth:`execute`.
        """
        if isinstance(statement, str):
            node = parse_statement(statement)  # typed ParseError on junk
            text = statement
        elif isinstance(statement, Node):
            node = statement
            text = f"<{type(node).__name__}>"
        else:
            raise PlanError(
                "explain needs a statement string or parse tree, got "
                f"{type(statement).__name__}"
            )
        # Plan ONCE and execute that exact tree: operator spans are
        # matched back to plan nodes by identity (as are the physical
        # plan's estimates, joined into the report below).
        planned = self.executor.planner.plan(node, config=planner)
        grids = self._observed_grids()
        before = _ledger_totals(grids)
        recorder = SpanRecorder()
        t0 = time.perf_counter()
        with tracing.use(recorder), deadline_scope(
            Deadline.after_ms(timeout_ms) if timeout_ms is not None else None
        ):
            result = self.executor.run_planned(planned, statement_text=text)
        total_ms = (time.perf_counter() - t0) * 1e3
        after = _ledger_totals(grids)
        delta = {
            reason: after[reason] - before.get(reason, 0)
            for reason in after
            if after[reason] - before.get(reason, 0)
        }
        return build_report(
            planned.node,
            list(planned.rewrites),
            recorder.roots,
            text,
            total_ms,
            ledger_delta=delta,
            cells_examined=result.cells_examined,
            describe_ref=self._describe_ref,
            grid_status=_grid_status(grids),
            planned=planned,
        )

    def metrics_snapshot(self) -> dict[str, Any]:
        """The unified operational view: process-wide registry (storage,
        WAL, ingest, query counters) plus every grid's ledger and
        per-node accounting."""
        snap = get_registry().snapshot()
        snap["grids"] = {
            name: grid.metrics_snapshot() for name, grid in self._grids.items()
        }
        snap["slow_query_log"] = {
            "threshold_ms": self.slow_log.threshold_ms,
            "observed": self.slow_log.observed,
            "logged": len(self.slow_log),
        }
        snap["flight_recorder"] = get_flight_recorder().summary()
        return snap

    def slow_queries(self) -> list[SlowQuery]:
        """Statements that exceeded ``slow_query_ms``, oldest first."""
        return self.slow_log.entries()

    # -- the flight recorder (continuous telemetry) -------------------------------

    @property
    def flight_recorder(self) -> FlightRecorder:
        """The process-wide flight recorder this database reports from."""
        return get_flight_recorder()

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        since_seq: int = 0,
    ) -> list[RecordedEvent]:
        """Retained operational events, oldest first (optionally filtered)."""
        return get_flight_recorder().events(
            kind=kind, node=node, since_seq=since_seq
        )

    def profiles(self, n: Optional[int] = None) -> list[QueryProfile]:
        """The last *n* completed query profiles, oldest first."""
        return get_flight_recorder().profiles(n)

    def profile(self, query_id: str) -> Optional[QueryProfile]:
        """Replay one retained query's profile by its ``q-NNNNNN`` id."""
        return get_flight_recorder().profile(query_id)

    def sample(self) -> int:
        """Take one gauge-sampling pass over every watched grid now;
        returns the number of series updated.  Grids this database
        created are watched automatically; sampling never runs unless
        asked (or :meth:`FlightRecorder.start_sampling` was called)."""
        recorder = get_flight_recorder()
        self._watch_grids(recorder)
        return recorder.sample()

    def health(self) -> HealthReport:
        """Per-node and cluster status rolled up from live grid state
        and the flight recorder's event history."""
        return self._health.assess(
            dict(self._grids), recorder=get_flight_recorder()
        )

    def status(self) -> str:
        """The one-screen operational report (health, load, recent
        events, recent query profiles) — print it."""
        return status_text(
            self.health(),
            recorder=get_flight_recorder(),
            snapshot=self.metrics_snapshot(),
        )

    def prometheus(self) -> str:
        """The unified metrics snapshot in Prometheus text exposition."""
        return prometheus_text(self.metrics_snapshot())

    def events_jsonl(self) -> str:
        """The retained event ring as JSON Lines (one event per line)."""
        return events_jsonl(self.events())

    def _watch_grids(self, recorder: FlightRecorder) -> None:
        for name, grid in self._grids.items():
            recorder.watch_grid(name, grid)

    def _observed_grids(self) -> list[Grid]:
        """Named grids plus any grid reachable through a registered
        distributed array (deduplicated by identity)."""
        from .cluster.grid import DistributedArray

        seen: dict[int, Grid] = {id(g): g for g in self._grids.values()}
        for arr in self.executor.arrays.values():
            if isinstance(arr, DistributedArray):
                seen.setdefault(id(arr.grid), arr.grid)
        return list(seen.values())

    def _describe_ref(self, name: str) -> dict[str, Any]:
        """Catalog annotations for a scan leaf in an explain report."""
        from .cluster.grid import DistributedArray

        arr = self.executor.arrays.get(name)
        if isinstance(arr, DistributedArray):
            # Logical cell count: the union of live partitions' stored
            # addresses (in-memory snapshots, no reads metered), so
            # replicas are not double-counted the way cell_count() —
            # deliberately a *balance* metric — counts them.
            seen: set = set()
            for node in arr.grid.nodes:
                if node.alive:
                    seen.update(node.partition(arr.name).live_coords())
            return {
                "cells": len(seen),
                "nodes": len(arr.grid.nodes),
                "distributed": True,
            }
        if isinstance(arr, SciArray):
            return {"cells": arr.count_occupied()}
        return {}

    # -- catalog ---------------------------------------------------------------------

    def register(self, name: str, array: SciArray) -> SciArray:
        return self.executor.register(name, array)

    def lookup(self, name: str) -> SciArray:
        return self.executor.lookup(name)

    def arrays(self) -> list[str]:
        return sorted(self.executor.arrays)

    # -- updatable arrays and versions (Sections 2.5, 2.11) ----------------------------

    def create_updatable(
        self,
        schema: ArraySchema,
        bounds: Optional[Sequence[Union[int, str]]] = None,
        name: Optional[str] = None,
    ) -> UpdatableArray:
        """Create a no-overwrite, time-travelled array and register it."""
        arr = UpdatableArray(schema, bounds=list(bounds) if bounds else None,
                             name=name)
        if arr.name in self._updatable:
            raise SchemaError(f"updatable array {arr.name!r} already exists")
        self._updatable[arr.name] = arr
        if self.wal is not None:
            self.wal.log_create_updatable(arr)
            self.wal.commit()

            def durable_commit(array, history, writes, _wal=self.wal):
                _wal.log_commit(array.name, history, writes)
                _wal.commit()

            arr.on_commit = durable_commit
        return arr

    def recover(self) -> list[str]:
        """Replay the write-ahead log after a crash (Section 2.9's service
        contrast: loaded data gets recovery; in-situ data does not).

        Reconstructs every WAL-logged updatable array — full history,
        deletion flags, and all — re-arms their durability hooks, and
        returns the recovered names.
        """
        if self.wal is None:
            raise SchemaError("this SciDB instance has no storage directory")
        recovered = self.wal.recover_updatable()
        for name, arr in recovered.items():
            self._updatable[name] = arr

            def durable_commit(array, history, writes, _wal=self.wal):
                _wal.log_commit(array.name, history, writes)
                _wal.commit()

            arr.on_commit = durable_commit
        return sorted(recovered)

    def updatable(self, name: str) -> UpdatableArray:
        try:
            return self._updatable[name]
        except KeyError:
            raise SchemaError(f"no updatable array named {name!r}") from None

    def create_version(
        self, base_name: str, version_name: str,
        parent: Optional[str] = None,
    ) -> Version:
        """Create a named version off an updatable array (Section 2.11)."""
        tree = self._version_trees.get(base_name)
        if tree is None:
            tree = VersionTree(self.updatable(base_name))
            self._version_trees[base_name] = tree
        return tree.create(version_name, parent=parent)

    def version(self, base_name: str, version_name: str) -> Version:
        tree = self._version_trees.get(base_name)
        if tree is None:
            raise VersionError(f"array {base_name!r} has no versions")
        return tree.get(version_name)

    # -- durable storage (Section 2.8) ---------------------------------------------------

    def persist(self, name: str, stride: Optional[Sequence[int]] = None,
                codec: str = "auto") -> int:
        """Spill a catalog array to bucketed disk storage; returns cells
        written."""
        if self.storage is None:
            raise SchemaError("this SciDB instance has no storage directory")
        array = self.lookup(name)
        pa = self.storage.create_array(
            name, array.schema, stride=stride, codec=codec
        )
        n = 0
        for coords, cell in array.cells():
            pa.append(coords, None if cell is None else cell.values)
            n += 1
        pa.flush()
        return n

    def ingest(
        self,
        name: str,
        stream: "Iterable[LoadRecord] | InSituArray",
        schema: Optional[ArraySchema] = None,
        batch_size: int = 64,
        tolerant: bool = True,
        quarantine: Optional[QuarantineStore] = None,
        load_epoch: int = 0,
        max_retries: int = 3,
    ) -> LoadReport:
        """Crash-safe bulk load into a persisted, catalogued array.

        *stream* is an iterable of
        :class:`~repro.storage.loader.LoadRecord` or an attached
        :class:`~repro.storage.insitu.InSituArray` (whose offset-tagged
        record stream and schema are used directly).  Batches of
        *batch_size* records commit atomically to durable storage; calling
        :meth:`ingest` again with the same *name*, stream, and
        *load_epoch* after a crash resumes from the last committed batch
        instead of reloading from record zero.  In the default tolerant
        mode malformed records are quarantined — inspect them afterwards
        via :meth:`quarantined`.

        The loaded array is (re)registered in the query catalog, and the
        :class:`~repro.storage.loader.LoadReport` is returned.
        """
        if self.storage is None:
            raise SchemaError("this SciDB instance has no storage directory")
        if isinstance(stream, InSituArray):
            schema = schema or stream.schema
            stream = stream.records()
        if schema is None:
            target = self.storage.get_array(name)
        else:
            target = self.storage.ensure_array(name, schema)
        loader = BulkLoader(
            {0: target},
            batch_size=batch_size,
            load_epoch=load_epoch,
            tolerant=tolerant,
            quarantine=quarantine,
            max_retries=max_retries,
        )
        with loader:
            loader.load(stream)
        report = loader.report()
        self.executor.arrays[name] = target.to_sciarray(name)
        if report.quarantine is not None:
            self._quarantines[name] = report.quarantine
        return report

    def quarantined(self, name: str) -> Optional[QuarantineStore]:
        """Quarantined records from the last :meth:`ingest` of *name*
        (``None`` if it has never been tolerantly ingested)."""
        return self._quarantines.get(name)

    def restore(self, name: str) -> SciArray:
        """Materialise a persisted array back into the catalog."""
        if self.storage is None:
            raise SchemaError("this SciDB instance has no storage directory")
        arr = self.storage.get_array(name).to_sciarray(name)
        self.executor.arrays[name] = arr
        return arr

    # -- the shared-nothing grid (Section 2.7) ---------------------------------------------

    def create_grid(
        self,
        name: str = "grid",
        n_nodes: int = 4,
        replication: int = 1,
        fault_injector: Optional[FaultInjector] = None,
        memory_budget: int = 1 << 20,
        parallelism: Optional[int] = None,
        chunk_cache_bytes: int = 8 << 20,
        resilience: Optional[ResiliencePolicy] = None,
        hedge_delay_ms: Optional[float] = None,
    ) -> Grid:
        """Create a named shared-nothing grid rooted under this database.

        ``replication`` sets the grid's default replica factor — with
        k > 1 every loaded cell lands on k sites and queries survive
        (k - 1)-site failures per replica chain; see
        :mod:`repro.cluster.replication`.  A seeded
        :class:`~repro.cluster.faults.FaultInjector` can be attached for
        deterministic failure drills; drills run at full parallelism (the
        injector is thread-safe with keyed randomness).

        ``parallelism`` bounds the intra-query partition fan-out (default:
        ``min(8, n_nodes)``).  ``chunk_cache_bytes`` sizes each node's
        decompressed-chunk LRU cache (0 disables it).  ``resilience``
        overrides the grid's retry/breaker/hedge bundle
        (:class:`~repro.cluster.resilience.ResiliencePolicy`);
        ``hedge_delay_ms`` enables hedged backup reads against the next
        replica after that many milliseconds without an answer.
        """
        if self.directory is None:
            raise SchemaError("this SciDB instance has no storage directory")
        if name in self._grids:
            raise SchemaError(f"grid {name!r} already exists")
        grid = Grid(
            n_nodes,
            self.directory / "grids" / name,
            memory_budget=memory_budget,
            fault_injector=fault_injector,
            default_replication=replication,
            parallelism=parallelism,
            chunk_cache_bytes=chunk_cache_bytes,
            resilience=resilience,
            hedge_delay_ms=hedge_delay_ms,
        )
        self._grids[name] = grid
        get_flight_recorder().watch_grid(name, grid)
        return grid

    def grid(self, name: str = "grid") -> Grid:
        try:
            return self._grids[name]
        except KeyError:
            raise SchemaError(f"no grid named {name!r}") from None

    def grids(self) -> list[str]:
        return sorted(self._grids)

    # -- in-situ data (Section 2.9) --------------------------------------------------------

    def attach(self, path: "str | Path", name: Optional[str] = None,
               **options: Any) -> InSituArray:
        """Attach an external file through its adaptor — no load stage.

        The adaptor is *not* entered in the query catalog (it lacks the
        DBMS services the catalog implies); call ``.load()`` on it and
        :meth:`register` the result to promote it.
        """
        adaptor = open_in_situ(path, **options)
        if name:
            adaptor.name = name
        return adaptor

    # -- provenance (Section 2.12) ------------------------------------------------------------

    def derivation_log(self) -> str:
        return self.provenance.log.describe()

    def trace_backward(self, array: str, coords: tuple) -> list:
        return trace_backward(self.provenance, self._trace_item(array, coords))

    def trace_forward(self, array: str, coords: tuple) -> set[Item]:
        return trace_forward(self.provenance, self._trace_item(array, coords))

    def _trace_item(self, array: Any, coords: Any) -> tuple[str, tuple]:
        """Validate a lineage query's target; typed errors on junk."""
        if not isinstance(array, str):
            raise ProvenanceError(
                f"array name must be a string, got {type(array).__name__}"
            )
        if (
            array not in self.provenance.catalog
            and array not in self.executor.arrays
        ):
            raise ProvenanceError(
                f"no array named {array!r} in the catalog"
            )
        if isinstance(coords, (str, bytes)) or not hasattr(coords, "__iter__"):
            raise ProvenanceError(
                "coordinates must be an iterable of integers, got "
                f"{type(coords).__name__}"
            )
        try:
            cell = tuple(int(v) for v in coords)
        except (TypeError, ValueError):
            raise ProvenanceError(
                f"malformed coordinates {coords!r}: expected integers"
            ) from None
        return array, cell

    def __repr__(self) -> str:
        where = self.directory or "memory"
        return (
            f"<SciDB at {where}: {len(self.executor.arrays)} arrays, "
            f"{len(self.provenance.log)} logged commands>"
        )
