"""No-overwrite storage, time travel, and named versions (Sections 2.5,
2.11).

Scientists "are adamant about not discarding any data": updatable arrays
never update in place.  Every transaction commit advances an implicit
``history`` dimension; updates, insertions and deletion *flags* are
recorded as deltas at the new history value, and old values remain
addressable forever (provenance).  Named versions extend the same delta
machinery sideways: a version is a near-zero-space delta off a parent
array, organised into trees.

* :mod:`repro.history.transactions` — :class:`UpdatableArray` and its
  transactions
* :mod:`repro.history.timetravel` — snapshots, cell histories, as-of reads
* :mod:`repro.history.versions` — named version trees
"""

from .transactions import DELETED, Transaction, UpdatableArray
from .timetravel import cell_history, snapshot
from .versions import Version, VersionTree

__all__ = [
    "UpdatableArray",
    "Transaction",
    "DELETED",
    "snapshot",
    "cell_history",
    "Version",
    "VersionTree",
]
