"""No-overwrite transactions over updatable arrays (Section 2.5).

The paper's scheme, implemented literally:

* every updatable array carries an implicit, unbounded ``history``
  dimension (added automatically by the schema layer);
* "An initial transaction adds values into appropriate cells for
  history = 1.  The first subsequent SciDB transaction adds new values in
  the appropriate cells for history = 2. ... Thereafter, every transaction
  adds new array values for the next value of the history dimension";
* "A delete operation removes a cell from an array and in the obvious
  implementation based on deltas, one would insert a deletion-flag as the
  delta" — :data:`DELETED` is that flag;
* the history dimension can be enhanced with a wall-clock mapping
  (:class:`~repro.core.enhance.WallClockEnhancement`), so arrays are
  addressable by conventional time.

Reads default to the latest state; ``as_of=h`` reads the state as of any
earlier history value, and :meth:`UpdatableArray.cell_history` walks a
cell's full change record — the paper's "travels along the history
dimension".
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterator, Optional

from ..core.array import SciArray
from ..core.cells import Cell
from ..core.enhance import WallClockEnhancement
from ..core.errors import EmptyCellError, TransactionError
from ..core.schema import ArraySchema, HISTORY_DIMENSION

__all__ = ["DELETED", "Transaction", "UpdatableArray"]

Coords = tuple[int, ...]


class _DeletedFlag:
    """Singleton deletion flag stored as a delta (Section 2.5)."""

    _instance: Optional["_DeletedFlag"] = None

    def __new__(cls) -> "_DeletedFlag":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<DELETED>"


DELETED = _DeletedFlag()


class UpdatableArray:
    """A no-overwrite, time-travelled array.

    Parameters
    ----------
    schema:
        A *bound* updatable schema whose last dimension is ``history``
        (unbounded).  Use ``define_array(..., updatable=True).bind(bounds)``
        or pass an unbound updatable schema plus *bounds*.
    """

    def __init__(
        self,
        schema: ArraySchema,
        bounds: Optional[list] = None,
        name: Optional[str] = None,
    ) -> None:
        if bounds is not None or not schema.has_history:
            schema = schema.bind(
                bounds
                if bounds is not None
                else [d.size if d.size else "*" for d in schema.dimensions]
            )
        if not schema.updatable or not schema.has_history:
            raise TransactionError(
                "UpdatableArray requires an updatable schema (with its "
                "implicit history dimension)"
            )
        if schema.dim_names[-1] != HISTORY_DIMENSION:
            raise TransactionError("the history dimension must come last")
        self.schema = schema
        self.name = name or schema.name
        self.store = SciArray(schema, name=self.name)
        #: Deletion flags: (cell coords, history) tuples.
        self._tombstones: set[tuple[Coords, int]] = set()
        self.current_history = 0
        self._open_txn: Optional[Transaction] = None
        self.wallclock = WallClockEnhancement(self.store)
        self.store.enhancements.append(self.wallclock)
        #: Optional durability hook: called after every commit with
        #: (array, history_value, writes_dict) — writes map cell coords to
        #: a value tuple, ``None`` (NULL), or :data:`DELETED`.  The SciDB
        #: facade uses it to write-ahead-log commits.
        self.on_commit: Optional[Any] = None

    # -- dimensional bookkeeping -----------------------------------------------

    @property
    def cell_ndim(self) -> int:
        """Dimensions excluding history."""
        return self.schema.ndim - 1

    def _check_cell_coords(self, coords: Coords) -> Coords:
        if len(coords) != self.cell_ndim:
            raise TransactionError(
                f"cell address needs {self.cell_ndim} coordinates "
                f"(history is implicit), got {len(coords)}"
            )
        return tuple(int(c) for c in coords)

    # -- transactions -------------------------------------------------------------

    def begin(self) -> "Transaction":
        if self._open_txn is not None:
            raise TransactionError(
                f"array {self.name!r} already has an open transaction"
            )
        self._open_txn = Transaction(self)
        return self._open_txn

    def transaction(self) -> "Transaction":
        """Alias for :meth:`begin`, usable as a context manager."""
        return self.begin()

    # -- reads ------------------------------------------------------------------------

    def get(self, *coords: int, as_of: Optional[int] = None) -> Optional[Cell]:
        """Latest (or as-of) value of a cell; EMPTY/deleted cells raise."""
        cell_coords = self._check_cell_coords(
            coords[0] if len(coords) == 1 and isinstance(coords[0], tuple)
            else tuple(coords)
        )
        horizon = self.current_history if as_of is None else as_of
        if horizon < 1:
            raise EmptyCellError(f"no history at or before {as_of}")
        for h in range(min(horizon, self.current_history), 0, -1):
            if (cell_coords, h) in self._tombstones:
                raise EmptyCellError(
                    f"cell {cell_coords} of {self.name!r} deleted at history {h}"
                )
            if self.store.exists(cell_coords + (h,)):
                return self.store.get(cell_coords + (h,))
        raise EmptyCellError(
            f"cell {cell_coords} of {self.name!r} empty as of history {horizon}"
        )

    def get_or_none(self, *coords: int, as_of: Optional[int] = None) -> Optional[Cell]:
        try:
            return self.get(*coords, as_of=as_of)
        except EmptyCellError:
            return None

    def exists(self, *coords: int, as_of: Optional[int] = None) -> bool:
        try:
            self.get(*coords, as_of=as_of)
        except EmptyCellError:
            return False
        return True

    def get_as_of_time(self, coords: Coords, when: _dt.datetime) -> Optional[Cell]:
        """Wall-clock as-of read (Section 2.5's enhancement in action)."""
        return self.get(tuple(coords), as_of=self.wallclock.to_basic_history(when))

    def cell_history(self, coords: Coords) -> Iterator[tuple[int, Any]]:
        """Walk a cell along the history dimension: (history, value) pairs.

        Values are :class:`Cell` records, ``None`` for NULL deltas, or
        :data:`DELETED` for deletion flags — "the history of activity to
        the cell".
        """
        cell_coords = self._check_cell_coords(tuple(coords))
        for h in range(1, self.current_history + 1):
            if (cell_coords, h) in self._tombstones:
                yield h, DELETED
            elif self.store.exists(cell_coords + (h,)):
                yield h, self.store.get(cell_coords + (h,))

    def latest_cells(
        self, as_of: Optional[int] = None
    ) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """Iterate the visible (non-deleted) state as of a history value."""
        horizon = self.current_history if as_of is None else as_of
        best: dict[Coords, int] = {}
        for coords, _cell in self.store.cells():
            cell_coords, h = coords[:-1], coords[-1]
            if h <= horizon and h > best.get(cell_coords, 0):
                best[cell_coords] = h
        for (cell_coords, h) in self._tombstones:
            if h <= horizon and h > best.get(cell_coords, 0):
                best[cell_coords] = -h  # negative marks deletion as newest
        for cell_coords in sorted(best):
            h = best[cell_coords]
            if h < 0:
                continue
            yield cell_coords, self.store.get(cell_coords + (h,))

    def delta_count(self) -> int:
        """Stored deltas across all history (the no-overwrite space cost)."""
        return self.store.count_occupied() + len(self._tombstones)

    def __repr__(self) -> str:
        return (
            f"<UpdatableArray {self.name!r} history={self.current_history} "
            f"deltas={self.delta_count()}>"
        )


class Transaction:
    """One atomic batch of updates/inserts/deletes.

    Buffers writes; :meth:`commit` assigns them all to the next history
    value.  Usable as a context manager (commits on clean exit, aborts on
    exception).
    """

    def __init__(self, array: UpdatableArray) -> None:
        self.array = array
        self._writes: dict[Coords, Any] = {}
        self._done = False

    def set(self, coords: Coords, values: Any) -> None:
        self._ensure_open()
        self._writes[self.array._check_cell_coords(tuple(coords))] = values

    def set_null(self, coords: Coords) -> None:
        self.set(coords, None)

    def delete(self, coords: Coords) -> None:
        """Record a deletion flag for this cell."""
        self._ensure_open()
        self._writes[self.array._check_cell_coords(tuple(coords))] = DELETED

    def commit(self, timestamp: Optional[_dt.datetime] = None) -> int:
        """Apply the batch at the next history value; returns it."""
        self._ensure_open()
        if not self._writes:
            raise TransactionError("refusing to commit an empty transaction")
        arr = self.array
        h = arr.current_history + 1
        normalized: dict[Coords, Any] = {}
        for coords, values in self._writes.items():
            if isinstance(values, Cell):
                values = values.values
            normalized[coords] = values
            if values is DELETED:
                arr._tombstones.add((coords, h))
            else:
                arr.store.set(coords + (h,), values)
        arr.current_history = h
        arr.wallclock.record_commit(
            timestamp if timestamp is not None else _synthetic_time(h)
        )
        if arr.on_commit is not None:
            arr.on_commit(arr, h, normalized)
        self._finish()
        return h

    def abort(self) -> None:
        self._ensure_open()
        self._writes.clear()
        self._finish()

    def _ensure_open(self) -> None:
        if self._done:
            raise TransactionError("transaction is already finished")

    def _finish(self) -> None:
        self._done = True
        self.array._open_txn = None

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        if exc_type is None and self._writes:
            self.commit()
        else:
            self.abort()


def _synthetic_time(history: int) -> _dt.datetime:
    """Deterministic wall-clock stand-in when the caller gives no
    timestamp (keeps tests and benchmarks reproducible)."""
    return _dt.datetime(2009, 1, 1) + _dt.timedelta(seconds=history)
