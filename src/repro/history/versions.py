"""Named versions: delta-based alternative data sets (Section 2.11).

The paper's use case: a scientist wants the same data set as a parent "for
much of the study region, but different in a portion" — e.g. a different
cloud-cover compositing algorithm over their study area.  The mechanism:

* "At a specific time, T, a user will be able to construct a version V from
  a base array A ... At time T, the version V is identical to A.  Since V
  is stored as a delta off its parent A, it consumes essentially no space."
* Reads: "it will first look in the delta array for V for the most recent
  value along the history dimension.  If there is no value in V, it will
  then look for the most recent value along the history dimension in A.
  In turn, if A is a version, it will repeat this process until it reaches
  a base array."
* "Hanging off any base array is a tree of named versions."

:class:`Version` pins the parent as of the creation history value T by
default (so later base commits don't silently change the version — the
snapshot reading of "at time T, V is identical to A"); pass
``follow_parent="latest"`` for the literal most-recent-value reading.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Union

from ..core.cells import Cell
from ..core.errors import EmptyCellError, VersionError
from ..core.schema import ArraySchema
from .transactions import DELETED, Transaction, UpdatableArray

__all__ = ["Version", "VersionTree"]

Coords = tuple[int, ...]
Parent = Union[UpdatableArray, "Version"]


class Version:
    """A named delta off a parent array (or another version).

    Do not construct directly; use :meth:`VersionTree.create` (which wires
    the tree structure) or :meth:`Version.branch`.
    """

    def __init__(
        self,
        name: str,
        parent: Parent,
        created_at: int,
        follow_parent: str = "creation",
    ) -> None:
        if follow_parent not in ("creation", "latest"):
            raise VersionError(
                "follow_parent must be 'creation' or 'latest', "
                f"got {follow_parent!r}"
            )
        self.name = name
        self.parent = parent
        #: The parent history value T at which this version was created.
        self.created_at = created_at
        self.follow_parent = follow_parent
        #: The delta: its own updatable array, initially empty.
        self.delta = UpdatableArray(
            _delta_schema(parent), name=f"{name}__delta"
        )
        self.children: list["Version"] = []

    # -- construction of children ------------------------------------------------

    def branch(self, name: str, follow_parent: str = "creation") -> "Version":
        """A version of this version (the paper's version *tree*)."""
        child = Version(
            name, self, created_at=self.delta.current_history,
            follow_parent=follow_parent,
        )
        self.children.append(child)
        return child

    # -- writes ----------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Open a transaction whose writes land in this version's delta."""
        return self.delta.begin()

    # -- reads ------------------------------------------------------------------------

    def get(self, *coords: int) -> Optional[Cell]:
        """Read through the delta chain: delta first, then the parent."""
        cell_coords = (
            coords[0]
            if len(coords) == 1 and isinstance(coords[0], tuple)
            else tuple(coords)
        )
        # 1. Most recent value along the delta's history dimension.
        last: Any = _NOTHING
        for _h, value in self.delta.cell_history(cell_coords):
            last = value
        if last is DELETED:
            raise EmptyCellError(
                f"cell {cell_coords} deleted in version {self.name!r}"
            )
        if last is not _NOTHING:
            return last
        # 2. Fall through to the parent (recursively to the base array).
        if isinstance(self.parent, Version):
            return self.parent.get(cell_coords)
        as_of = None if self.follow_parent == "latest" else self.created_at
        return self.parent.get(cell_coords, as_of=as_of)

    def get_or_none(self, *coords: int) -> Optional[Cell]:
        try:
            return self.get(*coords)
        except EmptyCellError:
            return None

    def exists(self, *coords: int) -> bool:
        try:
            self.get(*coords)
        except EmptyCellError:
            return False
        return True

    def cells(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """The version's full visible state (delta over parent)."""
        own: dict[Coords, Any] = {}
        for coords, _ in self.delta.latest_cells():
            own[coords] = True
        deleted = {
            c for (c, _h) in self.delta._tombstones
        }
        emitted: set[Coords] = set()
        for coords in sorted(own):
            emitted.add(coords)
            yield coords, self.get(coords)
        parent_cells: Iterator[tuple[Coords, Optional[Cell]]]
        if isinstance(self.parent, Version):
            parent_cells = self.parent.cells()
        else:
            as_of = None if self.follow_parent == "latest" else self.created_at
            parent_cells = self.parent.latest_cells(as_of=as_of)
        for coords, cell in parent_cells:
            if coords in emitted or coords in deleted:
                continue
            emitted.add(coords)
            yield coords, cell

    # -- accounting --------------------------------------------------------------------

    def delta_count(self) -> int:
        """Cells stored by this version itself — "essentially no space"
        when the divergence is small (experiment E4)."""
        return self.delta.delta_count()

    def chain_depth(self) -> int:
        depth = 1
        node: Parent = self.parent
        while isinstance(node, Version):
            depth += 1
            node = node.parent
        return depth

    def base(self) -> UpdatableArray:
        node: Parent = self.parent
        while isinstance(node, Version):
            node = node.parent
        return node

    def __repr__(self) -> str:
        return (
            f"<Version {self.name!r} off {getattr(self.parent, 'name', '?')!r} "
            f"at T={self.created_at}, {self.delta_count()} delta cells>"
        )


_NOTHING = object()


def _delta_schema(parent: Parent) -> ArraySchema:
    if isinstance(parent, Version):
        return parent.delta.schema
    return parent.schema


class VersionTree:
    """The registry of named versions hanging off one base array."""

    def __init__(self, base: UpdatableArray) -> None:
        self.base = base
        self._versions: dict[str, Version] = {}

    def create(
        self,
        name: str,
        parent: Optional["str | Version"] = None,
        follow_parent: str = "creation",
    ) -> Version:
        """Create version *name* off the base (default) or another version.

        Records the creation time T (the parent's current history value).
        """
        if name in self._versions:
            raise VersionError(f"version {name!r} already exists")
        if parent is None:
            v = Version(
                name, self.base, created_at=self.base.current_history,
                follow_parent=follow_parent,
            )
        else:
            parent_v = self.get(parent) if isinstance(parent, str) else parent
            v = parent_v.branch(name, follow_parent=follow_parent)
        self._versions[name] = v
        return v

    def get(self, name: str) -> Version:
        try:
            return self._versions[name]
        except KeyError:
            raise VersionError(f"no version named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._versions)

    def tree(self) -> dict[str, list[str]]:
        """parent name -> child names (base is keyed by its array name)."""
        out: dict[str, list[str]] = {self.base.name: []}
        for v in self._versions.values():
            pname = (
                v.parent.name if isinstance(v.parent, Version) else self.base.name
            )
            out.setdefault(pname, []).append(v.name)
            out.setdefault(v.name, [])
        return out

    def total_delta_cells(self) -> int:
        return sum(v.delta_count() for v in self._versions.values())
