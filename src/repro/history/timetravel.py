"""Time-travel helpers over updatable arrays (Section 2.5).

Thin, well-named wrappers around :class:`UpdatableArray`'s as-of machinery:
materialised snapshots and full cell histories, plus wall-clock snapshots
through the history dimension's clock enhancement.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterator, Optional

from ..core.array import SciArray
from ..core.errors import TransactionError
from ..core.schema import ArraySchema
from .transactions import UpdatableArray

__all__ = ["snapshot", "snapshot_at_time", "cell_history", "history_sizes"]

Coords = tuple[int, ...]


def _snapshot_schema(array: UpdatableArray) -> ArraySchema:
    """The non-history schema of a snapshot."""
    dims = array.schema.dimensions[:-1]
    from dataclasses import replace

    return replace(
        array.schema,
        name=f"{array.schema.name}_snapshot",
        dimensions=dims,
        updatable=False,
    )


def snapshot(array: UpdatableArray, as_of: Optional[int] = None) -> SciArray:
    """Materialise the visible state as of a history value.

    ``as_of=None`` means the latest state.  Deleted cells are absent;
    NULL deltas remain NULL.
    """
    horizon = array.current_history if as_of is None else as_of
    if horizon < 0:
        raise TransactionError(f"invalid history horizon {as_of}")
    out = SciArray(_snapshot_schema(array), name=f"{array.name}@{horizon}")
    for coords, cell in array.latest_cells(as_of=horizon):
        out.set(coords, cell)
    return out


def snapshot_at_time(array: UpdatableArray, when: _dt.datetime) -> SciArray:
    """Materialise the state as of a wall-clock instant (Section 2.5's
    'addressed using conventional time')."""
    return snapshot(array, as_of=array.wallclock.to_basic_history(when))


def cell_history(array: UpdatableArray, coords: Coords) -> list[tuple[int, Any]]:
    """The full change record of one cell, oldest first."""
    return list(array.cell_history(coords))


def history_sizes(array: UpdatableArray) -> dict[int, int]:
    """Deltas recorded per history value — the write-amplification shape
    reported by experiment E3."""
    sizes: dict[int, int] = {h: 0 for h in range(1, array.current_history + 1)}
    for coords, _ in array.store.cells():
        sizes[coords[-1]] = sizes.get(coords[-1], 0) + 1
    for _, h in array._tombstones:
        sizes[h] = sizes.get(h, 0) + 1
    return sizes
