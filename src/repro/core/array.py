"""The multidimensional array container at the heart of the engine.

:class:`SciArray` realises the paper's data model (Section 2.1):

* named, 1-based integer dimensions, bounded (1..N) or unbounded (``*``),
  with unbounded dimensions growing as cells are written;
* every cell holds a record of typed values (scalars and/or nested arrays),
  addressed as ``A[7, 8]`` and ``A[7, 8].x``;
* cells may be PRESENT, NULL (Filter output), or EMPTY (sparse / never
  written) — ``Exists?`` distinguishes the last;
* arrays may carry *enhancements* (coordinate transforms, Section 2.1),
  addressed through :attr:`SciArray.mapped` — the Python rendering of the
  paper's ``A{20, 50}`` brace syntax;
* arrays may carry a *shape function* restricting their ragged extent.

Storage is chunked: the array is tiled into fixed-stride rectangular chunks,
each holding a numpy array per attribute plus a per-cell state mask.  The
same chunks are what the storage manager spills to disk as "buckets"
(Section 2.8) and what the grid layer scatters across nodes (Section 2.7).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from .cells import Cell, CellState
from .datatypes import ScalarType
from .errors import BoundsError, EmptyCellError, SchemaError, TypeMismatchError
from .schema import ArraySchema, Attribute, Dimension

__all__ = ["SciArray", "Chunk", "DEFAULT_CHUNK_SIDE"]

#: Default chunk stride per dimension.  Small enough that toy examples span
#: several chunks (exercising chunk logic), large enough for bulk speed.
DEFAULT_CHUNK_SIDE = 32

Coords = tuple[int, ...]
CellValue = Union[Cell, tuple, dict, Any]


class Chunk:
    """One rectangular tile of an array.

    ``origin`` is the 1-based coordinate of the chunk's first cell; the
    chunk covers ``origin[d] .. origin[d] + shape[d] - 1`` on each dimension.
    ``state`` is a uint8 mask over :class:`~repro.core.cells.CellState`
    values; ``data`` maps attribute name to a numpy array of ``shape``.
    """

    __slots__ = ("origin", "shape", "state", "data")

    def __init__(
        self,
        origin: Coords,
        shape: tuple[int, ...],
        attributes: Sequence[Attribute],
    ) -> None:
        self.origin = origin
        self.shape = shape
        self.state = np.zeros(shape, dtype=np.uint8)
        self.data: dict[str, np.ndarray] = {}
        for attr in attributes:
            if isinstance(attr.type, ScalarType) and attr.type.numpy_dtype != object:
                arr = np.zeros(shape, dtype=attr.type.numpy_dtype)
            else:
                arr = np.empty(shape, dtype=object)
            self.data[attr.name] = arr

    @property
    def present_count(self) -> int:
        return int(np.count_nonzero(self.state == CellState.PRESENT))

    @property
    def occupied_count(self) -> int:
        """Cells that are PRESENT or NULL (i.e. not EMPTY)."""
        return int(np.count_nonzero(self.state != CellState.EMPTY))

    def nbytes(self) -> int:
        import sys

        total = self.state.nbytes
        for arr in self.data.values():
            if arr.dtype == object:
                total += arr.size * 8  # one pointer per slot
                occupied = self.state != CellState.EMPTY
                for v in arr[occupied]:
                    if v is not None:
                        total += sys.getsizeof(v)
            else:
                total += arr.nbytes
        return total

    def bounding_box(self) -> tuple[Coords, Coords]:
        """1-based (low, high) corners of this chunk's coverage."""
        high = tuple(o + s - 1 for o, s in zip(self.origin, self.shape))
        return self.origin, high


class SciArray:
    """A concrete array instance (the result of ``create``).

    Parameters
    ----------
    schema:
        A fully bound :class:`~repro.core.schema.ArraySchema` (every
        dimension either sized or deliberately unbounded).
    name:
        Instance name, used in logs, provenance and the catalog.
    chunk_shape:
        Stride of the storage chunks per dimension; defaults to
        :data:`DEFAULT_CHUNK_SIDE` on every dimension.
    """

    def __init__(
        self,
        schema: ArraySchema,
        name: Optional[str] = None,
        chunk_shape: Optional[Sequence[int]] = None,
    ) -> None:
        self.schema = schema
        self.name = name or schema.name
        if chunk_shape is None:
            chunk_shape = tuple(
                min(DEFAULT_CHUNK_SIDE, d.size) if d.size else DEFAULT_CHUNK_SIDE
                for d in schema.dimensions
            )
        chunk_shape = tuple(int(c) for c in chunk_shape)
        if len(chunk_shape) != schema.ndim:
            raise SchemaError(
                f"chunk_shape has {len(chunk_shape)} entries for a "
                f"{schema.ndim}-dimensional array"
            )
        if any(c < 1 for c in chunk_shape):
            raise SchemaError("chunk sides must be positive")
        self.chunk_shape = chunk_shape
        self._chunks: dict[Coords, Chunk] = {}
        # High-water marks: max written coordinate per dimension (for
        # unbounded dims); bounded dims report their declared size.
        self._high_water = [0] * schema.ndim
        # Enhancements (Section 2.1) are attached by repro.core.enhance.
        self.enhancements: list[Any] = []
        # Optional shape function (ragged arrays) attached by repro.core.shape.
        self.shape_function: Optional[Any] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.schema.ndim

    @property
    def dim_names(self) -> tuple[str, ...]:
        return self.schema.dim_names

    @property
    def attr_names(self) -> tuple[str, ...]:
        return self.schema.attr_names

    def high_water(self, dim: "int | str") -> int:
        """Current high-water mark of a dimension (1-based; 0 when empty).

        Bounded dimensions report their declared size; unbounded ones the
        maximum coordinate written so far.
        """
        idx = self.schema.dim_index(dim) if isinstance(dim, str) else dim
        declared = self.schema.dimensions[idx].size
        if declared is not None:
            return declared
        return self._high_water[idx]

    @property
    def bounds(self) -> tuple[int, ...]:
        """Per-dimension high-water marks (see :meth:`high_water`)."""
        return tuple(self.high_water(i) for i in range(self.ndim))

    def count_present(self) -> int:
        return sum(c.present_count for c in self._chunks.values())

    def count_occupied(self) -> int:
        return sum(c.occupied_count for c in self._chunks.values())

    def nbytes(self) -> int:
        return sum(c.nbytes() for c in self._chunks.values())

    def chunk_count(self) -> int:
        return len(self._chunks)

    def chunks(self) -> Iterator[Chunk]:
        return iter(self._chunks.values())

    # ------------------------------------------------------------------
    # coordinate plumbing
    # ------------------------------------------------------------------

    def _normalize_coords(self, key: Any) -> Coords:
        """Accept ``a[7, 8]``, ``a[(7, 8)]``, ``a[7]`` (1-D), or the verbose
        named form ``a[dict(I=7, J=8)]`` and return a 1-based tuple."""
        if isinstance(key, Mapping):
            missing = set(self.dim_names) - set(key)
            if missing:
                raise BoundsError(f"missing coordinates for dimensions {sorted(missing)}")
            extra = set(key) - set(self.dim_names)
            if extra:
                raise BoundsError(f"unknown dimensions {sorted(extra)}")
            key = tuple(key[d] for d in self.dim_names)
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) != self.ndim:
            raise BoundsError(
                f"array {self.name!r} has {self.ndim} dimensions, "
                f"address has {len(key)}"
            )
        coords = []
        for c in key:
            if isinstance(c, (bool, float)) or not isinstance(c, (int, np.integer)):
                raise BoundsError(f"dimension values must be integers, got {c!r}")
            coords.append(int(c))
        return tuple(coords)

    def _check_bounds(self, coords: Coords, *, writing: bool) -> None:
        for i, (dim, c) in enumerate(zip(self.schema.dimensions, coords)):
            if c < 1:
                raise BoundsError(
                    f"coordinate {c} on dimension {dim.name!r} (dimensions are 1-based)"
                )
            if dim.size is not None and c > dim.size:
                raise BoundsError(
                    f"coordinate {c} exceeds bound {dim.size} on dimension {dim.name!r}"
                )
        if self.shape_function is not None and not self.shape_function.contains(coords):
            raise BoundsError(
                f"coordinate {coords} lies outside the array's shape function"
            )

    def _chunk_key(self, coords: Coords) -> tuple[Coords, Coords]:
        """Map 1-based cell coords to (chunk key, offset-within-chunk)."""
        key = []
        offset = []
        for c, s in zip(coords, self.chunk_shape):
            q, r = divmod(c - 1, s)
            key.append(q)
            offset.append(r)
        return tuple(key), tuple(offset)

    def _chunk_for(self, coords: Coords, create: bool) -> Optional[Chunk]:
        key, _ = self._chunk_key(coords)
        chunk = self._chunks.get(key)
        if chunk is None and create:
            origin = tuple(k * s + 1 for k, s in zip(key, self.chunk_shape))
            chunk = Chunk(origin, self.chunk_shape, self.schema.attributes)
            self._chunks[key] = chunk
        return chunk

    def _bump_high_water(self, coords: Coords) -> None:
        for i, c in enumerate(coords):
            if c > self._high_water[i]:
                self._high_water[i] = c

    # ------------------------------------------------------------------
    # cell reads and writes
    # ------------------------------------------------------------------

    def exists(self, *key: Any) -> bool:
        """The paper's ``Exists? [A, 7, 7]`` — true iff the cell is occupied
        (PRESENT or NULL), false for EMPTY or out-of-range addresses."""
        coords = self._normalize_coords(key[0] if len(key) == 1 else tuple(key))
        try:
            self._check_bounds(coords, writing=False)
        except BoundsError:
            return False
        chunk = self._chunk_for(coords, create=False)
        if chunk is None:
            return False
        _, off = self._chunk_key(coords)
        return chunk.state[off] != CellState.EMPTY

    def get(self, *key: Any) -> Optional[Cell]:
        """Read a cell: a :class:`Cell` if PRESENT, ``None`` if NULL.

        EMPTY cells raise :class:`EmptyCellError`; use :meth:`exists` to
        probe first, or :meth:`get_or_none`.
        """
        coords = self._normalize_coords(key[0] if len(key) == 1 else tuple(key))
        self._check_bounds(coords, writing=False)
        chunk = self._chunk_for(coords, create=False)
        _, off = self._chunk_key(coords)
        if chunk is None or chunk.state[off] == CellState.EMPTY:
            raise EmptyCellError(f"cell {coords} of array {self.name!r} is empty")
        if chunk.state[off] == CellState.NULL:
            return None
        values = [self._load_value(chunk.data[a.name][off], a)
                  for a in self.schema.attributes]
        return Cell(self.attr_names, values)

    def get_or_none(self, *key: Any) -> Optional[Cell]:
        """Like :meth:`get` but EMPTY reads return ``None`` too."""
        try:
            return self.get(*key)
        except (EmptyCellError, BoundsError):
            return None

    def __getitem__(self, key: Any) -> Optional[Cell]:
        return self.get(key)

    def __setitem__(self, key: Any, value: CellValue) -> None:
        self.set(key, value)

    def set(self, key: Any, value: CellValue) -> None:
        """Write a record into a cell.

        *value* may be a :class:`Cell`, a tuple in attribute order, a dict
        keyed by attribute name, or — for single-attribute arrays — the bare
        scalar.  ``None`` stores NULL (equivalent to :meth:`set_null`).
        """
        coords = self._normalize_coords(key)
        self._check_bounds(coords, writing=True)
        chunk = self._chunk_for(coords, create=True)
        _, off = self._chunk_key(coords)
        if value is None:
            chunk.state[off] = CellState.NULL
            self._bump_high_water(coords)
            return
        values = self._normalize_record(value)
        for attr, v in zip(self.schema.attributes, values):
            chunk.data[attr.name][off] = self._store_value(v, attr)
        chunk.state[off] = CellState.PRESENT
        self._bump_high_water(coords)

    def set_null(self, key: Any) -> None:
        """Store an explicit NULL (Filter's false-predicate output)."""
        self.set(key, None)

    def set_unchecked(self, coords: Coords, values: "Optional[tuple]") -> None:
        """Trusted write path for operator inner loops.

        Skips coordinate normalisation and type validation — callers must
        pass a 1-based in-bounds tuple and a value tuple already conforming
        to the schema (e.g. values read out of another array with the same
        record type).  ``None`` stores NULL.
        """
        # _chunk_for + _chunk_key would derive the key twice; this loop is
        # the per-cell floor of every gather and operator inner loop, so
        # compute it once inline.
        key = []
        off = []
        for c, s in zip(coords, self.chunk_shape):
            q, r = divmod(c - 1, s)
            key.append(q)
            off.append(r)
        key = tuple(key)
        off = tuple(off)
        chunk = self._chunks.get(key)
        if chunk is None:
            origin = tuple(
                k * s + 1 for k, s in zip(key, self.chunk_shape)
            )
            chunk = Chunk(origin, self.chunk_shape, self.schema.attributes)
            self._chunks[key] = chunk
        if values is None:
            chunk.state[off] = CellState.NULL
        else:
            data = chunk.data
            for name, v in zip(self.attr_names, values):
                data[name][off] = v
            chunk.state[off] = CellState.PRESENT
        hw = self._high_water
        for i, c in enumerate(coords):
            if c > hw[i]:
                hw[i] = c

    def delete(self, key: Any) -> None:
        """Return a cell to the EMPTY state.

        Note that on *updatable* arrays the transaction layer never calls
        this on old history slices — it records a deletion flag in the next
        history slice instead (Section 2.5).
        """
        coords = self._normalize_coords(key)
        self._check_bounds(coords, writing=True)
        chunk = self._chunk_for(coords, create=False)
        if chunk is None:
            return
        _, off = self._chunk_key(coords)
        chunk.state[off] = CellState.EMPTY

    def _normalize_record(self, value: CellValue) -> tuple:
        attrs = self.schema.attributes
        if isinstance(value, Cell):
            if value.names == self.attr_names:
                return value.values
            try:
                return tuple(getattr(value, a.name) for a in attrs)
            except AttributeError as exc:
                raise TypeMismatchError(str(exc)) from exc
        if isinstance(value, Mapping):
            missing = set(self.attr_names) - set(value)
            if missing:
                raise TypeMismatchError(f"record missing components {sorted(missing)}")
            return tuple(value[a.name] for a in attrs)
        if isinstance(value, tuple):
            if len(value) != len(attrs):
                # A (value, sigma) pair written to a single uncertain
                # attribute is the value, not a 2-component record.
                only = attrs[0].type if len(attrs) == 1 else None
                if (
                    isinstance(only, ScalarType)
                    and only.is_uncertain
                    and len(value) == 2
                ):
                    return (value,)
                raise TypeMismatchError(
                    f"record has {len(value)} components, schema has {len(attrs)}"
                )
            return value
        if len(attrs) == 1:
            return (value,)
        raise TypeMismatchError(
            f"cannot interpret {value!r} as a record with components "
            f"{self.attr_names}"
        )

    def _store_value(self, value: Any, attr: Attribute) -> Any:
        if isinstance(attr.type, ArraySchema):
            if value is None:
                return None
            if isinstance(value, SciArray):
                if value.schema.attr_names != attr.type.attr_names:
                    raise TypeMismatchError(
                        f"nested array for {attr.name!r} has components "
                        f"{value.schema.attr_names}, expected {attr.type.attr_names}"
                    )
                return value
            raise TypeMismatchError(
                f"component {attr.name!r} expects a nested array, got "
                f"{type(value).__name__}"
            )
        return attr.type.validate(value)

    def _load_value(self, raw: Any, attr: Attribute) -> Any:
        if isinstance(attr.type, ArraySchema):
            return raw
        if attr.type.numpy_dtype != object and isinstance(raw, np.generic):
            return raw.item()
        return raw

    # ------------------------------------------------------------------
    # bulk (vectorised) region I/O
    # ------------------------------------------------------------------

    def set_region(
        self,
        origin: Coords,
        values: Mapping[str, np.ndarray],
        null_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Write a dense block of cells in one call.

        ``origin`` is the 1-based coordinate of the block's first cell.
        Every array in *values* must share one shape; all schema attributes
        must be supplied.  Cells where *null_mask* is true are stored as
        NULL instead of their value (the vectorised Filter's output path).
        This is the bulk-load fast path used by the streaming loader and
        the workload generators.
        """
        arrays = {name: np.asarray(arr) for name, arr in values.items()}
        missing = set(self.attr_names) - set(arrays)
        if missing:
            raise TypeMismatchError(f"set_region missing attributes {sorted(missing)}")
        shapes = {a.shape for a in arrays.values()}
        if len(shapes) != 1:
            raise TypeMismatchError(f"set_region attribute shapes differ: {shapes}")
        block_shape = shapes.pop()
        if len(block_shape) != self.ndim:
            raise TypeMismatchError(
                f"set_region block is {len(block_shape)}-D for a {self.ndim}-D array"
            )
        origin = self._normalize_coords(origin)
        far = tuple(o + s - 1 for o, s in zip(origin, block_shape))
        self._check_bounds(origin, writing=True)
        self._check_bounds(far, writing=True)

        # Walk every chunk the block overlaps and copy the intersection.
        lo_key, _ = self._chunk_key(origin)
        hi_key, _ = self._chunk_key(far)
        for key in itertools.product(
            *(range(lo, hi + 1) for lo, hi in zip(lo_key, hi_key))
        ):
            chunk_origin = tuple(k * s + 1 for k, s in zip(key, self.chunk_shape))
            chunk = self._chunks.get(key)
            if chunk is None:
                chunk = Chunk(chunk_origin, self.chunk_shape, self.schema.attributes)
                self._chunks[key] = chunk
            # Intersection of block and chunk, in absolute 1-based coords.
            lo = tuple(max(o, co) for o, co in zip(origin, chunk_origin))
            hi = tuple(
                min(f, co + s - 1)
                for f, co, s in zip(far, chunk_origin, self.chunk_shape)
            )
            chunk_sel = tuple(
                slice(l - co, h - co + 1) for l, h, co in zip(lo, hi, chunk_origin)
            )
            block_sel = tuple(
                slice(l - o, h - o + 1) for l, h, o in zip(lo, hi, origin)
            )
            for attr in self.schema.attributes:
                chunk.data[attr.name][chunk_sel] = arrays[attr.name][block_sel]
            if null_mask is None:
                chunk.state[chunk_sel] = CellState.PRESENT
            else:
                mask = null_mask[block_sel]
                chunk.state[chunk_sel] = np.where(
                    mask, CellState.NULL, CellState.PRESENT
                ).astype(np.uint8)
        self._bump_high_water(far)

    def region(
        self,
        lo: Coords,
        hi: Coords,
        attr: Optional[str] = None,
        fill: Any = np.nan,
    ) -> "np.ndarray | dict[str, np.ndarray]":
        """Read the dense block ``lo..hi`` (inclusive, 1-based) as numpy.

        EMPTY and NULL cells are filled with *fill*.  With *attr* given,
        returns that attribute's block; otherwise a dict of all attributes.
        """
        lo = self._normalize_coords(lo)
        hi = self._normalize_coords(hi)
        if any(h < l for l, h in zip(lo, hi)):
            raise BoundsError(f"empty region {lo}..{hi}")
        shape = tuple(h - l + 1 for l, h in zip(lo, hi))
        names = [attr] if attr is not None else list(self.attr_names)
        out: dict[str, np.ndarray] = {}
        for name in names:
            a = self.schema.attribute(name)
            if isinstance(a.type, ScalarType) and a.type.numpy_dtype != object:
                dtype = (
                    a.type.numpy_dtype
                    if fill is not np.nan or not np.issubdtype(a.type.numpy_dtype, np.integer)
                    else np.float64
                )
                out[name] = np.full(shape, fill, dtype=dtype)
            else:
                block = np.empty(shape, dtype=object)
                block[...] = fill
                out[name] = block

        lo_key, _ = self._chunk_key(lo)
        hi_key, _ = self._chunk_key(hi)
        for key in itertools.product(
            *(range(l, h + 1) for l, h in zip(lo_key, hi_key))
        ):
            chunk = self._chunks.get(key)
            if chunk is None:
                continue
            co = chunk.origin
            ilo = tuple(max(l, c) for l, c in zip(lo, co))
            ihi = tuple(min(h, c + s - 1) for h, c, s in zip(hi, co, self.chunk_shape))
            chunk_sel = tuple(slice(l - c, h - c + 1) for l, h, c in zip(ilo, ihi, co))
            out_sel = tuple(slice(l - o, h - o + 1) for l, h, o in zip(ilo, ihi, lo))
            mask = chunk.state[chunk_sel] == CellState.PRESENT
            for name in names:
                dest = out[name][out_sel]
                src = chunk.data[name][chunk_sel]
                dest[mask] = src[mask].astype(dest.dtype, copy=False) if (
                    dest.dtype != object and src.dtype != dest.dtype
                ) else src[mask]
                out[name][out_sel] = dest
        if attr is not None:
            return out[attr]
        return out

    def to_numpy(self, attr: Optional[str] = None, fill: Any = np.nan):
        """The whole array (1..high-water on each dimension) as numpy."""
        hw = self.bounds
        if any(h == 0 for h in hw):
            shape = tuple(max(h, 0) for h in hw)
            if attr is not None:
                return np.full(shape, fill)
            return {name: np.full(shape, fill) for name in self.attr_names}
        return self.region(tuple([1] * self.ndim), hw, attr=attr, fill=fill)

    @classmethod
    def from_numpy(
        cls,
        schema: ArraySchema,
        values: "np.ndarray | Mapping[str, np.ndarray]",
        name: Optional[str] = None,
        chunk_shape: Optional[Sequence[int]] = None,
    ) -> "SciArray":
        """Build an array instance from dense numpy data.

        For single-attribute schemas a bare ndarray is accepted.
        """
        if isinstance(values, np.ndarray):
            if len(schema.attributes) != 1:
                raise TypeMismatchError(
                    "bare ndarray only accepted for single-attribute schemas"
                )
            values = {schema.attributes[0].name: values}
        shape = next(iter(values.values())).shape
        bound = schema.bind(list(shape))
        arr = cls(bound, name=name, chunk_shape=chunk_shape)
        arr.set_region(tuple([1] * len(shape)), values)
        return arr

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------

    def cells(self, include_null: bool = True) -> Iterator[tuple[Coords, Optional[Cell]]]:
        """Iterate occupied cells in coordinate order as (coords, record).

        NULL cells yield ``(coords, None)`` unless *include_null* is false.
        """
        for key in sorted(self._chunks):
            chunk = self._chunks[key]
            occupied = np.argwhere(chunk.state != CellState.EMPTY)
            # argwhere returns offsets in row-major (sorted) order already.
            for off in map(tuple, occupied):
                coords = tuple(int(o + i) for o, i in zip(chunk.origin, off))
                if chunk.state[off] == CellState.NULL:
                    if include_null:
                        yield coords, None
                    continue
                values = [
                    self._load_value(chunk.data[a.name][off], a)
                    for a in self.schema.attributes
                ]
                yield coords, Cell(self.attr_names, values)

    def coords_present(self) -> Iterator[Coords]:
        for coords, cell in self.cells(include_null=False):
            yield coords

    def __iter__(self) -> Iterator[tuple[Coords, Optional[Cell]]]:
        return self.cells()

    def __len__(self) -> int:
        return self.count_occupied()

    # ------------------------------------------------------------------
    # enhanced (mapped) addressing — the paper's A{...} syntax
    # ------------------------------------------------------------------

    @property
    def mapped(self) -> "_MappedView":
        """Address cells through the array's enhancements: ``a.mapped[16.3,
        48.2]`` is the paper's ``A{16.3, 48.2}``."""
        return _MappedView(self)

    def find_enhancement(self, name: Optional[str] = None):
        from .enhance import Enhancement  # local import to avoid a cycle

        if not self.enhancements:
            raise SchemaError(f"array {self.name!r} has no enhancements")
        if name is None:
            return self.enhancements[-1]
        for e in self.enhancements:
            if e.name == name:
                return e
        raise SchemaError(f"array {self.name!r} has no enhancement named {name!r}")

    # ------------------------------------------------------------------
    # copies, equality, repr
    # ------------------------------------------------------------------

    def empty_like(self, name: Optional[str] = None) -> "SciArray":
        """A new array with this array's schema and chunking, no cells."""
        clone = SciArray(self.schema, name=name or self.name, chunk_shape=self.chunk_shape)
        clone.enhancements = list(self.enhancements)
        clone.shape_function = self.shape_function
        return clone

    def copy(self, name: Optional[str] = None) -> "SciArray":
        clone = self.empty_like(name=name)
        for coords, cell in self.cells():
            clone.set(coords, cell)
        return clone

    def content_equal(self, other: "SciArray") -> bool:
        """Same occupied coordinates with equal records (schema names may
        differ; dimension count and attribute count must match)."""
        if self.ndim != other.ndim:
            return False
        mine = {c: cell.values if cell else None for c, cell in self.cells()}
        theirs = {c: cell.values if cell else None for c, cell in other.cells()}
        return mine == theirs

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{d.name}=1..{'*' if d.size is None else d.size}"
            for d in self.schema.dimensions
        )
        return (
            f"<SciArray {self.name!r} [{dims}] "
            f"{self.count_occupied()} cells in {len(self._chunks)} chunks>"
        )


class _MappedView:
    """Indexing adaptor implementing enhanced addressing (``A{...}``)."""

    __slots__ = ("_array",)

    def __init__(self, array: SciArray) -> None:
        self._array = array

    def _resolve(self, key: Any) -> Coords:
        if not isinstance(key, tuple):
            key = (key,)
        enh = self._array.find_enhancement()
        return enh.to_basic(key)

    def __getitem__(self, key: Any) -> Optional[Cell]:
        return self._array.get(self._resolve(key))

    def __setitem__(self, key: Any, value: CellValue) -> None:
        self._array.set(self._resolve(key), value)
