"""Exception hierarchy for the SciDB reproduction.

Every error raised by the engine derives from :class:`SciDBError` so that
applications can catch engine failures without also swallowing programming
errors (``TypeError`` etc. are still raised for misuse of the Python API
itself).

Cluster-level failures form their own sub-tree under :class:`GridError`,
so grid clients can distinguish *availability* problems (a node died, a
partition lost its last replica) from *programming* problems (a bad schema
or partitioning spec):

* :class:`NodeFailedError` — an operation addressed a dead node;
* :class:`QuorumError` — no surviving replica could serve a partition
  (after bounded, deterministic failover retries);
* :class:`ReplicationError` — invalid replication configuration (e.g.
  a replication factor larger than the grid);
* :class:`DeadlineExceededError` — a query ran past its deadline budget
  and was cooperatively cancelled.
"""

from __future__ import annotations


class SciDBError(Exception):
    """Root of the engine's exception hierarchy."""


class SchemaError(SciDBError):
    """Invalid array/type definition, or a schema mismatch between operands."""


class BoundsError(SciDBError, IndexError):
    """A cell address lies outside the array's dimension bounds."""


class TypeMismatchError(SciDBError, TypeError):
    """A value does not conform to the declared attribute or UDF signature."""


class EmptyCellError(SciDBError, KeyError):
    """A read addressed a cell that has never been written."""


class UnknownComponentError(SciDBError, AttributeError):
    """A cell access named a component the schema does not define.

    Doubles as ``AttributeError`` so ``getattr``/``hasattr`` protocols
    keep working, while queries over hostile attribute names stay
    catchable as :class:`SciDBError`."""


class UnknownFunctionError(SciDBError, KeyError):
    """A UDF, aggregate, or enhancement name is not registered."""


class TransactionError(SciDBError):
    """Illegal transaction usage (e.g. write outside a transaction, or
    updating a non-updatable array)."""


class VersionError(SciDBError):
    """Unknown named version, cyclic version parentage, or similar misuse."""


class ProvenanceError(SciDBError):
    """A lineage trace could not be completed (e.g. missing log entries)."""


class StorageError(SciDBError):
    """Bucket/disk-level failure in the storage manager."""


class IngestError(StorageError):
    """Base of bulk-load / streaming-ingest failures (Section 2.8)."""


class TransientIOError(IngestError):
    """A retryable site I/O failure during ingest (intermittent append
    fault, briefly unreachable disk).  Loaders retry these with bounded,
    recorded exponential backoff before giving up."""


class LoadInterrupted(IngestError):
    """The load stream died mid-flight (process kill, injected crash).

    Carries enough state to resume: the load epoch and the last batch the
    loader *started* (committed batches are already durable per site, so a
    resume with the same epoch replays idempotently from the checkpoint).
    """

    def __init__(self, message: str, epoch: int = 0,
                 batch_seq: "int | None" = None) -> None:
        self.epoch = epoch
        self.batch_seq = batch_seq
        super().__init__(message)


class PartitioningError(SciDBError):
    """Invalid partitioning specification or an address that no partition
    covers."""


class GridError(SciDBError):
    """Base of cluster-level (availability) failures on the grid."""


class NodeFailedError(GridError):
    """An operation addressed a grid node that has failed."""

    def __init__(self, node_id: int, message: "str | None" = None) -> None:
        self.node_id = node_id
        super().__init__(message or f"node {node_id} has failed")


class QuorumError(GridError):
    """No surviving replica could serve a partition (or accept a write)."""


class DeadlineExceededError(GridError):
    """A query ran past its deadline budget.

    Raised cooperatively — at operator boundaries, before replica
    attempts, and inside partition scans — once the ambient
    :class:`~repro.cluster.resilience.Deadline` expires.  Carries the
    original budget and, when known, what the query was doing.
    """

    def __init__(self, budget_ms: float, what: str = "") -> None:
        self.budget_ms = budget_ms
        self.what = what
        doing = f" during {what}" if what else ""
        super().__init__(f"deadline of {budget_ms:g} ms exceeded{doing}")


class QueryCancelledError(DeadlineExceededError):
    """A running query was cancelled from outside (service ``/cancel``
    endpoint or the slow-query killer).

    Subclasses :class:`DeadlineExceededError` so every existing
    cooperative checkpoint and cleanup path that already handles
    deadline expiry handles cancellation for free; ``budget_ms`` is 0
    (the query was stopped, not timed out).
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(0.0, reason)
        self.reason = reason
        # Overwrite the deadline message with a cancellation one.
        self.args = (
            f"query cancelled{f': {reason}' if reason else ''}",
        )


class ReplicationError(GridError):
    """Invalid replication configuration (factor, placement, or chain)."""


class ParseError(SciDBError):
    """The query-language parser rejected its input."""


class PlanError(SciDBError):
    """The planner/executor was handed a malformed or unsupported parse
    tree."""


class InSituError(SciDBError):
    """An in-situ adaptor could not interpret an external file."""


class InSituFormatError(InSituError):
    """An external file is truncated or structurally corrupt.

    Raised instead of leaking ``ValueError``/``KeyError``/``struct.error``
    from the underlying parser, and carries *where* the damage is:
    ``offset`` is a line number (CSV), byte offset (NPY header), or chunk
    index (container), as the adaptor documents.
    """

    def __init__(self, path: object, detail: str,
                 offset: "int | None" = None) -> None:
        self.path = path
        self.offset = offset
        where = f"{path}" if offset is None else f"{path} @ {offset}"
        super().__init__(f"{where}: {detail}")
