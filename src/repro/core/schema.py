"""Array definitions: dimensions, attributes, and array types (Section 2.1).

The paper's model: an array has named, integer-valued dimensions running
contiguously from 1 to a per-dimension high-water mark N (or unbounded,
written ``*``); each combination of dimension values is a *cell*; every cell
carries the same record of named, typed values, each of which is a scalar or
a (nested) array.

Mirroring the paper's two-step usage::

    define Remote (s1 = float, s2 = float, s3 = float) (I, J)
    create My_remote as Remote [1024, 1024]

this module provides :func:`define_array` producing an :class:`ArraySchema`
(the array *type*), whose :meth:`ArraySchema.create` instantiates a concrete
:class:`~repro.core.array.SciArray` with bounds.  Declaring a schema
``updatable`` makes every instance gain an implicit, unbounded ``history``
dimension (Section 2.5: "the fact that Remote is declared to be updatable
would allow the system to add the History dimension automatically").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence, Union

from .datatypes import ScalarType, get_type
from .errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from .array import SciArray

__all__ = [
    "Dimension",
    "Attribute",
    "ArraySchema",
    "define_array",
    "HISTORY_DIMENSION",
    "UNBOUNDED",
]

#: Name of the implicit time-travel dimension added to updatable arrays.
HISTORY_DIMENSION = "history"

#: Sentinel accepted wherever a bound may be unbounded (the paper's ``*``).
UNBOUNDED = "*"


@dataclass(frozen=True)
class Dimension:
    """A named array dimension.

    ``size`` is the high-water mark N (valid indexes are 1..N) or ``None``
    for an unbounded dimension, which grows as cells beyond the current
    high-water mark are written.
    """

    name: str
    size: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid dimension name {self.name!r}")
        if self.size is not None and self.size < 0:
            raise SchemaError(
                f"dimension {self.name!r} must have non-negative size, "
                f"got {self.size}"
            )

    @property
    def unbounded(self) -> bool:
        return self.size is None

    def contains(self, index: int, high_water: Optional[int] = None) -> bool:
        """Whether 1-based *index* is a legal coordinate on this dimension.

        For bounded dimensions the declared size governs; for unbounded
        dimensions the current *high_water* mark (if given) governs reads,
        while writes may exceed it.
        """
        if index < 1:
            return False
        if self.size is not None:
            return index <= self.size
        if high_water is not None:
            return index <= high_water
        return True

    def __str__(self) -> str:
        return f"{self.name}={'*' if self.size is None else self.size}"


AttributeType = Union[ScalarType, "ArraySchema"]


@dataclass(frozen=True)
class Attribute:
    """A named, typed value component of a cell.

    The type is a scalar type or, for nested arrays (Section 2.1), another
    :class:`ArraySchema`.
    """

    name: str
    type: AttributeType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name {self.name!r}")
        if not isinstance(self.type, (ScalarType, ArraySchema)):
            raise SchemaError(
                f"attribute {self.name!r} must be typed with a ScalarType or "
                f"ArraySchema, got {type(self.type).__name__}"
            )

    @property
    def is_nested(self) -> bool:
        return isinstance(self.type, ArraySchema)

    def __str__(self) -> str:
        tname = self.type.name if isinstance(self.type, ArraySchema) else str(self.type)
        return f"{self.name} = {tname}"


@dataclass(frozen=True)
class ArraySchema:
    """An array *type* (the result of ``define``), instantiable many times.

    Attributes
    ----------
    name:
        Type name, e.g. ``"Remote"``.
    attributes:
        The cell record's components, in declaration order.
    dimensions:
        Declared dimensions.  In a schema, sizes are usually ``None`` — they
        are fixed per instance at :meth:`create` time — but a schema may pin
        sizes too.
    updatable:
        Whether instances are no-overwrite time-travelled arrays
        (Section 2.5).  Updatable instances automatically gain an unbounded
        ``history`` dimension as their last dimension.
    """

    name: str
    attributes: tuple[Attribute, ...]
    dimensions: tuple[Dimension, ...]
    updatable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid array type name {self.name!r}")
        if not self.attributes:
            raise SchemaError(f"array type {self.name!r} must have at least one value")
        if not self.dimensions:
            raise SchemaError(
                f"array type {self.name!r} must have at least one dimension"
            )
        seen: set[str] = set()
        for part in (*self.attributes, *self.dimensions):
            if part.name in seen:
                raise SchemaError(
                    f"duplicate name {part.name!r} in array type {self.name!r}"
                )
            seen.add(part.name)

    # -- introspection -------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dimensions)

    @property
    def dim_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def attr_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise SchemaError(f"array type {self.name!r} has no value named {name!r}")

    def dimension(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name == name:
                return d
        raise SchemaError(f"array type {self.name!r} has no dimension named {name!r}")

    def dim_index(self, name: str) -> int:
        """0-based position of dimension *name*."""
        for i, d in enumerate(self.dimensions):
            if d.name == name:
                return i
        raise SchemaError(f"array type {self.name!r} has no dimension named {name!r}")

    @property
    def has_history(self) -> bool:
        return any(d.name == HISTORY_DIMENSION for d in self.dimensions)

    # -- derivation ----------------------------------------------------------

    def with_dimensions(self, dimensions: Sequence[Dimension]) -> "ArraySchema":
        return replace(self, dimensions=tuple(dimensions))

    def with_attributes(self, attributes: Sequence[Attribute]) -> "ArraySchema":
        return replace(self, attributes=tuple(attributes))

    def renamed(self, name: str) -> "ArraySchema":
        return replace(self, name=name)

    def bind(self, bounds: Sequence[Union[int, str, None]]) -> "ArraySchema":
        """Fix per-instance dimension sizes (the ``create ... [b1, b2]`` step).

        Each bound is an int high-water mark, or ``"*"``/``None`` for
        unbounded.  For an updatable schema lacking an explicit ``history``
        dimension, one is appended automatically (always unbounded).
        """
        dims = list(self.dimensions)
        if self.updatable and not self.has_history:
            dims.append(Dimension(HISTORY_DIMENSION, None))
        if len(bounds) == len(dims) - 1 and dims[-1].name == HISTORY_DIMENSION:
            bounds = list(bounds) + [UNBOUNDED]
        if len(bounds) != len(dims):
            raise SchemaError(
                f"array type {self.name!r} has {len(dims)} dimensions, "
                f"got {len(bounds)} bounds"
            )
        bound_dims = []
        for dim, bound in zip(dims, bounds):
            if bound in (UNBOUNDED, None):
                bound_dims.append(replace(dim, size=None))
            else:
                if not isinstance(bound, int):
                    raise SchemaError(f"bound for {dim.name!r} must be int or '*'")
                bound_dims.append(replace(dim, size=bound))
        if self.updatable and bound_dims[-1].size is not None:
            raise SchemaError("the history dimension of an updatable array "
                              "must be unbounded")
        return replace(self, dimensions=tuple(bound_dims))

    def create(
        self,
        instance_name: Optional[str] = None,
        bounds: Optional[Sequence[Union[int, str, None]]] = None,
        **options,
    ) -> "SciArray":
        """Instantiate this type as a concrete array (the ``create`` step)."""
        from .array import SciArray

        schema = self.bind(bounds if bounds is not None else
                           [d.size if d.size is not None else UNBOUNDED
                            for d in self.dimensions])
        return SciArray(schema, name=instance_name or self.name, **options)

    def __str__(self) -> str:
        attrs = ", ".join(str(a) for a in self.attributes)
        dims = ", ".join(str(d) for d in self.dimensions)
        kind = "updatable array" if self.updatable else "array"
        return f"{kind} {self.name} ({attrs}) ({dims})"


def define_array(
    name: str,
    values: Union[Mapping[str, Union[str, ScalarType, ArraySchema]],
                  Iterable[tuple[str, Union[str, ScalarType, ArraySchema]]]],
    dims: Sequence[Union[str, Dimension, tuple[str, Optional[int]]]],
    *,
    updatable: bool = False,
) -> ArraySchema:
    """Define an array type — the Python rendering of the paper's syntax.

    The 2-D remote-sensing example from Section 2.1::

        Remote = define_array(
            "Remote",
            values={"s1": "float", "s2": "float", "s3": "float"},
            dims=["I", "J"],
        )
        my_remote = Remote.create("My_remote", [1024, 1024])

    ``values`` maps attribute names to type names, :class:`ScalarType`
    descriptors, or nested :class:`ArraySchema` objects.  ``dims`` entries
    are dimension names, ``(name, size)`` pairs, or :class:`Dimension`
    objects.
    """
    items = values.items() if isinstance(values, Mapping) else values
    attributes = []
    for attr_name, spec in items:
        if isinstance(spec, ArraySchema):
            attributes.append(Attribute(attr_name, spec))
        else:
            attributes.append(Attribute(attr_name, get_type(spec)))

    dimensions = []
    for d in dims:
        if isinstance(d, Dimension):
            dimensions.append(d)
        elif isinstance(d, tuple):
            dname, size = d
            dimensions.append(Dimension(dname, None if size in (UNBOUNDED, None) else size))
        else:
            dimensions.append(Dimension(d))

    return ArraySchema(
        name=name,
        attributes=tuple(attributes),
        dimensions=tuple(dimensions),
        updatable=updatable,
    )
