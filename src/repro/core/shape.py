"""Shape functions: ragged array boundaries (Section 2.1).

A shape function is "a user-defined function with integer arguments and a
pair of integer outputs" — given the values of all dimensions but one, it
returns the low-water and high-water marks of the remaining (*profile*)
dimension.  This allows raggedness in both the lower and the upper bound,
so "arrays that digitize circles and other complex shapes are possible",
but cannot express holes — exactly the paper's model.

Each basic array can have at most one shape function
(:func:`apply_shape` enforces this), and the engine ships a collection of
built-ins: rectangles, lower-triangles, diagonal bands, digitized circles,
and separable per-dimension shapes (the special case the paper calls out
where the shape "is separable into a collection of shape functions for the
individual dimensions").

Queries mirror the paper:

* ``shape_fn.slice_bounds((7, None))`` — the paper's
  ``shape-function (A[7, *])`` — bounds of one slice;
* ``shape_fn.global_bounds(free_dim)`` — the paper's
  ``shape-function (A[I, *])`` — "the maximum high-water mark and the
  minimum low-water mark" over all slices.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterator, Optional, Sequence

from .array import SciArray
from .errors import SchemaError

__all__ = [
    "ShapeFunction",
    "ShapeWithHoles",
    "CallableShape",
    "SeparableShape",
    "RectangleShape",
    "LowerTriangleShape",
    "BandShape",
    "CircleShape",
    "apply_shape",
    "shape_of",
]

Coords = tuple[int, ...]
SliceSpec = tuple[Optional[int], ...]  # exactly one None = the free dimension


class ShapeFunction:
    """Base class for ragged-boundary definitions.

    ``outer_bounds`` gives, per dimension, the (1, N) envelope within which
    the shape lives; subclasses define :meth:`slice_bounds`.
    """

    def __init__(self, outer_bounds: Sequence[int]) -> None:
        if any(b < 1 for b in outer_bounds):
            raise SchemaError("shape outer bounds must be >= 1")
        self.outer_bounds = tuple(int(b) for b in outer_bounds)
        self.ndim = len(self.outer_bounds)

    # -- to be provided by subclasses ----------------------------------------

    def slice_bounds(self, spec: SliceSpec) -> Optional[tuple[int, int]]:
        """Low/high-water marks of the free dimension for one slice.

        *spec* fixes every dimension except one, which is ``None``.
        Returns ``None`` for slices entirely outside the shape.
        """
        raise NotImplementedError

    # -- derived queries -------------------------------------------------------

    def _free_dim(self, spec: SliceSpec) -> int:
        if len(spec) != self.ndim:
            raise SchemaError(
                f"slice spec has {len(spec)} entries for a {self.ndim}-D shape"
            )
        frees = [i for i, v in enumerate(spec) if v is None]
        if len(frees) != 1:
            raise SchemaError("exactly one dimension must be left unspecified ('*')")
        return frees[0]

    def contains(self, coords: Coords) -> bool:
        """Whether a cell address lies inside the ragged boundary."""
        if len(coords) != self.ndim:
            return False
        for c, outer in zip(coords, self.outer_bounds):
            if not 1 <= c <= outer:
                return False
        spec = tuple(coords[:-1]) + (None,)
        bounds = self.slice_bounds(spec)
        if bounds is None:
            return False
        lo, hi = bounds
        return lo <= coords[-1] <= hi

    def global_bounds(self, free_dim: int) -> Optional[tuple[int, int]]:
        """Minimum low-water and maximum high-water marks of *free_dim*
        across all slices — the paper's ``shape-function (A[I, *])``."""
        fixed_dims = [i for i in range(self.ndim) if i != free_dim]
        lo_all: Optional[int] = None
        hi_all: Optional[int] = None
        ranges = [range(1, self.outer_bounds[i] + 1) for i in fixed_dims]
        for fixed in itertools.product(*ranges):
            spec: list[Optional[int]] = [None] * self.ndim
            for d, v in zip(fixed_dims, fixed):
                spec[d] = v
            bounds = self.slice_bounds(tuple(spec))
            if bounds is None:
                continue
            lo, hi = bounds
            lo_all = lo if lo_all is None else min(lo_all, lo)
            hi_all = hi if hi_all is None else max(hi_all, hi)
        if lo_all is None:
            return None
        return lo_all, hi_all

    def cells(self) -> Iterator[Coords]:
        """Enumerate every cell address inside the shape."""
        ranges = [range(1, b + 1) for b in self.outer_bounds[:-1]]
        for prefix in itertools.product(*ranges):
            bounds = self.slice_bounds(prefix + (None,))
            if bounds is None:
                continue
            lo, hi = bounds
            for last in range(lo, hi + 1):
                yield prefix + (last,)

    def cell_count(self) -> int:
        return sum(1 for _ in self.cells())


class CallableShape(ShapeFunction):
    """A shape defined by an arbitrary user function.

    *fn* receives the fixed coordinates of all dimensions except the last
    and returns ``(lo, hi)`` bounds for the last dimension, or ``None``.
    This is the general "user-defined function" form from the paper, with
    the last dimension as the ragged one.
    """

    def __init__(
        self,
        outer_bounds: Sequence[int],
        fn: Callable[..., Optional[tuple[int, int]]],
    ) -> None:
        super().__init__(outer_bounds)
        self._fn = fn

    def slice_bounds(self, spec: SliceSpec) -> Optional[tuple[int, int]]:
        free = self._free_dim(spec)
        if free != self.ndim - 1:
            # Generic callables only profile the last dimension; answer
            # other axes by scanning (correct, if slower).
            return self._scan_axis(spec, free)
        bounds = self._fn(*(v for v in spec if v is not None))
        if bounds is None:
            return None
        lo, hi = int(bounds[0]), int(bounds[1])
        if lo > hi:
            return None
        return max(lo, 1), min(hi, self.outer_bounds[free])

    def _scan_axis(self, spec: SliceSpec, free: int) -> Optional[tuple[int, int]]:
        lo_hit: Optional[int] = None
        hi_hit: Optional[int] = None
        for v in range(1, self.outer_bounds[free] + 1):
            coords = tuple(v if s is None else s for s in spec)
            if self.contains(coords):
                lo_hit = v if lo_hit is None else lo_hit
                hi_hit = v
        if lo_hit is None:
            return None
        return lo_hit, hi_hit


class SeparableShape(ShapeFunction):
    """Per-dimension independent bounds (the paper's separable case).

    ``bounds_per_dim[d]`` is a fixed ``(lo, hi)`` pair for dimension *d* —
    the composite encapsulating "a collection of shape functions for the
    individual dimensions".
    """

    def __init__(self, bounds_per_dim: Sequence[tuple[int, int]]) -> None:
        super().__init__([hi for _, hi in bounds_per_dim])
        for lo, hi in bounds_per_dim:
            if lo < 1 or hi < lo:
                raise SchemaError(f"invalid separable bounds ({lo}, {hi})")
        self.bounds_per_dim = tuple((int(lo), int(hi)) for lo, hi in bounds_per_dim)

    def slice_bounds(self, spec: SliceSpec) -> Optional[tuple[int, int]]:
        free = self._free_dim(spec)
        for d, v in enumerate(spec):
            if v is None:
                continue
            lo, hi = self.bounds_per_dim[d]
            if not lo <= v <= hi:
                return None
        return self.bounds_per_dim[free]

    def contains(self, coords: Coords) -> bool:
        if len(coords) != self.ndim:
            return False
        return all(lo <= c <= hi for c, (lo, hi) in zip(coords, self.bounds_per_dim))


class RectangleShape(SeparableShape):
    """The degenerate non-ragged shape: a full box ``1..N`` per dimension."""

    def __init__(self, sizes: Sequence[int]) -> None:
        super().__init__([(1, s) for s in sizes])


class LowerTriangleShape(ShapeFunction):
    """2-D lower-triangular region: cells with ``J <= I``."""

    def __init__(self, n: int) -> None:
        super().__init__([n, n])

    def slice_bounds(self, spec: SliceSpec) -> Optional[tuple[int, int]]:
        free = self._free_dim(spec)
        n = self.outer_bounds[0]
        if free == 1:  # given I, bounds of J
            i = spec[0]
            if not 1 <= i <= n:
                return None
            return 1, i
        j = spec[1]  # given J, bounds of I
        if not 1 <= j <= n:
            return None
        return j, n


class BandShape(ShapeFunction):
    """2-D diagonal band: cells with ``|I - J| <= width``."""

    def __init__(self, n: int, width: int) -> None:
        super().__init__([n, n])
        if width < 0:
            raise SchemaError("band width must be >= 0")
        self.width = width

    def slice_bounds(self, spec: SliceSpec) -> Optional[tuple[int, int]]:
        free = self._free_dim(spec)
        n = self.outer_bounds[0]
        fixed = spec[1 - free]
        if fixed is None or not 1 <= fixed <= n:
            return None
        lo = max(1, fixed - self.width)
        hi = min(n, fixed + self.width)
        return lo, hi


class CircleShape(ShapeFunction):
    """Digitized disc — the paper's "arrays that digitize circles".

    Cell (I, J) is inside when its centre lies within *radius* of the disc
    centre.  Raggedness appears in both the lower and upper J bound.
    """

    def __init__(self, center: tuple[float, float], radius: float) -> None:
        cx, cy = center
        super().__init__(
            [int(math.ceil(cx + radius)), int(math.ceil(cy + radius))]
        )
        self.center = (float(cx), float(cy))
        self.radius = float(radius)

    def slice_bounds(self, spec: SliceSpec) -> Optional[tuple[int, int]]:
        free = self._free_dim(spec)
        cx, cy = self.center if free == 1 else (self.center[1], self.center[0])
        fixed = spec[1 - free]
        dx = fixed - cx
        if abs(dx) > self.radius:
            return None
        half = math.sqrt(self.radius**2 - dx**2)
        lo = max(1, int(math.ceil(cy - half)))
        hi = min(self.outer_bounds[free], int(math.floor(cy + half)))
        if lo > hi:
            return None
        return lo, hi


class ShapeWithHoles(ShapeFunction):
    """A shape minus interior holes — the capability the paper defers.

    Section 2.1: "it is not possible to use a shape function to indicate
    'holes' in arrays.  If this is a desirable feature, we can easily add
    this capability."  This class is that addition: cells lie inside when
    the *base* shape contains them and no *hole* shape does.

    Because a slice through a holey region is no longer one interval,
    :meth:`slice_bounds` reports the slice's bounding interval (the
    envelope), while :meth:`contains`, :meth:`cells` and
    :meth:`slice_runs` are exact.
    """

    def __init__(
        self, base: ShapeFunction, holes: Sequence[ShapeFunction]
    ) -> None:
        super().__init__(base.outer_bounds)
        for hole in holes:
            if hole.ndim != base.ndim:
                raise SchemaError(
                    f"hole is {hole.ndim}-D but the base shape is "
                    f"{base.ndim}-D"
                )
        self.base = base
        self.holes = tuple(holes)

    def contains(self, coords: Coords) -> bool:
        if not self.base.contains(coords):
            return False
        return not any(h.contains(coords) for h in self.holes)

    def slice_bounds(self, spec: SliceSpec) -> Optional[tuple[int, int]]:
        free = self._free_dim(spec)
        lo_hit: Optional[int] = None
        hi_hit: Optional[int] = None
        for v in range(1, self.outer_bounds[free] + 1):
            coords = tuple(v if s is None else s for s in spec)
            if self.contains(coords):
                lo_hit = v if lo_hit is None else lo_hit
                hi_hit = v
        if lo_hit is None:
            return None
        return lo_hit, hi_hit

    def cells(self) -> Iterator[Coords]:
        ranges = [range(1, b + 1) for b in self.outer_bounds[:-1]]
        for prefix in itertools.product(*ranges):
            for lo, hi in self.slice_runs(prefix + (None,)):
                for last in range(lo, hi + 1):
                    yield prefix + (last,)

    def slice_runs(self, spec: SliceSpec) -> list[tuple[int, int]]:
        """The exact (possibly multi-interval) extent of one slice."""
        free = self._free_dim(spec)
        runs: list[tuple[int, int]] = []
        start: Optional[int] = None
        for v in range(1, self.outer_bounds[free] + 1):
            coords = tuple(v if s is None else s for s in spec)
            if self.contains(coords):
                if start is None:
                    start = v
            elif start is not None:
                runs.append((start, v - 1))
                start = None
        if start is not None:
            runs.append((start, self.outer_bounds[free]))
        return runs


def apply_shape(array: SciArray, shape: ShapeFunction) -> SciArray:
    """Attach *shape* to *array* — the paper's ``Shape A with F``.

    At most one shape function per basic array; writes outside the shape
    then raise :class:`~repro.core.errors.BoundsError`.
    """
    if array.shape_function is not None:
        raise SchemaError(
            f"array {array.name!r} already has a shape function; "
            "every basic array can have at most one"
        )
    if shape.ndim != array.ndim:
        raise SchemaError(
            f"shape is {shape.ndim}-D but array {array.name!r} is {array.ndim}-D"
        )
    array.shape_function = shape
    return array


def shape_of(array: SciArray, spec: SliceSpec) -> Optional[tuple[int, int]]:
    """Query an array's shape function — ``shape-function (A[7, *])``.

    With every entry of *spec* ``None`` except one fixed prefix, returns the
    slice bounds; with a fully-``None``-except-free spec of the global form,
    use ``array.shape_function.global_bounds``.
    """
    if array.shape_function is None:
        raise SchemaError(f"array {array.name!r} has no shape function")
    return array.shape_function.slice_bounds(spec)
