"""User-defined functions and aggregates (Sections 2.1 and 2.3).

The paper adopts Postgres-style extensibility: users register functions with
explicit input and output signatures, and the engine links them in and calls
them as needed.  In this Python engine "linking object code" becomes
registering a Python callable; everything else — the typed define-function
contract, UDFs calling queries and other UDFs, user-defined aggregates, and
the use of integer→integer UDFs to *enhance* array coordinates — is kept.

The paper's running example::

    Define function Scale10 (integer I, integer J)
        returns (integer K, integer L) file_handle

becomes::

    scale10 = define_function(
        "Scale10",
        inputs=[("I", "integer"), ("J", "integer")],
        outputs=[("K", "integer"), ("L", "integer")],
        fn=lambda i, j: (10 * i, 10 * j),
        inverse=lambda k, l: (k // 10, l // 10),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from .datatypes import ScalarType, get_type
from .errors import SchemaError, TypeMismatchError, UnknownFunctionError

__all__ = [
    "UserFunction",
    "UserAggregate",
    "FunctionRegistry",
    "functions",
    "define_function",
    "define_function_from_file",
    "define_aggregate",
    "get_function",
    "get_aggregate",
    "BUILTIN_AGGREGATES",
]

Signature = tuple[tuple[str, ScalarType], ...]


def _signature(parts: Iterable[tuple[str, "str | ScalarType"]]) -> Signature:
    sig = tuple((name, get_type(t)) for name, t in parts)
    names = [n for n, _ in sig]
    if len(set(names)) != len(names):
        raise SchemaError(f"duplicate parameter names in signature {names}")
    return sig


@dataclass(frozen=True)
class UserFunction:
    """A registered scalar function with typed input/output signatures.

    ``fn`` receives one positional argument per input and returns either a
    single value (one output) or a tuple matching the output signature.
    ``inverse``, when provided, makes the function usable as a coordinate
    enhancement that supports *addressing* through the new coordinates
    (``A{k, l}``): the engine inverts the mapping back to basic integer
    coordinates.
    """

    name: str
    inputs: Signature
    outputs: Signature
    fn: Callable[..., Any]
    inverse: Optional[Callable[..., Any]] = None

    @property
    def arity(self) -> int:
        return len(self.inputs)

    def __call__(self, *args: Any) -> Any:
        if len(args) != len(self.inputs):
            raise TypeMismatchError(
                f"function {self.name!r} expects {len(self.inputs)} arguments, "
                f"got {len(args)}"
            )
        checked = [t.validate(a) for (_, t), a in zip(self.inputs, args)]
        result = self.fn(*checked)
        return self._validate_result(result)

    def invert(self, *args: Any) -> Any:
        if self.inverse is None:
            raise UnknownFunctionError(
                f"function {self.name!r} has no registered inverse"
            )
        result = self.inverse(*args)
        if len(self.inputs) == 1 and not isinstance(result, tuple):
            result = (result,)
        return result

    def _validate_result(self, result: Any) -> Any:
        outs = self.outputs
        if len(outs) == 1:
            value = result[0] if isinstance(result, tuple) and len(result) == 1 else result
            return outs[0][1].validate(value)
        if not isinstance(result, tuple) or len(result) != len(outs):
            raise TypeMismatchError(
                f"function {self.name!r} must return {len(outs)} values, "
                f"got {result!r}"
            )
        return tuple(t.validate(v) for (_, t), v in zip(outs, result))


@dataclass(frozen=True)
class UserAggregate:
    """A Postgres-style user-defined aggregate.

    Defined by an initial state, a transition function folding one value
    into the state, and a final function mapping state to result.  The
    engine's Aggregate operator (Section 2.2.2) accepts any registered
    aggregate by name.
    """

    name: str
    initial: Callable[[], Any]
    transition: Callable[[Any, Any], Any]
    final: Callable[[Any], Any] = field(default=lambda s: s)

    def compute(self, values: Iterable[Any]) -> Any:
        state = self.initial()
        for v in values:
            state = self.transition(state, v)
        return self.final(state)


class FunctionRegistry:
    """Process-wide registry of UDFs and aggregates."""

    def __init__(self) -> None:
        self._functions: dict[str, UserFunction] = {}
        self._aggregates: dict[str, UserAggregate] = {}
        for agg in BUILTIN_AGGREGATES:
            self._aggregates[agg.name] = agg

    # -- scalar functions ----------------------------------------------------

    def define_function(
        self,
        name: str,
        inputs: Sequence[tuple[str, "str | ScalarType"]],
        outputs: Sequence[tuple[str, "str | ScalarType"]],
        fn: Callable[..., Any],
        inverse: Optional[Callable[..., Any]] = None,
        replace: bool = False,
    ) -> UserFunction:
        if name in self._functions and not replace:
            raise SchemaError(f"function {name!r} is already defined")
        f = UserFunction(
            name=name,
            inputs=_signature(inputs),
            outputs=_signature(outputs),
            fn=fn,
            inverse=inverse,
        )
        self._functions[name] = f
        return f

    def get_function(self, name: str) -> UserFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(f"no function named {name!r}") from None

    # -- aggregates ------------------------------------------------------------

    def define_aggregate(
        self,
        name: str,
        initial: Callable[[], Any],
        transition: Callable[[Any, Any], Any],
        final: Callable[[Any], Any] = lambda s: s,
        replace: bool = False,
    ) -> UserAggregate:
        key = name.lower()
        if key in self._aggregates and not replace:
            raise SchemaError(f"aggregate {name!r} is already defined")
        agg = UserAggregate(name=key, initial=initial, transition=transition, final=final)
        self._aggregates[key] = agg
        return agg

    def get_aggregate(self, name: str) -> UserAggregate:
        try:
            return self._aggregates[name.lower()]
        except KeyError:
            raise UnknownFunctionError(f"no aggregate named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._functions)


def _agg_mean_final(state: tuple[float, int]) -> Optional[float]:
    total, count = state
    return total / count if count else None


def _agg_minmax(initial_cmp):
    def transition(state, value):
        if state is None:
            return value
        return initial_cmp(state, value)

    return transition


def _std_final(state: tuple[float, float, int]) -> Optional[float]:
    total, total_sq, count = state
    if count == 0:
        return None
    mean = total / count
    var = max(total_sq / count - mean * mean, 0.0)
    return var**0.5


#: The aggregates every engine installation ships with.
BUILTIN_AGGREGATES: tuple[UserAggregate, ...] = (
    UserAggregate("sum", lambda: 0, lambda s, v: s + v),
    UserAggregate("count", lambda: 0, lambda s, v: s + 1),
    UserAggregate(
        "avg",
        lambda: (0.0, 0),
        lambda s, v: (s[0] + v, s[1] + 1),
        _agg_mean_final,
    ),
    UserAggregate("min", lambda: None, _agg_minmax(min)),
    UserAggregate("max", lambda: None, _agg_minmax(max)),
    UserAggregate(
        "stdev",
        lambda: (0.0, 0.0, 0),
        lambda s, v: (s[0] + v, s[1] + v * v, s[2] + 1),
        _std_final,
    ),
)

#: The process-wide registry (Section 2.3's extension point).
functions = FunctionRegistry()


def define_function(
    name: str,
    inputs: Sequence[tuple[str, "str | ScalarType"]],
    outputs: Sequence[tuple[str, "str | ScalarType"]],
    fn: Callable[..., Any],
    inverse: Optional[Callable[..., Any]] = None,
    replace: bool = False,
) -> UserFunction:
    """Register a scalar UDF in the process-wide registry."""
    return functions.define_function(
        name, inputs, outputs, fn, inverse=inverse, replace=replace
    )


def define_aggregate(
    name: str,
    initial: Callable[[], Any],
    transition: Callable[[Any, Any], Any],
    final: Callable[[Any], Any] = lambda s: s,
    replace: bool = False,
) -> UserAggregate:
    """Register a user-defined aggregate in the process-wide registry."""
    return functions.define_aggregate(name, initial, transition, final, replace=replace)


def define_function_from_file(
    name: str,
    inputs: Sequence[tuple[str, "str | ScalarType"]],
    outputs: Sequence[tuple[str, "str | ScalarType"]],
    file_handle: "str",
    replace: bool = False,
) -> UserFunction:
    """Register a UDF whose code lives in an external file — the paper's

        Define function Scale10 (...) returns (...) file_handle

    "The indicated file_handle would contain object code for the required
    function.  SciDB will link the required function into its address
    space and call it as needed."  Here the file is a Python module that
    defines ``fn`` (required) and optionally ``inverse``; it is loaded
    into the process — the dynamic-linking equivalent.
    """
    import importlib.util
    from pathlib import Path

    path = Path(file_handle)
    if not path.exists():
        raise UnknownFunctionError(f"no function file at {file_handle!r}")
    spec = importlib.util.spec_from_file_location(f"_udf_{name}", path)
    if spec is None or spec.loader is None:
        raise UnknownFunctionError(f"cannot load function file {file_handle!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    fn = getattr(module, "fn", None)
    if not callable(fn):
        raise UnknownFunctionError(
            f"{file_handle!r} must define a callable named 'fn'"
        )
    inverse = getattr(module, "inverse", None)
    return functions.define_function(
        name, inputs, outputs, fn, inverse=inverse, replace=replace
    )


def get_function(name: str) -> UserFunction:
    return functions.get_function(name)


def get_aggregate(name: str) -> UserAggregate:
    return functions.get_aggregate(name)
