"""Core array engine: the paper's data model and operator set.

Public surface re-exported here; see the module docstrings for the mapping
to the paper's sections.
"""

from .array import SciArray, Chunk, DEFAULT_CHUNK_SIDE
from .cells import Cell, CellState
from .datatypes import (
    ScalarType,
    define_type,
    get_type,
    registry as type_registry,
    uncertain,
)
from .enhance import (
    Enhancement,
    FunctionEnhancement,
    IrregularEnhancement,
    MercatorEnhancement,
    WallClockEnhancement,
    enhance,
)
from .errors import (
    BoundsError,
    EmptyCellError,
    InSituError,
    ParseError,
    PartitioningError,
    PlanError,
    ProvenanceError,
    SchemaError,
    SciDBError,
    StorageError,
    TransactionError,
    TypeMismatchError,
    UnknownFunctionError,
    VersionError,
)
from .schema import (
    ArraySchema,
    Attribute,
    Dimension,
    HISTORY_DIMENSION,
    UNBOUNDED,
    define_array,
)
from .shape import (
    BandShape,
    CallableShape,
    CircleShape,
    LowerTriangleShape,
    RectangleShape,
    SeparableShape,
    ShapeFunction,
    apply_shape,
    shape_of,
)
from .udf import (
    UserAggregate,
    UserFunction,
    define_aggregate,
    define_function,
    define_function_from_file,
    get_aggregate,
    get_function,
)
from .uncertainty import PositionUncertainty, UncertainValue, combine_mean
from . import ops

__all__ = [
    "SciArray",
    "Chunk",
    "DEFAULT_CHUNK_SIDE",
    "Cell",
    "CellState",
    "ScalarType",
    "define_type",
    "get_type",
    "type_registry",
    "uncertain",
    "Enhancement",
    "FunctionEnhancement",
    "IrregularEnhancement",
    "MercatorEnhancement",
    "WallClockEnhancement",
    "enhance",
    "ArraySchema",
    "Attribute",
    "Dimension",
    "HISTORY_DIMENSION",
    "UNBOUNDED",
    "define_array",
    "ShapeFunction",
    "CallableShape",
    "SeparableShape",
    "RectangleShape",
    "LowerTriangleShape",
    "BandShape",
    "CircleShape",
    "apply_shape",
    "shape_of",
    "UserFunction",
    "UserAggregate",
    "define_function",
    "define_function_from_file",
    "define_aggregate",
    "get_function",
    "get_aggregate",
    "UncertainValue",
    "PositionUncertainty",
    "combine_mean",
    "ops",
    "SciDBError",
    "SchemaError",
    "BoundsError",
    "TypeMismatchError",
    "EmptyCellError",
    "UnknownFunctionError",
    "TransactionError",
    "VersionError",
    "ProvenanceError",
    "StorageError",
    "PartitioningError",
    "ParseError",
    "PlanError",
    "InSituError",
]
