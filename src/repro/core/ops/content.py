"""Content-dependent operators (Section 2.2.2).

Operators "whose result depends on the data that is stored in the input
array":

* :func:`filter` — keeps cells whose record satisfies a predicate; cells
  failing it become **NULL** (not EMPTY), per the paper: "A(v) will contain
  A(v) if P(A(v)) evaluates to true, otherwise it will contain NULL".
* :func:`aggregate` — groups on a subset of *dimensions* (data attributes
  cannot be used for grouping, as the paper notes) and folds each
  (n-k)-dimensional group through an aggregate function (Fig. 2).
* :func:`cjoin` — content-based join with a predicate over data values
  only; the result is (m + n)-dimensional with NULLs where the predicate is
  false (Fig. 3).
* :func:`apply` / :func:`project` — per-cell computation and record
  narrowing.
* :func:`regrid` — the regridding the paper singles out as a key science
  operation (Section 2.3): coarsen an array by integer factors, combining
  each block with an aggregate.
"""

from __future__ import annotations

import builtins
import itertools
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..array import SciArray
from ..cells import Cell
from ..datatypes import FLOAT64, INT64, ScalarType, get_type
from ..errors import SchemaError, TypeMismatchError
from ..schema import ArraySchema, Attribute, Dimension
from ..udf import UserAggregate, get_aggregate
from . import register_operator

__all__ = ["filter", "aggregate", "cjoin", "apply", "project", "regrid"]

Coords = tuple[int, ...]
Predicate = Callable[[Cell], bool]
AggSpec = Union[str, UserAggregate]


def _resolve_aggregate(agg: AggSpec) -> UserAggregate:
    if isinstance(agg, UserAggregate):
        return agg
    return get_aggregate(agg)


def _dense_numeric_blocks(array: SciArray) -> Optional[dict[str, np.ndarray]]:
    """All attribute planes as numpy blocks, when the array is fully dense
    with native-dtype attributes; ``None`` otherwise."""
    hw = array.bounds
    if any(h <= 0 for h in hw):
        return None
    if array.count_present() != int(np.prod(hw)):
        return None
    for a in array.schema.attributes:
        if not isinstance(a.type, ScalarType) or a.type.numpy_dtype == object:
            return None
    return array.region(tuple([1] * array.ndim), hw, fill=0)


def filter(
    array: SciArray,
    predicate: Optional[Predicate] = None,
    name: Optional[str] = None,
    block_predicate: Optional[Callable[[dict[str, np.ndarray]], np.ndarray]] = None,
) -> SciArray:
    """Keep cells satisfying *predicate*; failures become NULL cells.

    The output has exactly the input's dimensions.  NULL input cells stay
    NULL (the predicate is never invoked on them); EMPTY stays EMPTY.

    *block_predicate* is the vectorised form: a function from the dict of
    attribute planes to a boolean ndarray.  On fully dense numeric arrays
    it evaluates in one numpy pass (the bulk-processing strength the array
    model exists for); elsewhere the engine falls back to *predicate*,
    which must then also be supplied (or be derivable — a block predicate
    alone is rejected on sparse data rather than silently mis-evaluated).
    """
    if predicate is None and block_predicate is None:
        raise SchemaError("filter needs a predicate or a block_predicate")
    out = array.empty_like(name=name or f"{array.name}_filtered")
    if block_predicate is not None:
        blocks = _dense_numeric_blocks(array)
        if blocks is not None:
            keep = np.asarray(block_predicate(blocks), dtype=bool)
            shape = next(iter(blocks.values())).shape
            if keep.shape != shape:
                raise SchemaError(
                    f"block_predicate returned shape {keep.shape}, "
                    f"expected {shape}"
                )
            out.set_region(tuple([1] * array.ndim), blocks, null_mask=~keep)
            return out
        if predicate is None:
            raise SchemaError(
                "array is not fully dense; supply a per-cell predicate"
            )
    for coords, cell in array.cells():
        if cell is not None and predicate(cell):
            out.set_unchecked(coords, cell.values)
        else:
            out.set_unchecked(coords, None)
    return out


def aggregate(
    array: SciArray,
    group_dims: Sequence[str],
    agg: AggSpec,
    attr: Optional[str] = None,
    name: Optional[str] = None,
) -> SciArray:
    """Group-by-dimensions aggregation — ``Aggregate(H, {Y}, Sum(*))``.

    *group_dims* lists the k dimensions retained in the output; the
    aggregate folds, for each combination of their values, all PRESENT
    cells of the complementary (n-k)-dimensional slice.  *attr* selects the
    record component to aggregate (default: the first — the paper's ``*``
    for single-value arrays).  Groups whose slice holds no PRESENT cell are
    EMPTY in the output.
    """
    if not group_dims:
        raise SchemaError("aggregate needs at least one grouping dimension; "
                          "use aggregate_all for a scalar reduction")
    if len(set(group_dims)) != len(group_dims):
        raise SchemaError("duplicate grouping dimensions")
    positions = [array.schema.dim_index(d) for d in group_dims]
    aggregate_fn = _resolve_aggregate(agg)
    attr_name = attr or array.attr_names[0]
    array.schema.attribute(attr_name)  # validates

    out_dims = [array.schema.dimensions[p] for p in positions]
    out_schema = ArraySchema(
        name=name or f"{array.schema.name}_agg",
        attributes=(Attribute(aggregate_fn.name, _result_type(aggregate_fn)),),
        dimensions=tuple(out_dims),
    )
    out = SciArray(out_schema, name=name or f"{array.name}_agg")

    # Vectorised fast path: dense numeric single plane + algebraic
    # aggregate -> one numpy reduction over the non-grouped axes.
    attr_obj = array.schema.attribute(attr_name)
    hw = array.bounds
    dense = (
        isinstance(attr_obj.type, ScalarType)
        and attr_obj.type.numpy_dtype != object
        and all(h > 0 for h in hw)
        and array.count_present() == int(np.prod(hw))
        and aggregate_fn.name in ("sum", "avg", "min", "max", "count")
    )
    if dense:
        block = array.region(tuple([1] * array.ndim), hw, attr=attr_name, fill=0)
        data = np.asarray(block, dtype=np.float64)
        reduce_axes = tuple(
            d for d in range(array.ndim) if d not in positions
        )
        if aggregate_fn.name == "count":
            reduced = np.full(
                [hw[p] for p in sorted(positions)],
                int(np.prod([hw[d] for d in reduce_axes])) if reduce_axes else 1,
                dtype=np.int64,
            )
        else:
            reducer = {
                "sum": np.sum, "avg": np.mean, "min": np.min, "max": np.max
            }[aggregate_fn.name]
            reduced = reducer(data, axis=reduce_axes) if reduce_axes else data
        # numpy keeps the surviving axes in ascending original order;
        # permute to the caller's requested group order.
        kept = sorted(positions)
        perm = [kept.index(p) for p in positions]
        reduced = np.transpose(reduced, perm) if reduced.ndim > 1 else reduced
        out.set_region(
            tuple([1] * out.ndim), {aggregate_fn.name: reduced}
        )
        return out

    groups: dict[Coords, Any] = {}
    counts: dict[Coords, bool] = {}
    for coords, cell in array.cells(include_null=False):
        key = tuple(coords[p] for p in positions)
        state = groups.get(key)
        if key not in counts:
            state = aggregate_fn.initial()
            counts[key] = True
        groups[key] = aggregate_fn.transition(state, getattr(cell, attr_name))
    for key, state in groups.items():
        out.set(key, aggregate_fn.final(state))
    return out


def aggregate_all(array: SciArray, agg: AggSpec, attr: Optional[str] = None) -> Any:
    """Scalar reduction over every PRESENT cell (no grouping dimensions).

    Dense numeric arrays with an algebraic aggregate reduce in one numpy
    pass; everything else folds cell by cell.
    """
    aggregate_fn = _resolve_aggregate(agg)
    attr_name = attr or array.attr_names[0]
    attr_obj = array.schema.attribute(attr_name)
    hw = array.bounds
    if (
        isinstance(attr_obj.type, ScalarType)
        and attr_obj.type.numpy_dtype != object
        and all(h > 0 for h in hw)
        and array.count_present() == int(np.prod(hw))
        and aggregate_fn.name in ("sum", "count", "avg", "min", "max", "stdev")
    ):
        block = np.asarray(
            array.region(tuple([1] * array.ndim), hw, attr=attr_name, fill=0),
            dtype=np.float64,
        )
        return {
            "sum": lambda b: float(b.sum()),
            "count": lambda b: int(b.size),
            "avg": lambda b: float(b.mean()),
            "min": lambda b: float(b.min()),
            "max": lambda b: float(b.max()),
            "stdev": lambda b: float(b.std()),
        }[aggregate_fn.name](block)
    return aggregate_fn.compute(
        getattr(cell, attr_name)
        for _, cell in array.cells(include_null=False)
    )


def _result_type(agg: UserAggregate) -> ScalarType:
    if agg.name == "count":
        return INT64
    return FLOAT64


def cjoin(
    left: SciArray,
    right: SciArray,
    predicate: Callable[[Cell, Cell], bool],
    name: Optional[str] = None,
) -> SciArray:
    """Content-based join (Fig. 3): predicate over data values only.

    The result is (m + n)-dimensional — the left dimensions followed by the
    right's.  Where both input cells are PRESENT and the predicate holds,
    the result holds the concatenated record; where both are PRESENT but the
    predicate fails, the result holds NULL (matching Fig. 3); combinations
    involving an EMPTY or NULL input cell are EMPTY.
    """
    out_dims = [Dimension(d.name, d.size) for d in left.schema.dimensions]
    used = {d.name for d in out_dims}
    for d in right.schema.dimensions:
        nm = d.name if d.name not in used else f"{d.name}_r"
        used.add(nm)
        out_dims.append(Dimension(nm, d.size))
    from .structural import _concat_attributes

    out_schema = ArraySchema(
        name=name or f"{left.schema.name}_cjoin_{right.schema.name}",
        attributes=tuple(_concat_attributes(left.schema, right.schema)),
        dimensions=tuple(out_dims),
    )
    out = SciArray(out_schema, name=name or f"{left.name}_cjoin_{right.name}")
    right_cells = [
        (coords, cell) for coords, cell in right.cells(include_null=False)
    ]
    for lcoords, lcell in left.cells(include_null=False):
        for rcoords, rcell in right_cells:
            if predicate(lcell, rcell):
                out.set_unchecked(lcoords + rcoords,
                                  lcell.values + rcell.values)
            else:
                out.set_unchecked(lcoords + rcoords, None)
    return out


def apply(
    array: SciArray,
    fn: Optional[Callable[[Cell], Any]] = None,
    output: Sequence[tuple[str, "str | ScalarType"]] = (),
    name: Optional[str] = None,
    block_fn: Optional[
        Callable[[dict[str, np.ndarray]], "np.ndarray | dict[str, np.ndarray]"]
    ] = None,
) -> SciArray:
    """Per-cell computation producing a new record type.

    *fn* maps each PRESENT input record to the new record (tuple in
    *output* order, or bare value for a single output).  NULL cells map to
    NULL, EMPTY to EMPTY.

    *block_fn* is the vectorised form: a function from the dict of input
    attribute planes to the output plane (single output) or a dict of
    output planes.  Used in one numpy pass on fully dense numeric arrays;
    sparse arrays fall back to *fn* (required in that case).
    """
    if not output:
        raise SchemaError("apply needs at least one output component")
    if fn is None and block_fn is None:
        raise SchemaError("apply needs fn or block_fn")
    out_attrs = tuple(Attribute(n, get_type(t)) for n, t in output)
    out_schema = ArraySchema(
        name=name or f"{array.schema.name}_applied",
        attributes=out_attrs,
        dimensions=array.schema.dimensions,
    )
    out = SciArray(out_schema, name=name or f"{array.name}_applied")
    if block_fn is not None:
        blocks = _dense_numeric_blocks(array)
        if blocks is not None:
            result = block_fn(blocks)
            if isinstance(result, np.ndarray):
                if len(out_attrs) != 1:
                    raise SchemaError(
                        "block_fn returned one plane for a multi-component "
                        "output; return a dict of planes"
                    )
                result = {out_attrs[0].name: result}
            missing = {a.name for a in out_attrs} - set(result)
            if missing:
                raise SchemaError(
                    f"block_fn output missing planes {sorted(missing)}"
                )
            out.set_region(tuple([1] * array.ndim), result)
            return out
        if fn is None:
            raise SchemaError(
                "array is not fully dense; supply a per-cell fn"
            )
    for coords, cell in array.cells():
        if cell is None:
            out.set(coords, None)
            continue
        result = fn(cell)
        if len(out_attrs) == 1 and not isinstance(result, tuple):
            result = (result,)
        out.set(coords, result)
    return out


def project(
    array: SciArray, attrs: Sequence[str], name: Optional[str] = None
) -> SciArray:
    """Narrow each record to the named components."""
    if not attrs:
        raise SchemaError("project needs at least one component")
    out_attrs = tuple(array.schema.attribute(a) for a in attrs)
    out_schema = ArraySchema(
        name=name or f"{array.schema.name}_proj",
        attributes=out_attrs,
        dimensions=array.schema.dimensions,
    )
    out = SciArray(out_schema, name=name or f"{array.name}_proj")
    for coords, cell in array.cells():
        if cell is None:
            out.set_unchecked(coords, None)
        else:
            out.set_unchecked(coords, tuple(getattr(cell, a) for a in attrs))
    return out


def regrid(
    array: SciArray,
    factors: Sequence[int],
    agg: AggSpec = "avg",
    attr: Optional[str] = None,
    name: Optional[str] = None,
) -> SciArray:
    """Coarsen by integer *factors*: output cell (i, j, …) aggregates the
    input block ``[(i-1)*f+1 .. i*f]`` per dimension.

    This is the canonical "regrid" the paper names as the operation science
    users actually want (Section 2.3).  A vectorised numpy path handles
    fully dense numeric arrays; the general path handles sparse/NULL data.
    """
    if len(factors) != array.ndim:
        raise SchemaError(
            f"regrid needs {array.ndim} factors, got {len(factors)}"
        )
    if any(f < 1 for f in factors):
        raise SchemaError("regrid factors must be >= 1")
    aggregate_fn = _resolve_aggregate(agg)
    attr_name = attr or array.attr_names[0]
    attr_obj = array.schema.attribute(attr_name)

    hw = array.bounds
    out_sizes = [(h + f - 1) // f for h, f in zip(hw, factors)]
    out_schema = ArraySchema(
        name=name or f"{array.schema.name}_regrid",
        attributes=(Attribute(aggregate_fn.name, _result_type(aggregate_fn)),),
        dimensions=tuple(
            Dimension(d.name, s)
            for d, s in zip(array.schema.dimensions, out_sizes)
        ),
    )
    out = SciArray(out_schema, name=name or f"{array.name}_regrid")

    dense = (
        isinstance(attr_obj.type, ScalarType)
        and attr_obj.type.numpy_dtype != object
        and array.count_present() == int(np.prod(hw))
        and aggregate_fn.name in ("sum", "avg", "min", "max", "count")
        and all(h % f == 0 for h, f in zip(hw, factors))
    )
    if dense and all(h > 0 for h in hw):
        if aggregate_fn.name == "count":
            data = np.full(out_sizes, int(np.prod(factors)), dtype=np.int64)
        else:
            block = array.region(
                tuple([1] * array.ndim), hw, attr=attr_name, fill=0
            )
            # Fold each dimension: reshape to (..., out, factor, ...), reduce.
            data = np.asarray(block, dtype=np.float64)
            for d, f in enumerate(factors):
                new_shape = (
                    data.shape[:d] + (data.shape[d] // f, f) + data.shape[d + 1 :]
                )
                data = data.reshape(new_shape)
                reducer = {
                    "sum": np.sum, "avg": np.mean, "min": np.min, "max": np.max
                }[aggregate_fn.name]
                data = reducer(data, axis=d + 1)
        out.set_region(tuple([1] * out.ndim), {aggregate_fn.name: data})
        return out

    groups: dict[Coords, Any] = {}
    seeded: set[Coords] = set()
    for coords, cell in array.cells(include_null=False):
        key = tuple((c - 1) // f + 1 for c, f in zip(coords, factors))
        if key not in seeded:
            groups[key] = aggregate_fn.initial()
            seeded.add(key)
        groups[key] = aggregate_fn.transition(groups[key], getattr(cell, attr_name))
    for key, state in groups.items():
        out.set(key, aggregate_fn.final(state))
    return out


register_operator("filter", filter)
register_operator("aggregate", aggregate)
register_operator("aggregate_all", aggregate_all)
register_operator("cjoin", cjoin)
register_operator("apply", apply)
register_operator("project", project)
register_operator("regrid", regrid)
