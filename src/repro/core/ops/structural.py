"""Structural operators (Section 2.2.1).

These operators "create new arrays based purely on the structure of the
inputs" — they are data-agnostic, never needing to read cell values to
decide the output's shape, "which presents opportunity for optimization"
(the planner exploits this; see :mod:`repro.query.planner` and experiment
E2).

The Subsample predicate must be "a conjunction of conditions on each
dimension independently" — ``X = 3 and Y < 4`` is legal, ``X = Y`` is not.
We enforce this syntactically: the predicate is a mapping from dimension
name to a *single-dimension* condition (a range tuple, a set of values, or
a unary callable), so cross-dimension predicates are inexpressible.

Subsampled dimensions are renumbered to stay contiguous (1..K, the model's
invariant), and the original index values are *retained* — as the paper
requires — through an :class:`~repro.core.enhance.IrregularEnhancement`
named ``"source_index"`` mapping each new index back to its source value.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..array import SciArray
from ..cells import Cell
from ..enhance import IrregularEnhancement
from ..errors import BoundsError, SchemaError
from ..schema import ArraySchema, Attribute, Dimension
from . import register_operator

__all__ = [
    "DimCondition",
    "subsample",
    "exists",
    "reshape",
    "sjoin",
    "add_dimension",
    "remove_dimension",
    "concatenate",
    "cross_product",
    "transpose",
]

Coords = tuple[int, ...]

#: A condition on one dimension: an int (equality), a ``(lo, hi)`` inclusive
#: range (either end ``None`` for open), a set/list of admitted values, or a
#: unary predicate such as ``lambda x: x % 2 == 0`` (the paper's ``even(X)``).
DimCondition = Union[int, tuple, set, frozenset, list, range, Callable[[int], bool]]


def _selected_indexes(condition: DimCondition, high_water: int) -> list[int]:
    """Indexes in 1..high_water satisfying *condition*, ascending."""
    if isinstance(condition, bool):
        raise SchemaError("a bare bool is not a dimension condition")
    if isinstance(condition, int):
        return [condition] if 1 <= condition <= high_water else []
    if isinstance(condition, tuple):
        if len(condition) != 2:
            raise SchemaError(f"range condition must be (lo, hi), got {condition!r}")
        lo, hi = condition
        lo = 1 if lo is None else max(1, int(lo))
        hi = high_water if hi is None else min(high_water, int(hi))
        return list(range(lo, hi + 1))
    if isinstance(condition, (set, frozenset, list, range)):
        return sorted(v for v in condition if 1 <= v <= high_water)
    if callable(condition):
        return [i for i in range(1, high_water + 1) if condition(i)]
    raise SchemaError(f"unsupported dimension condition {condition!r}")


def _is_contiguous_range(condition: DimCondition) -> bool:
    return isinstance(condition, tuple) or isinstance(condition, int)


def subsample(
    array: SciArray,
    predicate: Mapping[str, DimCondition],
    name: Optional[str] = None,
) -> SciArray:
    """Select a subslab: the paper's ``Subsample(F, even(X))``.

    *predicate* maps dimension names to independent conditions; unmentioned
    dimensions keep all their values.  The output has the same number of
    dimensions with (generally) fewer values per dimension; original index
    values are retained via the ``source_index`` enhancement.
    """
    unknown = set(predicate) - set(array.dim_names)
    if unknown:
        raise SchemaError(f"subsample predicate names unknown dimensions {sorted(unknown)}")

    selections: list[list[int]] = []
    for d in range(array.ndim):
        hw = array.high_water(d)
        cond = predicate.get(array.dim_names[d])
        selections.append(
            list(range(1, hw + 1)) if cond is None else _selected_indexes(cond, hw)
        )

    out_dims = tuple(
        Dimension(dim.name, len(sel))
        for dim, sel in zip(array.schema.dimensions, selections)
    )
    out_schema = array.schema.with_dimensions(out_dims).renamed(
        name or f"{array.schema.name}_sub"
    )
    out = SciArray(out_schema, name=name or f"{array.name}_sub")

    # Fast path: every selected run is contiguous -> one region copy.
    contiguous = all(
        sel == list(range(sel[0], sel[-1] + 1)) for sel in selections if sel
    ) and all(selections)
    if contiguous and array.count_occupied() == array.count_present():
        lo = tuple(sel[0] for sel in selections)
        hi = tuple(sel[-1] for sel in selections)
        occupied_box = all(
            l <= h for l, h in zip(lo, hi)
        )
        if occupied_box and array.count_present() == int(
            np.prod([h - l + 1 for l, h in zip((1,) * array.ndim, array.bounds)])
        ):
            block = array.region(lo, hi, fill=0)
            out.set_region(tuple([1] * array.ndim), block)
            _attach_source_index(out, array, selections)
            return out

    index_maps = [
        {src: i + 1 for i, src in enumerate(sel)} for sel in selections
    ]
    for coords, cell in array.cells():
        new_coords = []
        for c, m in zip(coords, index_maps):
            nc = m.get(c)
            if nc is None:
                break
            new_coords.append(nc)
        else:
            out.set_unchecked(tuple(new_coords),
                              None if cell is None else cell.values)
    _attach_source_index(out, array, selections)
    return out


def _attach_source_index(
    out: SciArray, source: SciArray, selections: Sequence[Sequence[int]]
) -> None:
    coordinates = {
        dim.name: list(sel)
        for dim, sel in zip(out.schema.dimensions, selections)
    }
    out.enhancements.append(
        IrregularEnhancement(out, coordinates, name="source_index")
    )


def exists(array: SciArray, *coords: int) -> bool:
    """The paper's ``Exists? [A, 7, 7]``."""
    return array.exists(*coords)


def reshape(
    array: SciArray,
    order: Sequence[str],
    new_dims: Sequence[tuple[str, int]],
    name: Optional[str] = None,
) -> SciArray:
    """Change an array's dimensionality keeping the cell count.

    The paper's example: for a 2x3x4 array G with dimensions X, Y, Z,
    ``Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])`` linearizes G "by iterating
    over X most slowly and Y most quickly", then regroups the resulting
    24-vector into an 8x3 array with dimensions U, V (first-listed new
    dimension varying most slowly).
    """
    if sorted(order) != sorted(array.dim_names):
        raise SchemaError(
            f"reshape order {list(order)} must be a permutation of "
            f"{list(array.dim_names)}"
        )
    old_sizes = [array.high_water(d) for d in order]
    new_sizes = [size for _, size in new_dims]
    if int(np.prod(old_sizes)) != int(np.prod(new_sizes)):
        raise SchemaError(
            f"reshape must preserve the cell count: "
            f"{int(np.prod(old_sizes))} != {int(np.prod(new_sizes))}"
        )
    out_schema = array.schema.with_dimensions(
        [Dimension(n, s) for n, s in new_dims]
    ).renamed(name or f"{array.schema.name}_reshaped")
    out = SciArray(out_schema, name=name or f"{array.name}_reshaped")

    perm = [array.schema.dim_index(d) for d in order]

    def linear_index(coords: Coords) -> int:
        idx = 0
        for pos, size in zip(perm, old_sizes):
            idx = idx * size + (coords[pos] - 1)
        return idx

    def delinearize(idx: int) -> Coords:
        rev: list[int] = []
        for size in reversed(new_sizes):
            idx, r = divmod(idx, size)
            rev.append(r + 1)
        return tuple(reversed(rev))

    for coords, cell in array.cells():
        out.set_unchecked(delinearize(linear_index(coords)),
                          None if cell is None else cell.values)
    return out


def sjoin(
    left: SciArray,
    right: SciArray,
    on: Sequence[tuple[str, str]],
    name: Optional[str] = None,
) -> SciArray:
    """Structured join: predicate restricted to dimension values (Fig. 1).

    *on* lists ``(left_dim, right_dim)`` equality pairs — k of them.  For an
    m-dimensional left and n-dimensional right input the result is
    (m + n - k)-dimensional: the left dimensions, then the right's
    non-joined dimensions, "with concatenated cell tuples wherever the join
    predicate is true".  Cells lacking a partner are EMPTY in the result.
    """
    if not on:
        raise SchemaError("sjoin needs at least one dimension-equality pair")
    left_join = [l for l, _ in on]
    right_join = [r for _, r in on]
    for d in left_join:
        left.schema.dimension(d)
    for d in right_join:
        right.schema.dimension(d)
    if len(set(left_join)) != len(left_join) or len(set(right_join)) != len(right_join):
        raise SchemaError("a dimension may appear only once in the join predicate")

    right_keep = [d for d in right.dim_names if d not in right_join]
    out_dims = [
        Dimension(d.name, d.size) for d in left.schema.dimensions
    ]
    used = {d.name for d in out_dims}
    for dname in right_keep:
        dim = right.schema.dimension(dname)
        out_name = dname if dname not in used else f"{dname}_r"
        used.add(out_name)
        out_dims.append(Dimension(out_name, dim.size))

    out_attrs = _concat_attributes(left.schema, right.schema)
    out_schema = ArraySchema(
        name=name or f"{left.schema.name}_sjoin_{right.schema.name}",
        attributes=tuple(out_attrs),
        dimensions=tuple(out_dims),
    )
    out = SciArray(out_schema, name=name or f"{left.name}_sjoin_{right.name}")

    # Vectorised fast path: a full-dimension equijoin of two fully dense
    # numeric arrays of equal (permuted) extents is a plane concatenation.
    if len(on) == left.ndim == right.ndim and set(left_join) == set(
        left.dim_names
    ):
        # right axis order expressed in left dimension order
        perm = [right.schema.dim_index(r) for _, r in sorted(
            on, key=lambda pair: left.schema.dim_index(pair[0])
        )]
        left_ordered_bounds = tuple(
            left.high_water(left.schema.dim_index(l))
            for l, _ in sorted(on, key=lambda p: left.schema.dim_index(p[0]))
        )
        right_perm_bounds = tuple(right.bounds[p] for p in perm)
        from ..datatypes import ScalarType as _ST

        def _all_native(a: SciArray) -> bool:
            return all(
                isinstance(attr.type, _ST) and attr.type.numpy_dtype != object
                for attr in a.schema.attributes
            )

        if (
            left.bounds == left_ordered_bounds == right_perm_bounds
            and _all_native(left)
            and _all_native(right)
            and left.count_present() == int(np.prod(left.bounds)) > 0
            and right.count_present() == int(np.prod(right.bounds))
        ):
            ones = tuple([1] * left.ndim)
            lblocks = left.region(ones, left.bounds, fill=0)
            rblocks = right.region(tuple([1] * right.ndim), right.bounds, fill=0)
            merged: dict[str, np.ndarray] = {}
            for attr, la in zip(out_attrs[: len(left.schema.attributes)],
                                left.schema.attributes):
                merged[attr.name] = lblocks[la.name]
            # b = transpose(r, perm): b[left_idx] = r[r_idx] with
            # r_idx[perm[i]] = left_idx[i] — the join's coordinate match.
            for attr, ra in zip(out_attrs[len(left.schema.attributes):],
                                right.schema.attributes):
                merged[attr.name] = np.transpose(rblocks[ra.name], perm)
            out.set_region(ones, merged)
            return out

    # Build a hash index over the right input keyed by its join coords.
    right_join_pos = [right.schema.dim_index(d) for d in right_join]
    right_keep_pos = [right.schema.dim_index(d) for d in right_keep]
    index: dict[Coords, list[tuple[Coords, Optional[Cell]]]] = {}
    for coords, cell in right.cells():
        key = tuple(coords[p] for p in right_join_pos)
        keep = tuple(coords[p] for p in right_keep_pos)
        index.setdefault(key, []).append((keep, cell))

    left_join_pos = [left.schema.dim_index(d) for d in left_join]
    for coords, cell in left.cells():
        key = tuple(coords[p] for p in left_join_pos)
        for keep, rcell in index.get(key, ()):
            if cell is None or rcell is None:
                out.set_unchecked(coords + keep, None)
            else:
                out.set_unchecked(coords + keep, cell.values + rcell.values)
    return out


def _concat_attributes(
    left: ArraySchema, right: ArraySchema
) -> list[Attribute]:
    out_attrs: list[Attribute] = list(left.attributes)
    names = {a.name for a in out_attrs}
    for a in right.attributes:
        aname = a.name if a.name not in names else f"{a.name}_r"
        names.add(aname)
        out_attrs.append(Attribute(aname, a.type))
    return out_attrs


def add_dimension(
    array: SciArray, dim_name: str, name: Optional[str] = None
) -> SciArray:
    """Append a new size-1 dimension (every cell gets coordinate 1)."""
    if dim_name in array.dim_names:
        raise SchemaError(f"array already has a dimension named {dim_name!r}")
    out_schema = array.schema.with_dimensions(
        list(array.schema.dimensions) + [Dimension(dim_name, 1)]
    ).renamed(name or array.schema.name)
    out = SciArray(out_schema, name=name or f"{array.name}_plus_{dim_name}")
    for coords, cell in array.cells():
        out.set_unchecked(coords + (1,),
                          None if cell is None else cell.values)
    return out


def remove_dimension(
    array: SciArray, dim_name: str, name: Optional[str] = None
) -> SciArray:
    """Drop a dimension whose extent is a single value."""
    pos = array.schema.dim_index(dim_name)
    if array.high_water(pos) > 1:
        raise SchemaError(
            f"cannot remove dimension {dim_name!r} with extent "
            f"{array.high_water(pos)} > 1"
        )
    dims = [d for d in array.schema.dimensions if d.name != dim_name]
    if not dims:
        raise SchemaError("cannot remove the last dimension")
    out_schema = array.schema.with_dimensions(dims).renamed(
        name or array.schema.name
    )
    out = SciArray(out_schema, name=name or f"{array.name}_minus_{dim_name}")
    from ..datatypes import ScalarType as _ST

    hw = array.bounds
    if (
        all(h > 0 for h in hw)
        and array.count_present() == int(np.prod(hw))
        and all(
            isinstance(a.type, _ST) and a.type.numpy_dtype != object
            for a in array.schema.attributes
        )
    ):
        blocks = array.region(tuple([1] * array.ndim), hw, fill=0)
        squeezed = {k: np.squeeze(v, axis=pos) for k, v in blocks.items()}
        out.set_region(tuple([1] * out.ndim), squeezed)
        return out
    for coords, cell in array.cells():
        out.set_unchecked(coords[:pos] + coords[pos + 1 :],
                          None if cell is None else cell.values)
    return out


def concatenate(
    left: SciArray,
    right: SciArray,
    dim: str,
    name: Optional[str] = None,
) -> SciArray:
    """Concatenate two arrays along *dim*; other extents must agree."""
    if left.dim_names != right.dim_names:
        raise SchemaError(
            f"concatenate inputs must share dimensions: "
            f"{left.dim_names} vs {right.dim_names}"
        )
    if left.attr_names != right.attr_names:
        raise SchemaError("concatenate inputs must share the cell record type")
    pos = left.schema.dim_index(dim)
    for d in range(left.ndim):
        if d != pos and left.high_water(d) != right.high_water(d):
            raise SchemaError(
                f"extent mismatch on dimension {left.dim_names[d]!r}: "
                f"{left.high_water(d)} vs {right.high_water(d)}"
            )
    offset = left.high_water(pos)
    dims = list(left.schema.dimensions)
    dims[pos] = Dimension(dim, offset + right.high_water(pos))
    out_schema = left.schema.with_dimensions(dims).renamed(
        name or f"{left.schema.name}_concat"
    )
    out = SciArray(out_schema, name=name or f"{left.name}_concat_{right.name}")
    for coords, cell in left.cells():
        out.set_unchecked(coords, None if cell is None else cell.values)
    for coords, cell in right.cells():
        shifted = coords[:pos] + (coords[pos] + offset,) + coords[pos + 1 :]
        out.set_unchecked(shifted, None if cell is None else cell.values)
    return out


def cross_product(
    left: SciArray, right: SciArray, name: Optional[str] = None
) -> SciArray:
    """The (m + n)-dimensional cross product with concatenated records."""
    out_dims = [Dimension(d.name, d.size) for d in left.schema.dimensions]
    used = {d.name for d in out_dims}
    for d in right.schema.dimensions:
        out_name = d.name if d.name not in used else f"{d.name}_r"
        used.add(out_name)
        out_dims.append(Dimension(out_name, d.size))
    out_schema = ArraySchema(
        name=name or f"{left.schema.name}_x_{right.schema.name}",
        attributes=tuple(_concat_attributes(left.schema, right.schema)),
        dimensions=tuple(out_dims),
    )
    out = SciArray(out_schema, name=name or f"{left.name}_x_{right.name}")
    right_cells = list(right.cells())
    for lcoords, lcell in left.cells():
        for rcoords, rcell in right_cells:
            if lcell is None or rcell is None:
                out.set_unchecked(lcoords + rcoords, None)
            else:
                out.set_unchecked(lcoords + rcoords, lcell.values + rcell.values)
    return out


def transpose(
    array: SciArray, order: Sequence[str], name: Optional[str] = None
) -> SciArray:
    """Reorder dimensions (a pure coordinate transformation)."""
    if sorted(order) != sorted(array.dim_names):
        raise SchemaError(
            f"transpose order {list(order)} must be a permutation of "
            f"{list(array.dim_names)}"
        )
    perm = [array.schema.dim_index(d) for d in order]
    dims = [array.schema.dimensions[p] for p in perm]
    out_schema = array.schema.with_dimensions(dims).renamed(
        name or f"{array.schema.name}_t"
    )
    out = SciArray(out_schema, name=name or f"{array.name}_t")
    for coords, cell in array.cells():
        out.set_unchecked(tuple(coords[p] for p in perm),
                          None if cell is None else cell.values)
    return out


register_operator("subsample", subsample)
register_operator("exists", exists)
register_operator("reshape", reshape)
register_operator("sjoin", sjoin)
register_operator("add_dimension", add_dimension)
register_operator("remove_dimension", remove_dimension)
register_operator("concatenate", concatenate)
register_operator("cross_product", cross_product)
register_operator("transpose", transpose)
