"""Array operators (Section 2.2).

Two broad categories, exactly as the paper divides them:

* :mod:`repro.core.ops.structural` — operators that "create new arrays based
  purely on the structure of the inputs" (data-agnostic, hence optimizable):
  Subsample, Exists?, Reshape, Sjoin, add/remove dimension, Concatenate,
  Cross product, Transpose.
* :mod:`repro.core.ops.content` — operators "whose result depends on the
  data stored in the input array": Filter, Aggregate, Cjoin, Apply, Project,
  Regrid.

All operators are functions from arrays to a new array; inputs are never
mutated.  Every operator is also registered in :data:`OPERATORS`, the
extension point through which users "add their own array operations"
(Section 2.3) and through which the query executor dispatches parse trees.
"""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownFunctionError

#: name -> callable; the user-extendable operator catalog (Section 2.3).
OPERATORS: dict[str, Callable] = {}


def register_operator(name: str, fn: Callable, replace: bool = False) -> Callable:
    """Add an operation to the engine's catalog (Postgres-style extension)."""
    key = name.lower()
    if key in OPERATORS and not replace:
        raise UnknownFunctionError(f"operator {name!r} is already registered")
    OPERATORS[key] = fn
    return fn


def get_operator(name: str) -> Callable:
    try:
        return OPERATORS[name.lower()]
    except KeyError:
        raise UnknownFunctionError(f"no operator named {name!r}") from None


from . import structural as structural  # noqa: E402  (populate the catalog)
from . import content as content  # noqa: E402

from .structural import (  # noqa: E402
    add_dimension,
    concatenate,
    cross_product,
    exists,
    remove_dimension,
    reshape,
    sjoin,
    subsample,
    transpose,
)
from .content import aggregate, apply, cjoin, filter, project, regrid  # noqa: E402

__all__ = [
    "OPERATORS",
    "register_operator",
    "get_operator",
    "subsample",
    "exists",
    "reshape",
    "sjoin",
    "add_dimension",
    "remove_dimension",
    "concatenate",
    "cross_product",
    "transpose",
    "filter",
    "aggregate",
    "cjoin",
    "apply",
    "project",
    "regrid",
]
