"""Cell values: the records stored at each array address (Section 2.1).

Every cell of an array holds one record whose components are the schema's
attributes — "one or more scalar values, and/or one or more arrays".  The
paper addresses components as ``A[7, 8].x``; :class:`Cell` supports exactly
that, plus tuple-like behaviour for convenience.

Three cell states exist in the engine:

* **present** — a record was written; ``A[i, j]`` returns a :class:`Cell`;
* **NULL** — the cell exists but holds NULL (Filter's output for cells whose
  predicate is false, Section 2.2.2); reads return ``None``;
* **EMPTY** — never written (sparse arrays); ``Exists?`` is false and plain
  reads raise :class:`~repro.core.errors.EmptyCellError`.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from .errors import SchemaError, UnknownComponentError

__all__ = ["Cell", "CellState", "EMPTY", "NULL", "PRESENT"]


class CellState:
    """Enumeration of cell storage states (kept as plain ints for numpy)."""

    EMPTY = 0
    PRESENT = 1
    NULL = 2


EMPTY = CellState.EMPTY
PRESENT = CellState.PRESENT
NULL = CellState.NULL


class Cell:
    """An immutable cell record with named components.

    Supports the paper's component addressing (``cell.x``), index access
    (``cell[0]``), iteration, tuple equality, and — for single-attribute
    cells — direct equality with the bare scalar, so the Figure 1/3 examples
    read naturally (``A[1] == 1``).
    """

    __slots__ = ("_names", "_values")

    def __init__(self, names: Sequence[str], values: Sequence[Any]) -> None:
        if len(names) != len(values):
            raise SchemaError(
                f"cell has {len(names)} component names but {len(values)} values"
            )
        object.__setattr__(self, "_names", tuple(names))
        object.__setattr__(self, "_values", tuple(values))

    # -- component access ----------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        names = object.__getattribute__(self, "_names")
        values = object.__getattribute__(self, "_values")
        try:
            return values[names.index(name)]
        except ValueError:
            raise UnknownComponentError(
                f"cell has no component {name!r}; components are {names}"
            ) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Cell records are immutable")

    def __getitem__(self, index: "int | str") -> Any:
        if isinstance(index, str):
            return getattr(self, index)
        return self._values[index]

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return getattr(self, name)
        except AttributeError:
            return default

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self._names, self._values))

    def concat(self, other: "Cell", rename: bool = True) -> "Cell":
        """Concatenate two cell records — the join output of Sjoin/Cjoin.

        On a name clash the right-hand component is suffixed with ``_r``
        (when *rename* is set), mirroring SQL's qualified output columns.
        """
        names = list(self._names)
        for n in other._names:
            if n in names and rename:
                n = f"{n}_r"
            names.append(n)
        return Cell(names, self._values + other._values)

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Cell):
            return self._names == other._names and self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        if len(self._values) == 1:
            return self._values[0] == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._names, self._values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self._names, self._values))
        return f"Cell({inner})"
