"""Array enhancements: alternate coordinate systems (Section 2.1).

A *basic* array has contiguous integer dimensions 1..N.  Enhancing an array
with a UDF adds pseudo-coordinates: transposition/scaling/translation
(integer→integer UDFs such as the paper's ``Scale10``), irregular
non-integer coordinates (16.3, 27.6, 48.2, …), well-known coordinate
systems such as Mercator geometry, and the wall-clock mapping of the
``history`` dimension of updatable arrays (Section 2.5).

After ``Enhance My_remote with Scale10`` both systems address the array:
``A[7, 8]`` uses the basic integer coordinates and ``A{70, 80}`` (in this
engine, ``a.mapped[70, 80]``) the enhanced ones.  The model deliberately
"does not dictate how pseudo-coordinates are implemented"; we use the
functional representation when an inverse exists and a lookup structure for
irregular coordinate lists.
"""

from __future__ import annotations

import bisect
import datetime as _dt
import math
from typing import Any, Optional, Sequence

from .array import SciArray
from .errors import BoundsError, SchemaError
from .schema import HISTORY_DIMENSION
from .udf import UserFunction, get_function

__all__ = [
    "Enhancement",
    "FunctionEnhancement",
    "IrregularEnhancement",
    "WallClockEnhancement",
    "MercatorEnhancement",
    "enhance",
]

Coords = tuple[int, ...]


class Enhancement:
    """Base class: a bidirectional mapping between basic integer coordinates
    and enhanced (pseudo-)coordinates."""

    #: Name used to select among multiple enhancements on one array.
    name: str = "enhancement"

    def from_basic(self, coords: Coords) -> tuple:
        """Map basic 1-based integer coordinates to enhanced coordinates."""
        raise NotImplementedError

    def to_basic(self, mapped: tuple) -> Coords:
        """Map enhanced coordinates back to basic integer coordinates."""
        raise NotImplementedError


class FunctionEnhancement(Enhancement):
    """Enhancement backed by a registered UDF (the ``Scale10`` case).

    The UDF is applied to the dimension values of each cell.  ``dims``
    optionally restricts the enhancement to a prefix subset of dimensions by
    name — unnamed dimensions pass through unchanged, which is how
    enhancement functions stay "cognizant of" the implicit history dimension
    on updatable arrays (Section 2.5).
    """

    def __init__(
        self,
        function: "UserFunction | str",
        array: SciArray,
        dims: Optional[Sequence[str]] = None,
    ) -> None:
        self.function = get_function(function) if isinstance(function, str) else function
        self.name = self.function.name
        self.array = array
        all_dims = array.dim_names
        if dims is None:
            if self.function.arity == len(all_dims):
                dims = all_dims
            elif (
                self.function.arity == len(all_dims) - 1
                and all_dims[-1] == HISTORY_DIMENSION
            ):
                dims = all_dims[:-1]
            else:
                raise SchemaError(
                    f"function {self.function.name!r} takes {self.function.arity} "
                    f"arguments; array has dimensions {all_dims}"
                )
        missing = set(dims) - set(all_dims)
        if missing:
            raise SchemaError(f"unknown dimensions {sorted(missing)}")
        self.dims = tuple(dims)
        self._positions = tuple(array.schema.dim_index(d) for d in self.dims)

    def from_basic(self, coords: Coords) -> tuple:
        args = [coords[p] for p in self._positions]
        result = self.function(*args)
        if not isinstance(result, tuple):
            result = (result,)
        out = list(coords)
        for p, v in zip(self._positions, result):
            out[p] = v
        return tuple(out)

    def to_basic(self, mapped: tuple) -> Coords:
        if len(mapped) != self.array.ndim:
            # Allow addressing only the enhanced dims when the remainder is
            # the history dimension (latest implied elsewhere).
            raise BoundsError(
                f"enhanced address needs {self.array.ndim} coordinates, "
                f"got {len(mapped)}"
            )
        args = [mapped[p] for p in self._positions]
        result = self.function.invert(*args)
        if not isinstance(result, tuple):
            result = (result,)
        out = list(mapped)
        for p, v in zip(self._positions, result):
            out[p] = int(v)
        return tuple(int(c) for c in out)


class IrregularEnhancement(Enhancement):
    """Non-integer, non-contiguous coordinates given as per-dimension lists.

    ``coordinates[d][i-1]`` is the enhanced coordinate of basic index ``i``
    on dimension ``d``.  Addressing through the enhancement accepts either an
    exact listed coordinate or, with ``tolerance``, the nearest one within
    that distance.
    """

    def __init__(
        self,
        array: SciArray,
        coordinates: dict[str, Sequence[float]],
        name: str = "irregular",
        tolerance: float = 0.0,
    ) -> None:
        self.name = name
        self.array = array
        self.tolerance = tolerance
        self._coords: dict[int, list[float]] = {}
        for dim_name, values in coordinates.items():
            pos = array.schema.dim_index(dim_name)
            values = list(values)
            if sorted(values) != values:
                raise SchemaError(
                    f"irregular coordinates for {dim_name!r} must be ascending"
                )
            declared = array.schema.dimensions[pos].size
            if declared is not None and len(values) < declared:
                raise SchemaError(
                    f"dimension {dim_name!r} has size {declared} but only "
                    f"{len(values)} irregular coordinates were given"
                )
            self._coords[pos] = values

    def from_basic(self, coords: Coords) -> tuple:
        out = list(coords)
        for pos, values in self._coords.items():
            index = coords[pos]
            if not 1 <= index <= len(values):
                raise BoundsError(
                    f"basic index {index} outside irregular coordinate list "
                    f"(1..{len(values)})"
                )
            out[pos] = values[index - 1]
        return tuple(out)

    def to_basic(self, mapped: tuple) -> Coords:
        if len(mapped) != self.array.ndim:
            raise BoundsError(
                f"enhanced address needs {self.array.ndim} coordinates, "
                f"got {len(mapped)}"
            )
        out = list(mapped)
        for pos, values in self._coords.items():
            target = float(mapped[pos])
            i = bisect.bisect_left(values, target)
            best = None
            for j in (i - 1, i):
                if 0 <= j < len(values):
                    if best is None or abs(values[j] - target) < abs(values[best] - target):
                        best = j
            if best is None or abs(values[best] - target) > self.tolerance and values[best] != target:
                raise BoundsError(
                    f"no irregular coordinate within {self.tolerance} of {target}"
                )
            out[pos] = best + 1
        return tuple(int(c) for c in out)


class WallClockEnhancement(Enhancement):
    """Mapping between the integer history dimension and wall-clock time.

    Section 2.5: "It is possible to enhance the history dimension with a
    mapping between the integers noted above and wall clock time."  The
    transaction manager appends a timestamp per committed history value;
    addressing by datetime resolves to the last history value committed at
    or before that instant (as-of semantics).
    """

    name = "wallclock"

    def __init__(self, array: SciArray, dim: str = HISTORY_DIMENSION) -> None:
        self.array = array
        self._pos = array.schema.dim_index(dim)
        self._times: list[_dt.datetime] = []

    def record_commit(self, when: _dt.datetime) -> int:
        """Register the wall-clock time of the next history value; returns
        the history value assigned."""
        if self._times and when < self._times[-1]:
            raise SchemaError("commit timestamps must be non-decreasing")
        self._times.append(when)
        return len(self._times)

    def from_basic(self, coords: Coords) -> tuple:
        out = list(coords)
        h = coords[self._pos]
        if not 1 <= h <= len(self._times):
            raise BoundsError(f"history value {h} has no recorded wall-clock time")
        out[self._pos] = self._times[h - 1]
        return tuple(out)

    def to_basic(self, mapped: tuple) -> Coords:
        out = list(mapped)
        when = mapped[self._pos]
        if not isinstance(when, _dt.datetime):
            raise BoundsError("wall-clock address must be a datetime")
        i = bisect.bisect_right(self._times, when)
        if i == 0:
            raise BoundsError(f"no history value committed at or before {when}")
        out[self._pos] = i
        return tuple(out)

    def to_basic_history(self, when: _dt.datetime) -> int:
        """The as-of history value for *when* (convenience for time travel)."""
        i = bisect.bisect_right(self._times, when)
        if i == 0:
            raise BoundsError(f"no history value committed at or before {when}")
        return i


class MercatorEnhancement(Enhancement):
    """A built-in well-known coordinate system (Section 2.1's example).

    Maps integer grid indexes to (longitude, Mercator latitude) degrees for
    a regular grid with the given resolution.  Dimension order is assumed
    (x=longitude index, y=latitude index, …extra dims pass through).
    """

    name = "mercator"

    def __init__(
        self,
        array: SciArray,
        degrees_per_cell: float,
        lon_origin: float = -180.0,
        lat_origin: float = -85.0,
    ) -> None:
        if array.ndim < 2:
            raise SchemaError("Mercator enhancement needs at least 2 dimensions")
        self.array = array
        self.res = degrees_per_cell
        self.lon0 = lon_origin
        self.lat0 = lat_origin

    @staticmethod
    def _lat_to_mercator(lat_deg: float) -> float:
        rad = math.radians(lat_deg)
        return math.degrees(math.log(math.tan(math.pi / 4 + rad / 2)))

    @staticmethod
    def _mercator_to_lat(y_deg: float) -> float:
        rad = math.radians(y_deg)
        return math.degrees(2 * math.atan(math.exp(rad)) - math.pi / 2)

    def from_basic(self, coords: Coords) -> tuple:
        lon = self.lon0 + (coords[0] - 1) * self.res
        lat = self.lat0 + (coords[1] - 1) * self.res
        return (lon, self._lat_to_mercator(lat)) + tuple(coords[2:])

    def to_basic(self, mapped: tuple) -> Coords:
        lon, merc = float(mapped[0]), float(mapped[1])
        lat = self._mercator_to_lat(merc)
        i = round((lon - self.lon0) / self.res) + 1
        j = round((lat - self.lat0) / self.res) + 1
        return (int(i), int(j)) + tuple(int(c) for c in mapped[2:])


def enhance(
    array: SciArray,
    enhancement: "Enhancement | UserFunction | str",
    dims: Optional[Sequence[str]] = None,
) -> Enhancement:
    """Attach an enhancement to *array* — the paper's ``Enhance A with F``.

    Accepts a ready :class:`Enhancement` or a UDF (object or registered
    name), which is wrapped in a :class:`FunctionEnhancement`.  Returns the
    attached enhancement; an array may carry "any number" of them.
    """
    if isinstance(enhancement, (UserFunction, str)):
        enhancement = FunctionEnhancement(enhancement, array, dims=dims)
    array.enhancements.append(enhancement)
    return enhancement
