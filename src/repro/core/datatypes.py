"""Scalar type system for SciDB arrays.

The paper (Section 2.1) requires that every cell of an array carry values of
declared types, that users can add their own data types (Section 2.3), and
that any type ``x`` can be wrapped as ``uncertain x`` (Section 2.13).  This
module defines:

* the built-in scalar types (``int8`` .. ``float64``, ``bool``, ``string``,
  ``datetime``),
* a registry through which user-defined types are added, and
* :func:`uncertain`, which derives the two-component "value + error bar"
  type for any registered base type.

Types are descriptors, not containers: an :class:`ScalarType` knows how to
validate and coerce Python values and which numpy dtype backs it inside a
chunk.  The :class:`~repro.core.uncertainty.UncertainValue` runtime object
lives in :mod:`repro.core.uncertainty`; here we only describe its type.
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from .errors import SchemaError, TypeMismatchError

__all__ = [
    "ScalarType",
    "TypeRegistry",
    "registry",
    "get_type",
    "define_type",
    "uncertain",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "BOOL",
    "STRING",
    "DATETIME",
]


@dataclass(frozen=True)
class ScalarType:
    """Description of a scalar data type storable in array cells.

    Parameters
    ----------
    name:
        The type's name as used in ``define`` statements (e.g. ``"float"``).
    numpy_dtype:
        The dtype used for the value inside a chunk.  Object dtype is used
        for types numpy cannot represent natively (strings of unbounded
        length, user-defined types).
    validator:
        Optional predicate; values failing it raise
        :class:`TypeMismatchError`.
    coerce:
        Callable converting an accepted Python value into canonical form.
    null_value:
        The in-chunk sentinel representing NULL for this type.
    uncertain_base:
        For ``uncertain x`` types, the base type; ``None`` otherwise.
    """

    name: str
    numpy_dtype: np.dtype
    validator: Optional[Callable[[Any], bool]] = None
    coerce: Callable[[Any], Any] = field(default=lambda v: v)
    null_value: Any = None
    uncertain_base: Optional["ScalarType"] = None

    @property
    def is_uncertain(self) -> bool:
        """Whether this is an ``uncertain x`` type (Section 2.13)."""
        return self.uncertain_base is not None

    @property
    def is_numeric(self) -> bool:
        return np.issubdtype(self.numpy_dtype, np.number)

    def validate(self, value: Any) -> Any:
        """Coerce *value* to this type, raising on mismatch.

        NULL (``None``) is accepted by every type; nullability is a property
        of cells, not types, in the paper's model (Filter produces NULL
        cells of any type).
        """
        if value is None:
            return None
        if self.is_uncertain:
            from .uncertainty import UncertainValue

            if isinstance(value, UncertainValue):
                return value
            if isinstance(value, tuple) and len(value) == 2:
                return UncertainValue(
                    self.uncertain_base.validate(value[0]), float(value[1])
                )
            # A bare value is promoted to an exact (zero-error) measurement.
            return UncertainValue(self.uncertain_base.validate(value), 0.0)
        if self.validator is not None and not self.validator(value):
            raise TypeMismatchError(
                f"value {value!r} is not valid for type {self.name!r}"
            )
        try:
            return self.coerce(value)
        except (TypeError, ValueError) as exc:
            raise TypeMismatchError(
                f"cannot coerce {value!r} to type {self.name!r}: {exc}"
            ) from exc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _int_factory(name: str, bits: int) -> ScalarType:
    lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1

    def check(v: Any) -> bool:
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            return False
        return lo <= int(v) <= hi

    return ScalarType(
        name=name,
        numpy_dtype=np.dtype(f"int{bits}"),
        validator=check,
        coerce=int,
        null_value=np.iinfo(f"int{bits}").min,
    )


def _float_factory(name: str, bits: int) -> ScalarType:
    def check(v: Any) -> bool:
        return isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(
            v, bool
        )

    return ScalarType(
        name=name,
        numpy_dtype=np.dtype(f"float{bits}"),
        validator=check,
        coerce=float,
        null_value=math.nan,
    )


INT8 = _int_factory("int8", 8)
INT16 = _int_factory("int16", 16)
INT32 = _int_factory("int32", 32)
INT64 = _int_factory("int64", 64)
FLOAT32 = _float_factory("float32", 32)
FLOAT64 = _float_factory("float64", 64)
BOOL = ScalarType(
    name="bool",
    numpy_dtype=np.dtype("bool"),
    validator=lambda v: isinstance(v, (bool, np.bool_)),
    coerce=bool,
    null_value=False,
)
STRING = ScalarType(
    name="string",
    numpy_dtype=np.dtype(object),
    validator=lambda v: isinstance(v, str),
    coerce=str,
    null_value=None,
)
DATETIME = ScalarType(
    name="datetime",
    numpy_dtype=np.dtype(object),
    validator=lambda v: isinstance(v, _dt.datetime),
    coerce=lambda v: v,
    null_value=None,
)


class TypeRegistry:
    """Registry of named types; the extension point of Section 2.3.

    User-defined types are registered once and then usable in any ``define``
    statement, exactly like built-ins.  ``uncertain x`` types are derived
    lazily from their base (Section 2.13: "SciDB will support 'uncertain x'
    for any data type x that is available in the engine").
    """

    def __init__(self) -> None:
        self._types: dict[str, ScalarType] = {}
        for t in (INT8, INT16, INT32, INT64, FLOAT32, FLOAT64, BOOL, STRING, DATETIME):
            self._types[t.name] = t
        # Convenience aliases used throughout the paper's examples.
        self._types["int"] = INT64
        self._types["integer"] = INT64
        self._types["float"] = FLOAT64
        self._types["double"] = FLOAT64

    def define(
        self,
        name: str,
        *,
        validator: Optional[Callable[[Any], bool]] = None,
        coerce: Callable[[Any], Any] = lambda v: v,
    ) -> ScalarType:
        """Register a user-defined type and return its descriptor."""
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid type name {name!r}")
        if name in self._types:
            raise SchemaError(f"type {name!r} is already defined")
        t = ScalarType(
            name=name, numpy_dtype=np.dtype(object), validator=validator, coerce=coerce
        )
        self._types[name] = t
        return t

    def get(self, name: str) -> ScalarType:
        """Look up a type by name, deriving ``uncertain x`` on demand."""
        if name in self._types:
            return self._types[name]
        if name.startswith("uncertain "):
            base = self.get(name[len("uncertain ") :].strip())
            derived = ScalarType(
                name=f"uncertain {base.name}",
                numpy_dtype=np.dtype(object),
                uncertain_base=base,
            )
            self._types[derived.name] = derived
            return derived
        raise SchemaError(f"unknown type {name!r}")

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
        except SchemaError:
            return False
        return True

    def names(self) -> list[str]:
        return sorted(self._types)


#: The process-wide registry used when schema objects are given type *names*.
registry = TypeRegistry()


def get_type(spec: "str | ScalarType") -> ScalarType:
    """Resolve a type name or descriptor to a descriptor."""
    if isinstance(spec, ScalarType):
        return spec
    return registry.get(spec)


def define_type(
    name: str,
    *,
    validator: Optional[Callable[[Any], bool]] = None,
    coerce: Callable[[Any], Any] = lambda v: v,
) -> ScalarType:
    """Register a user-defined type in the process-wide registry."""
    return registry.define(name, validator=validator, coerce=coerce)


def uncertain(base: "str | ScalarType") -> ScalarType:
    """Return the ``uncertain x`` type for *base* (Section 2.13)."""
    return registry.get(f"uncertain {get_type(base).name}")
