"""Uncertain data elements (Section 2.13).

The paper reports "near universal consensus" on a simple model: every value
may carry a normal-distribution error bar (a standard deviation), and the
executor performs the corresponding interval arithmetic when combining
uncertain elements.  :class:`UncertainValue` implements that model with
first-order Gaussian error propagation:

* ``(a ± sa) + (b ± sb) = (a+b) ± sqrt(sa² + sb²)`` (and similarly for ``-``),
* ``(a ± sa) * (b ± sb) = ab ± sqrt((b·sa)² + (a·sb)²)``,
* ``(a ± sa) / (b ± sb)`` by the standard relative-error formula,
* ``f(a ± sa) = f(a) ± |f'(a)|·sa`` for the unary maps we expose.

Uncertain *cell membership* — the PanSTARRS case where an observation's
true position may fall in a neighbouring partition — is modelled by
:class:`PositionUncertainty`, which yields the set of integer cells a
measured coordinate may occupy; the grid layer uses it to replicate
boundary observations (see :mod:`repro.cluster.grid`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import TypeMismatchError

__all__ = [
    "UncertainValue",
    "PositionUncertainty",
    "SampledValue",
    "combine_mean",
]


def _as_uncertain(value: "UncertainValue | float | int") -> "UncertainValue":
    if isinstance(value, UncertainValue):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(
            f"cannot combine uncertain value with {type(value).__name__}"
        )
    return UncertainValue(float(value), 0.0)


@dataclass(frozen=True)
class UncertainValue:
    """A value with a normal-distribution error bar.

    ``value`` is the mean and ``sigma`` the standard deviation.  ``sigma``
    must be non-negative; an exact value has ``sigma == 0``.
    """

    value: float
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise TypeMismatchError("error bar (sigma) must be non-negative")

    # -- interval helpers ---------------------------------------------------

    def interval(self, k: float = 1.0) -> tuple[float, float]:
        """The ``±k·sigma`` interval around the mean."""
        return (self.value - k * self.sigma, self.value + k * self.sigma)

    def overlaps(self, other: "UncertainValue", k: float = 1.0) -> bool:
        """Whether the ``±k·sigma`` intervals of the two values intersect.

        This is the predicate "uncertain equality" used by uncertain joins.
        """
        other = _as_uncertain(other)
        lo1, hi1 = self.interval(k)
        lo2, hi2 = other.interval(k)
        return lo1 <= hi2 and lo2 <= hi1

    # -- Gaussian-propagation arithmetic ------------------------------------

    def __add__(self, other: "UncertainValue | float | int") -> "UncertainValue":
        o = _as_uncertain(other)
        return UncertainValue(self.value + o.value, math.hypot(self.sigma, o.sigma))

    __radd__ = __add__

    def __neg__(self) -> "UncertainValue":
        return UncertainValue(-self.value, self.sigma)

    def __sub__(self, other: "UncertainValue | float | int") -> "UncertainValue":
        return self + (-_as_uncertain(other))

    def __rsub__(self, other: "UncertainValue | float | int") -> "UncertainValue":
        return _as_uncertain(other) + (-self)

    def __mul__(self, other: "UncertainValue | float | int") -> "UncertainValue":
        o = _as_uncertain(other)
        sigma = math.hypot(o.value * self.sigma, self.value * o.sigma)
        return UncertainValue(self.value * o.value, sigma)

    __rmul__ = __mul__

    def __truediv__(self, other: "UncertainValue | float | int") -> "UncertainValue":
        o = _as_uncertain(other)
        mean = self.value / o.value
        sigma = abs(mean) * math.hypot(
            self.sigma / self.value if self.value else 0.0,
            o.sigma / o.value,
        )
        # When the numerator mean is 0 the relative-error formula degenerates;
        # fall back to propagating the absolute numerator error.
        if self.value == 0:
            sigma = self.sigma / abs(o.value)
        return UncertainValue(mean, sigma)

    def __rtruediv__(self, other: "UncertainValue | float | int") -> "UncertainValue":
        return _as_uncertain(other) / self

    def __pow__(self, exponent: float) -> "UncertainValue":
        mean = self.value**exponent
        deriv = abs(exponent * self.value ** (exponent - 1)) if self.value else 0.0
        return UncertainValue(mean, deriv * self.sigma)

    def sqrt(self) -> "UncertainValue":
        return self**0.5

    def log(self) -> "UncertainValue":
        if self.value <= 0:
            raise TypeMismatchError("log of non-positive uncertain value")
        return UncertainValue(math.log(self.value), self.sigma / self.value)

    def exp(self) -> "UncertainValue":
        mean = math.exp(self.value)
        return UncertainValue(mean, mean * self.sigma)

    # -- comparisons ---------------------------------------------------------

    def __float__(self) -> float:
        return float(self.value)

    def __lt__(self, other: "UncertainValue | float | int") -> bool:
        return self.value < _as_uncertain(other).value

    def __le__(self, other: "UncertainValue | float | int") -> bool:
        return self.value <= _as_uncertain(other).value

    def __gt__(self, other: "UncertainValue | float | int") -> bool:
        return self.value > _as_uncertain(other).value

    def __ge__(self, other: "UncertainValue | float | int") -> bool:
        return self.value >= _as_uncertain(other).value

    def __repr__(self) -> str:
        return f"{self.value!r} ± {self.sigma!r}"


def combine_mean(values: Iterable[UncertainValue]) -> UncertainValue:
    """Inverse-variance weighted mean of independent measurements.

    Exact values (``sigma == 0``) short-circuit: the mean of exact values is
    the arithmetic mean with zero error.
    """
    vals = [_as_uncertain(v) for v in values]
    if not vals:
        raise ValueError("combine_mean of no values")
    if any(v.sigma == 0 for v in vals):
        exact = [v.value for v in vals if v.sigma == 0]
        return UncertainValue(sum(exact) / len(exact), 0.0)
    weights = [1.0 / (v.sigma**2) for v in vals]
    total = sum(weights)
    mean = sum(w * v.value for w, v in zip(weights, vals)) / total
    return UncertainValue(mean, math.sqrt(1.0 / total))


@dataclass(frozen=True)
class PositionUncertainty:
    """Maximum positional error per dimension (the PanSTARRS case).

    ``radius[d]`` is the maximum absolute error, in coordinate units, of a
    measured position along dimension ``d``.  :meth:`candidate_cells`
    enumerates every integer cell the true position may occupy, which the
    grid layer uses to redundantly place boundary observations so uncertain
    spatial joins never move data (Section 2.13).
    """

    radius: tuple[float, ...]

    def candidate_cells(self, position: tuple[float, ...]) -> Iterator[tuple[int, ...]]:
        if len(position) != len(self.radius):
            raise TypeMismatchError(
                f"position has {len(position)} coordinates, "
                f"uncertainty has {len(self.radius)}"
            )
        ranges = []
        for coord, r in zip(position, self.radius):
            lo = math.floor(coord - r)
            hi = math.floor(coord + r)
            ranges.append(range(int(lo), int(hi) + 1))

        def rec(prefix: tuple[int, ...], rest: list[range]) -> Iterator[tuple[int, ...]]:
            if not rest:
                yield prefix
                return
            for v in rest[0]:
                yield from rec(prefix + (v,), rest[1:])

        yield from rec((), ranges)

    def home_cell(self, position: tuple[float, ...]) -> tuple[int, ...]:
        """The cell of the *measured* (best-estimate) position."""
        return tuple(int(math.floor(c)) for c in position)


class SampledValue:
    """A 'more sophisticated model of uncertainty' (Section 2.13's deferral).

    The paper standardises on normal-distribution error bars but notes
    "some researchers have requirements for a more sophisticated model"
    and that the decision will be revisited.  :class:`SampledValue` is that
    extension point: the value is an empirical ensemble (Monte Carlo
    samples), so arbitrary, non-Gaussian, even multi-modal error
    distributions propagate exactly — arithmetic combines ensembles
    element-wise.

    Interoperates with the standard model: :meth:`to_uncertain` collapses
    an ensemble to mean ± stdev, and :meth:`from_uncertain` expands a
    Gaussian error bar into samples (for mixing the two models in one
    expression).
    """

    __slots__ = ("samples",)

    def __init__(self, samples) -> None:
        import numpy as _np

        arr = _np.asarray(samples, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise TypeMismatchError(
                "SampledValue needs a non-empty 1-D sample vector"
            )
        self.samples = arr

    # -- conversions ---------------------------------------------------------

    @classmethod
    def from_uncertain(
        cls, value: UncertainValue, n: int = 256, seed: int = 0
    ) -> "SampledValue":
        import numpy as _np

        rng = _np.random.default_rng(seed)
        return cls(rng.normal(value.value, value.sigma or 0.0, size=n))

    def to_uncertain(self) -> UncertainValue:
        return UncertainValue(
            float(self.samples.mean()), float(self.samples.std())
        )

    # -- statistics -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def sigma(self) -> float:
        return float(self.samples.std())

    def quantile(self, q: float) -> float:
        import numpy as _np

        return float(_np.quantile(self.samples, q))

    def credible_interval(self, mass: float = 0.68) -> tuple[float, float]:
        lo = (1.0 - mass) / 2.0
        return self.quantile(lo), self.quantile(1.0 - lo)

    def prob_greater_than(self, threshold: float) -> float:
        return float((self.samples > threshold).mean())

    # -- arithmetic -----------------------------------------------------------

    def _coerce(self, other) -> "SampledValue":
        import numpy as _np

        if isinstance(other, SampledValue):
            if other.samples.size != self.samples.size:
                raise TypeMismatchError(
                    "ensemble sizes differ; resample to combine"
                )
            return other
        if isinstance(other, UncertainValue):
            return SampledValue.from_uncertain(other, n=self.samples.size)
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return SampledValue(_np.full(self.samples.size, float(other)))
        raise TypeMismatchError(
            f"cannot combine SampledValue with {type(other).__name__}"
        )

    def __add__(self, other) -> "SampledValue":
        return SampledValue(self.samples + self._coerce(other).samples)

    __radd__ = __add__

    def __sub__(self, other) -> "SampledValue":
        return SampledValue(self.samples - self._coerce(other).samples)

    def __rsub__(self, other) -> "SampledValue":
        return SampledValue(self._coerce(other).samples - self.samples)

    def __mul__(self, other) -> "SampledValue":
        return SampledValue(self.samples * self._coerce(other).samples)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "SampledValue":
        return SampledValue(self.samples / self._coerce(other).samples)

    def __neg__(self) -> "SampledValue":
        return SampledValue(-self.samples)

    def map(self, fn) -> "SampledValue":
        """Propagate through an arbitrary function, exactly."""
        import numpy as _np

        return SampledValue(_np.asarray([fn(s) for s in self.samples]))

    def __repr__(self) -> str:
        return (
            f"SampledValue(n={self.samples.size}, mean={self.mean:.4g}, "
            f"sigma={self.sigma:.4g})"
        )
