"""E11: the eBay clickstream as a 1-D array with nested arrays
(Section 2.14).

"This application is nearly impossible in current RDBMSs; however, it can
be effectively modelled as a one-dimensional array (i.e. a time series)
with embedded arrays to represent the search results at each step."

Measured: the paper's two analyses (ignored content, click ranks) on the
array model, against the same analyses on a flattened relational encoding
(an events table plus an impressions table, joined per query) — plus the
search-quality signal itself.
"""

import pytest

from repro.baseline import TableDB
from repro.workloads.clickstream import (
    ClickstreamGenerator,
    click_ranks,
    ignored_content,
    sessions_to_array,
)

N_SESSIONS = 60


@pytest.fixture(scope="module")
def event_log():
    gen = ClickstreamGenerator(seed=0, relevance_decay=0.6)
    return sessions_to_array(list(gen.sessions(N_SESSIONS)))


@pytest.fixture(scope="module")
def relational(event_log):
    """The flattened RDBMS encoding: events + impressions tables."""
    db = TableDB()
    events = db.create_table("events", ["t", "kind", "item"])
    impressions = db.create_table("impressions", ["t", "rank", "item"])
    for (t,), cell in event_log.cells(include_null=False):
        events.insert((t, cell.kind, cell.item))
        if cell.kind == "search" and cell.results is not None:
            for (rank,), r in cell.results.cells(include_null=False):
                impressions.insert((t, rank, r.item))
    events.create_index(["kind"])
    return db


class TestIgnoredContent:
    def test_array_model(self, benchmark, event_log):
        ignored = benchmark(lambda: ignored_content(event_log))
        assert len(ignored) > 0

    def test_relational_model(self, benchmark, relational, event_log):
        def query():
            impressions = relational.table("impressions")
            events = relational.table("events")
            surfaced = {}
            for _, _, item in impressions.scan():
                surfaced[item] = surfaced.get(item, 0) + 1
            clicked = {
                row[2] for row in events.scan() if row[1] == "click"
            }
            return {i: n for i, n in surfaced.items() if i not in clicked}

        got = benchmark(query)
        assert got == ignored_content(event_log)


class TestClickRanks:
    def test_array_model(self, benchmark, event_log):
        ranks = benchmark(lambda: click_ranks(event_log))
        assert ranks and all(r >= 1 for r in ranks)

    def test_relational_model(self, benchmark, relational, event_log):
        def query():
            events = relational.table("events")
            impressions = relational.table("impressions")
            # For each click, find the nearest preceding search's
            # impressions and look the item up — a positional join an
            # RDBMS must emulate with correlated scans.
            search_ts = sorted(
                row[0] for row in events.scan() if row[1] == "search"
            )
            ranks = []
            for t, kind, item in sorted(events.scan()):
                if kind != "click":
                    continue
                prev_search = max(s for s in search_ts if s < t)
                for st, rank, sitem in impressions.scan():
                    if st == prev_search and sitem == item:
                        ranks.append(rank)
                        break
            return ranks

        got = benchmark(query)
        assert sorted(got) == sorted(click_ranks(event_log))


class TestSearchQualitySignal:
    def test_flawed_engine_detected(self, benchmark):
        """'their search strategy for pre-war Gibson banjos is flawed,
        since the top 6 items were not of interest' — mean click rank
        separates a good ranking engine from a flawed one."""
        def signal(decay):
            gen = ClickstreamGenerator(seed=1, relevance_decay=decay)
            log = sessions_to_array(list(gen.sessions(30)))
            ranks = click_ranks(log)
            return sum(ranks) / len(ranks)

        good = signal(0.3)
        flawed = signal(0.9)
        assert flawed > good + 1.0
        benchmark(lambda: signal(0.5))
