"""E8: within-node storage — bucket size, background merge, codec choice
(Section 2.8).

The paper's open questions, measured:

* **bucket stride** — window-scan cost vs stride (small buckets prune
  tightly but multiply per-bucket overheads; large buckets read waste);
* **background merge** — scan cost before/after merging a spill-fragmented
  array (Vertica-style consolidation);
* **codec choice** — compression ratio and encode time per codec on three
  characteristic science planes (smooth field, flags, random noise).
"""

import numpy as np
import pytest

from repro import define_array
from repro.storage.compression import get_codec
from repro.storage.manager import PersistentArray

SIDE = 256
N_CELLS = 3000


def populate(pa, seed=0):
    rng = np.random.default_rng(seed)
    seen = set()
    n = 0
    while n < N_CELLS:
        c = (int(rng.integers(1, SIDE + 1)), int(rng.integers(1, SIDE + 1)))
        if c in seen:
            continue
        seen.add(c)
        pa.append(c, (float(rng.normal()),))
        n += 1
    pa.flush()


def make(tmp_path, stride):
    schema = define_array("E8", {"v": "float"}, ["x", "y"]).bind([SIDE, SIDE])
    pa = PersistentArray(
        schema, tmp_path, memory_budget=1 << 30, stride=(stride, stride)
    )
    populate(pa)
    return pa


class TestBucketStride:
    @pytest.mark.parametrize("stride", [16, 64, 256])
    def test_window_scan_vs_stride(self, benchmark, tmp_path, stride):
        pa = make(tmp_path / f"s{stride}", stride)
        out = benchmark(lambda: list(pa.scan(((1, 1), (32, 32)))))
        assert all(c[0] <= 32 and c[1] <= 32 for c, _ in out)

    def test_small_buckets_prune_better(self, benchmark, tmp_path):
        fine = make(tmp_path / "fine", 16)
        coarse = make(tmp_path / "coarse", 256)
        for pa in (fine, coarse):
            pa.stats.buckets_read = 0
            list(pa.scan(((1, 1), (32, 32))))
        # The fine layout reads a small fraction of its buckets; the
        # single-bucket layout always reads everything.
        assert fine.stats.buckets_read < fine.bucket_count()
        assert coarse.stats.buckets_read == coarse.bucket_count()
        benchmark(lambda: None)


class TestBackgroundMerge:
    def make_fragmented(self, tmp_path):
        schema = define_array("E8m", {"v": "float"}, ["x", "y"]).bind(
            [SIDE, SIDE]
        )
        pa = PersistentArray(
            schema, tmp_path, memory_budget=1 << 30, stride=(32, 32)
        )
        rng = np.random.default_rng(1)
        # Many tiny spills fragment the same region into many buckets.
        for k in range(300):
            pa.append(
                (int(rng.integers(1, 65)), int(rng.integers(1, 65))),
                (float(k),),
            )
            if k % 3 == 2:
                pa.flush()
        pa.flush()
        return pa

    def test_scan_fragmented(self, benchmark, tmp_path):
        pa = self.make_fragmented(tmp_path / "frag")
        benchmark(lambda: list(pa.scan(((1, 1), (64, 64)))))

    def test_scan_after_merge(self, benchmark, tmp_path):
        pa = self.make_fragmented(tmp_path / "merged")
        before = pa.bucket_count()
        merges = pa.merge_small_buckets(min_cells=4096, group_factor=4)
        assert merges > 0 and pa.bucket_count() < before
        benchmark(lambda: list(pa.scan(((1, 1), (64, 64)))))

    def test_merge_reduces_bucket_reads(self, benchmark, tmp_path):
        pa = self.make_fragmented(tmp_path / "cmp")
        pa.stats.buckets_read = 0
        list(pa.scan(((1, 1), (64, 64))))
        reads_before = pa.stats.buckets_read
        pa.merge_small_buckets(min_cells=4096, group_factor=4)
        pa.stats.buckets_read = 0
        list(pa.scan(((1, 1), (64, 64))))
        reads_after = pa.stats.buckets_read
        assert reads_after < reads_before
        benchmark(lambda: None)


def science_planes():
    rng = np.random.default_rng(2)
    smooth = np.cumsum(
        rng.normal(0, 0.01, size=64 * 64)
    ).reshape(64, 64)
    flags = (rng.random((64, 64)) < 0.05).astype(np.int32)
    noise = rng.normal(size=(64, 64))
    # Raw instrument counts: a smooth field digitised to int32 — the plane
    # delta coding exists for.
    counts = (1000 + 50 * np.sin(np.arange(64 * 64) / 80.0)).astype(
        np.int32
    ).reshape(64, 64)
    return {
        "smooth_field": smooth,
        "sensor_counts": counts,
        "cloud_flags": flags,
        "noise": noise,
    }


class TestCodecs:
    @pytest.mark.parametrize("codec", ["none", "zlib", "delta", "rle"])
    @pytest.mark.parametrize("plane", ["smooth_field", "sensor_counts", "cloud_flags", "noise"])
    def test_encode(self, benchmark, codec, plane):
        data = science_planes()[plane]
        c = get_codec(codec)
        payload = benchmark(lambda: c.encode(data))
        np.testing.assert_array_equal(
            c.decode(payload, data.dtype, data.shape), data
        )

    def test_ratio_report(self, benchmark, capsys):
        from repro.bench.harness import ResultTable

        rt = ResultTable(
            "E8: compression ratio by codec and plane (raw/encoded)",
            ["plane", "zlib", "delta", "rle"],
        )
        ratios = {}
        for plane, data in science_planes().items():
            raw = len(get_codec("none").encode(data))
            row = []
            for codec in ("zlib", "delta", "rle"):
                encoded = len(get_codec(codec).encode(data))
                row.append(raw / encoded)
                ratios[(plane, codec)] = raw / encoded
            rt.add(plane, *row)
        rt.print()
        # Shape: delta shines on digitised smooth data (sensor counts),
        # rle on sparse flags, and nothing compresses white noise well.
        assert ratios[("sensor_counts", "delta")] > 3
        assert ratios[("smooth_field", "delta")] > ratios[("noise", "delta")]
        assert ratios[("cloud_flags", "rle")] > 5
        assert ratios[("noise", "zlib")] < 1.5
        benchmark(lambda: None)
