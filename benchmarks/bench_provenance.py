"""E5: the provenance space/time trade-off (Section 2.12).

Three design points over one derivation pipeline:

* **log replay** — "no extra space at all, but has a substantial running
  time": stores only the command log; traces re-derive lineage;
* **Trio item store** — "the space cost ... is way too high": eager
  item-level edges; traces are index walks;
* **trace cache** — replay once, cache the result.

The benchmarks time backward and forward traces under each design and the
summary test reports space vs time side by side.
"""

import numpy as np
import pytest

from repro import SciArray, define_array
from repro.provenance import (
    ItemLineageStore,
    ProvenanceEngine,
    TraceCache,
    trace_backward,
    trace_forward,
)

SIDE = 24


def build_engine(itemstore=None):
    eng = ProvenanceEngine(itemstore=itemstore)
    rng = np.random.default_rng(0)
    schema = define_array("E5raw", {"v": "float"}, ["x", "y"])
    eng.register_external(
        "raw",
        SciArray.from_numpy(schema, rng.normal(size=(SIDE, SIDE)) + 2.0,
                            name="raw"),
        program="ingest",
    )
    eng.execute("filter", ["raw"], "filtered", predicate=lambda c: c.v > 1.0)
    eng.execute("regrid", ["filtered"], "coarse", factors=[4, 4], agg="avg")
    eng.execute("aggregate", ["coarse"], "rows", group_dims=["x"], agg="sum")
    return eng


@pytest.fixture(scope="module")
def replay_engine():
    return build_engine()


@pytest.fixture(scope="module")
def trio_engine():
    store = ItemLineageStore()
    return build_engine(itemstore=store), store


class TestBackward:
    def test_backward_log_replay(self, benchmark, replay_engine):
        steps = benchmark(lambda: trace_backward(replay_engine, ("coarse", (2, 2))))
        assert steps[0].command.op == "regrid"

    def test_backward_trio(self, benchmark, trio_engine):
        eng, store = trio_engine
        items = benchmark(lambda: store.backward_closure(("coarse", (2, 2))))
        assert any(name == "raw" for name, _ in items)


class TestForward:
    def test_forward_log_replay(self, benchmark, replay_engine):
        affected = benchmark(lambda: trace_forward(replay_engine, ("raw", (5, 5))))
        assert ("coarse", (2, 2)) in affected

    def test_forward_trio(self, benchmark, trio_engine):
        eng, store = trio_engine
        affected = benchmark(lambda: store.forward_closure(("raw", (5, 5))))
        assert ("coarse", (2, 2)) in affected

    def test_forward_cached(self, benchmark, replay_engine):
        cache = TraceCache(replay_engine)
        cache.forward(("raw", (5, 5)))  # warm
        affected = benchmark(lambda: cache.forward(("raw", (5, 5))))
        assert ("coarse", (2, 2)) in affected
        assert cache.hits > 0


class TestSpaceTimeTradeoff:
    def test_summary(self, benchmark, capsys):
        from repro.bench.harness import ResultTable, measure

        store = ItemLineageStore()
        eng_trio = build_engine(itemstore=store)
        eng_replay = build_engine()
        cache = TraceCache(eng_replay)
        item = ("raw", (5, 5))
        replay = measure(lambda: trace_forward(eng_replay, item), repeats=3)
        trio = measure(lambda: store.forward_closure(item), repeats=3)
        cache.forward(item)
        cached = measure(lambda: cache.forward(item), repeats=3)

        log_bytes = len(eng_replay.log) * 200  # a log record is ~200 B
        rt = ResultTable(
            "E5: provenance designs — forward trace of one raw cell",
            ["design", "time ms", "space bytes"],
        )
        rt.add("log replay", replay.per_call * 1e3, log_bytes)
        rt.add("Trio item store", trio.per_call * 1e3,
               store.space_nbytes() + log_bytes)
        rt.add("cached replay", cached.per_call * 1e3,
               cache.space_items() * 48 + log_bytes)
        rt.print()

        # The paper's shape: Trio is much faster to query and much bigger;
        # replay stores (almost) nothing and pays at query time.
        assert replay.per_call > trio.per_call * 3
        assert store.space_nbytes() > 50 * log_bytes
        assert cached.per_call < replay.per_call
        # Results agree across designs.
        assert trace_forward(eng_replay, item) == store.forward_closure(item)
        benchmark(lambda: None)
